//! Listing printers that reproduce the paper's Fig. 4 layout.

use crate::region::RegionSplit;
use std::fmt::Write as _;

/// Renders a [`RegionSplit`] as a Fig. 4-style listing with `Barrier:` and
/// `Non-barrier:` section headers and dashed separators.
#[must_use]
pub fn render_split(title: &str, split: &RegionSplit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* {title} */");
    let rule = "-".repeat(70);
    let section = |out: &mut String, header: &str, instrs: &[crate::tac::AnnotatedInstr]| {
        let _ = writeln!(out, "{header}:");
        for a in instrs {
            let _ = writeln!(out, "    {a}");
        }
    };
    section(&mut out, "Barrier", &split.prefix);
    let _ = writeln!(out, "{rule}");
    section(&mut out, "Non-barrier", &split.non_barrier);
    let _ = writeln!(out, "{rule}");
    section(&mut out, "Barrier", &split.suffix);
    out
}

/// One-line summary of a split's region sizes.
#[must_use]
pub fn summarize_split(split: &RegionSplit) -> String {
    format!(
        "barrier: {} instrs ({} before + {} after), non-barrier: {} instrs, \
         barrier fraction {:.2}",
        split.barrier_len(),
        split.prefix.len(),
        split.suffix.len(),
        split.non_barrier_len(),
        split.barrier_fraction()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tac::{AnnotatedInstr, TacInstr, Temp};

    fn split() -> RegionSplit {
        RegionSplit {
            prefix: vec![AnnotatedInstr::plain(TacInstr::Const {
                dst: Temp(1),
                value: 1,
            })],
            non_barrier: vec![AnnotatedInstr::marked(TacInstr::Store {
                addr: Temp(1),
                src: crate::tac::Src::Const(0),
            })
            .with_comment("P[i][j] = 0")],
            suffix: vec![],
        }
    }

    #[test]
    fn render_has_sections_and_separators() {
        let s = render_split("demo", &split());
        assert!(s.contains("/* demo */"));
        assert_eq!(s.matches("Barrier:").count(), 2);
        assert!(s.contains("Non-barrier:"));
        assert!(s.contains("* [T1] = 0  /* P[i][j] = 0 */"));
    }

    #[test]
    fn summary_counts_regions() {
        let s = summarize_split(&split());
        assert!(s.contains("barrier: 1 instrs (1 before + 0 after)"));
        assert!(s.contains("non-barrier: 1 instrs"));
    }
}
