//! # fuzzy-compiler
//!
//! The compiler half of Gupta's fuzzy-barrier system (ASPLOS 1989,
//! Secs. 4 and 7): it constructs the barrier and non-barrier regions that
//! the hardware (simulated by `fuzzy-sim`) synchronizes over.
//!
//! ## Pipeline
//!
//! 1. [`ast`] — parallel loop nests with affine array subscripts (the
//!    Poisson solver of Fig. 3 and friends);
//! 2. [`deps`] — loop-carried and lexically forward dependence analysis;
//!    the accesses involved become the **marked instructions**;
//! 3. [`lower`] — lowering to three-address code in the paper's Fig. 4
//!    style (explicit address arithmetic, memory operands fused into
//!    arithmetic);
//! 4. [`region`] — non-barrier region = first marked … last marked
//!    instruction; everything else is barrier region;
//! 5. [`mod@reorder`] — the three-phase scheduling of Sec. 4 that hoists
//!    address arithmetic into the preceding barrier region and sinks
//!    consumers into the following one, shrinking the non-barrier region
//!    to its minimum;
//! 6. [`transform`] — loop distribution (Fig. 5), unrolling (Fig. 11) and
//!    multi-version loops (Fig. 12);
//! 7. [`codegen`] + [`driver`] — register allocation and emission of
//!    per-processor `fuzzy-sim` streams with the barrier-region bit set.
//!
//! ## Example
//!
//! Compile the Fig. 9 recurrence for four processors and inspect how much
//! the reordering grew the barrier region:
//!
//! ```
//! use fuzzy_compiler::ast::*;
//! use fuzzy_compiler::driver::{compile_nest, CompileOptions};
//!
//! let j = VarId(0);
//! let i = VarId(1);
//! let a = ArrayId(0);
//! let nest = LoopNest {
//!     arrays: vec![ArrayDecl { name: "a".into(), dims: vec![12, 6], base: 0 }],
//!     seq_var: j,
//!     seq_lo: 1,
//!     seq_hi: 9,
//!     private_vars: vec![i],
//!     body: vec![Stmt::Assign(Assign {
//!         target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
//!         value: Expr::add(
//!             Expr::Access(ArrayAccess::new(
//!                 a,
//!                 vec![Subscript::var(j, -1), Subscript::var(i, -1)],
//!             )),
//!             Expr::mul(Expr::Var(i), Expr::Var(j)),
//!         ),
//!     })],
//!     var_names: vec!["j".into(), "i".into()],
//! };
//! let inits: Vec<Vec<(VarId, i64)>> = (1..=4).map(|l| vec![(i, l)]).collect();
//! let compiled = compile_nest(&nest, &inits, &CompileOptions::default())?;
//! assert!(compiled.after.non_barrier_len() < compiled.before.non_barrier_len());
//! # Ok::<(), fuzzy_compiler::driver::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod codegen;
pub mod dag;
pub mod deps;
pub mod driver;
pub mod lower;
pub mod parse;
pub mod pretty;
pub mod region;
pub mod reorder;
pub mod tac;
pub mod transform;

pub use ast::LoopNest;
pub use driver::{compile_nest, CompileError, CompileOptions, CompiledLoop};
pub use region::RegionSplit;
pub use reorder::reorder;
