//! Barrier / non-barrier region construction (Sec. 4).
//!
//! "All instructions starting with the first marked instruction and ending
//! at the last marked instruction are included in the non-barrier region.
//! The remaining instructions form the barrier region."

use crate::tac::{AnnotatedInstr, TacBody};

/// A loop body split into the barrier region *preceding* the non-barrier
/// region, the non-barrier region itself, and the barrier region
/// *following* it. For a barrier at the end of a loop, `prefix` and
/// `suffix` are the two halves of one barrier region that "extends across
/// consecutive iterations" (Sec. 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionSplit {
    /// Barrier-region instructions placed before the non-barrier region
    /// (executed at the *start* of an iteration, overlapping the previous
    /// iteration's synchronization).
    pub prefix: Vec<AnnotatedInstr>,
    /// The non-barrier region: everything between the first and last
    /// marked instruction inclusive.
    pub non_barrier: Vec<AnnotatedInstr>,
    /// Barrier-region instructions placed after the non-barrier region.
    pub suffix: Vec<AnnotatedInstr>,
}

impl RegionSplit {
    /// Splits `body` by the positions of its marked instructions, without
    /// any reordering — the Fig. 4(a) construction.
    ///
    /// A body with no marked instructions becomes pure barrier region
    /// (everything in `prefix`).
    #[must_use]
    pub fn by_marks(body: &TacBody) -> Self {
        let marked = body.marked_indices();
        match (marked.first(), marked.last()) {
            (Some(&first), Some(&last)) => RegionSplit {
                prefix: body.instrs[..first].to_vec(),
                non_barrier: body.instrs[first..=last].to_vec(),
                suffix: body.instrs[last + 1..].to_vec(),
            },
            _ => RegionSplit {
                prefix: body.instrs.clone(),
                non_barrier: Vec::new(),
                suffix: Vec::new(),
            },
        }
    }

    /// Instructions in the barrier region (prefix + suffix).
    #[must_use]
    pub fn barrier_len(&self) -> usize {
        self.prefix.len() + self.suffix.len()
    }

    /// Instructions in the non-barrier region.
    #[must_use]
    pub fn non_barrier_len(&self) -> usize {
        self.non_barrier.len()
    }

    /// Total instructions.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.barrier_len() + self.non_barrier_len()
    }

    /// Fraction of the body inside the barrier region, in `[0, 1]` — the
    /// paper's figure of merit ("the larger the barrier regions, the less
    /// likely it is that the processors will stall").
    #[must_use]
    pub fn barrier_fraction(&self) -> f64 {
        if self.total_len() == 0 {
            0.0
        } else {
            self.barrier_len() as f64 / self.total_len() as f64
        }
    }

    /// All instructions in execution order (prefix, non-barrier, suffix).
    #[must_use]
    pub fn in_order(&self) -> Vec<AnnotatedInstr> {
        let mut v = Vec::with_capacity(self.total_len());
        v.extend(self.prefix.iter().cloned());
        v.extend(self.non_barrier.iter().cloned());
        v.extend(self.suffix.iter().cloned());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tac::{TacInstr, Temp};

    fn body(marks: &[bool]) -> TacBody {
        TacBody {
            instrs: marks
                .iter()
                .enumerate()
                .map(|(i, &m)| AnnotatedInstr {
                    instr: TacInstr::Const {
                        dst: Temp(i + 1),
                        value: i as i64,
                    },
                    marked: m,
                    comment: None,
                })
                .collect(),
            next_temp: marks.len() + 1,
        }
    }

    #[test]
    fn split_spans_first_to_last_mark() {
        let split = RegionSplit::by_marks(&body(&[false, false, true, false, true, false]));
        assert_eq!(split.prefix.len(), 2);
        assert_eq!(split.non_barrier.len(), 3);
        assert_eq!(split.suffix.len(), 1);
        assert_eq!(split.total_len(), 6);
        assert!((split.barrier_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unmarked_body_is_all_barrier() {
        let split = RegionSplit::by_marks(&body(&[false, false]));
        assert_eq!(split.non_barrier_len(), 0);
        assert_eq!(split.barrier_len(), 2);
        assert_eq!(split.barrier_fraction(), 1.0);
    }

    #[test]
    fn fully_marked_body_is_all_non_barrier() {
        let split = RegionSplit::by_marks(&body(&[true, true, true]));
        assert_eq!(split.barrier_len(), 0);
        assert_eq!(split.non_barrier_len(), 3);
    }

    #[test]
    fn in_order_round_trips() {
        let b = body(&[false, true, false]);
        let split = RegionSplit::by_marks(&b);
        let flat = split.in_order();
        assert_eq!(flat, b.instrs);
    }

    #[test]
    fn empty_body() {
        let split = RegionSplit::by_marks(&TacBody::default());
        assert_eq!(split.total_len(), 0);
        assert_eq!(split.barrier_fraction(), 0.0);
    }

    #[test]
    fn store_only_marked_at_ends() {
        let split = RegionSplit::by_marks(&body(&[true, false, false]));
        assert_eq!(split.prefix.len(), 0);
        assert_eq!(split.non_barrier.len(), 1);
        assert_eq!(split.suffix.len(), 2);
    }
}
