//! Lowering from the loop-nest AST to three-address intermediate code.
//!
//! The generated code follows the paper's Fig. 4 shape precisely: each
//! array access expands to explicit address arithmetic (subscript offset,
//! row scaling, base addition, column scaling, final addition), and the
//! value computation *fuses* memory reads into arithmetic instructions
//! (`T11 = [T5] + [T10]`), so the marked-instruction counts match the
//! paper's. Addresses are generated lazily, right before the instruction
//! that consumes them — exactly the "before reordering" layout of
//! Fig. 4(a); the reordering pass then hoists them.

use crate::ast::{ArrayAccess, Assign, Expr, LoopNest, Subscript};
use crate::deps::{AccessLoc, AccessRef};
use crate::tac::{AnnotatedInstr, BinOp, Src, TacBody, TacInstr, Temp};
use std::collections::BTreeSet;

/// Formats an access like `P[i][j+1]` using the nest's names.
#[must_use]
pub fn format_access(nest: &LoopNest, access: &ArrayAccess) -> String {
    let mut s = nest.array(access.array).name.clone();
    for sub in &access.subs {
        s.push('[');
        s.push_str(&format_subscript(nest, sub));
        s.push(']');
    }
    s
}

fn format_subscript(nest: &LoopNest, sub: &Subscript) -> String {
    match (sub.var, sub.offset) {
        (None, c) => c.to_string(),
        (Some(v), 0) => nest.var_name(v).to_string(),
        (Some(v), c) if c > 0 => format!("{}+{c}", nest.var_name(v)),
        (Some(v), c) => format!("{}{c}", nest.var_name(v)),
    }
}

struct Lowerer<'a> {
    nest: &'a LoopNest,
    marked: &'a BTreeSet<AccessRef>,
    instrs: Vec<AnnotatedInstr>,
    next_temp: usize,
}

/// A lowered operand: the source plus whether it is a *marked* memory
/// reference (the mark transfers to the instruction that consumes it).
struct Operand {
    src: Src,
    mem_marked: bool,
}

impl<'a> Lowerer<'a> {
    fn fresh(&mut self) -> Temp {
        let t = Temp(self.next_temp);
        self.next_temp += 1;
        t
    }

    fn emit(&mut self, instr: TacInstr) {
        self.instrs.push(AnnotatedInstr::plain(instr));
    }

    /// Emits the address computation for `access` and returns the address
    /// temp. Mirrors the paper's sequence: per dimension, an optional
    /// subscript addition, a stride multiplication, and an accumulation
    /// (with the base address folded into the first dimension).
    fn lower_address(&mut self, access: &ArrayAccess) -> Temp {
        let decl = self.nest.array(access.array);
        assert_eq!(
            access.subs.len(),
            decl.dims.len(),
            "access to `{}` has wrong dimensionality",
            decl.name
        );
        let mut acc: Option<Temp> = None;
        for (d, sub) in access.subs.iter().enumerate() {
            let stride = decl.stride(d);
            // Subscript value: var + offset (an add only when offset ≠ 0).
            let sub_src = match (sub.var, sub.offset) {
                (Some(v), 0) => Src::Var(v),
                (Some(v), c) => {
                    let t = self.fresh();
                    self.emit(TacInstr::Bin {
                        dst: t,
                        op: BinOp::Add,
                        lhs: Src::Var(v),
                        rhs: Src::Const(c),
                    });
                    Src::Temp(t)
                }
                (None, c) => Src::Const(c),
            };
            // Scaled: stride * subscript (emitted even for stride 1, like
            // the paper's `T9 = 4*T6`).
            let scaled = self.fresh();
            self.emit(TacInstr::Bin {
                dst: scaled,
                op: BinOp::Mul,
                lhs: Src::Const(stride),
                rhs: sub_src,
            });
            // Accumulate, folding the base address in at dimension 0.
            let next = self.fresh();
            match acc {
                None => self.emit(TacInstr::Bin {
                    dst: next,
                    op: BinOp::Add,
                    lhs: Src::Temp(scaled),
                    rhs: Src::Const(decl.base),
                }),
                Some(prev) => self.emit(TacInstr::Bin {
                    dst: next,
                    op: BinOp::Add,
                    lhs: Src::Temp(prev),
                    rhs: Src::Temp(scaled),
                }),
            }
            acc = Some(next);
        }
        let addr = acc.expect("arrays have at least one dimension");
        let text = format_access(self.nest, access);
        if let Some(last) = self.instrs.last_mut() {
            last.comment = Some(format!("{addr} <- address of {text}"));
        }
        addr
    }

    /// Lowers an expression, returning its operand. `stmt` and `read_idx`
    /// thread the access numbering used by the dependence analysis.
    fn lower_expr(&mut self, expr: &Expr, stmt: usize, read_idx: &mut usize) -> Operand {
        match expr {
            Expr::Const(c) => Operand {
                src: Src::Const(*c),
                mem_marked: false,
            },
            Expr::Var(v) => Operand {
                src: Src::Var(*v),
                mem_marked: false,
            },
            Expr::Access(access) => {
                let loc = AccessLoc::Read(*read_idx);
                *read_idx += 1;
                let addr = self.lower_address(access);
                let marked = self.marked.contains(&AccessRef { stmt, loc });
                Operand {
                    src: Src::Mem(addr),
                    mem_marked: marked,
                }
            }
            Expr::Add(a, b) => self.lower_bin(BinOp::Add, a, b, stmt, read_idx),
            Expr::Sub(a, b) => self.lower_bin(BinOp::Sub, a, b, stmt, read_idx),
            Expr::Mul(a, b) => self.lower_bin(BinOp::Mul, a, b, stmt, read_idx),
            Expr::DivConst(a, c) => {
                let lhs = self.lower_expr(a, stmt, read_idx);
                let dst = self.fresh();
                self.instrs.push(AnnotatedInstr {
                    instr: TacInstr::Bin {
                        dst,
                        op: BinOp::Div,
                        lhs: lhs.src,
                        rhs: Src::Const(*c),
                    },
                    marked: lhs.mem_marked,
                    comment: None,
                });
                Operand {
                    src: Src::Temp(dst),
                    mem_marked: false,
                }
            }
        }
    }

    fn lower_bin(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        stmt: usize,
        read_idx: &mut usize,
    ) -> Operand {
        let lhs = self.lower_expr(a, stmt, read_idx);
        let rhs = self.lower_expr(b, stmt, read_idx);
        let dst = self.fresh();
        self.instrs.push(AnnotatedInstr {
            instr: TacInstr::Bin {
                dst,
                op,
                lhs: lhs.src,
                rhs: rhs.src,
            },
            marked: lhs.mem_marked || rhs.mem_marked,
            comment: None,
        });
        Operand {
            src: Src::Temp(dst),
            mem_marked: false,
        }
    }

    fn lower_assign(&mut self, assign: &Assign, stmt: usize) {
        let mut read_idx = 0usize;
        let value = self.lower_expr(&assign.value, stmt, &mut read_idx);
        let addr = self.lower_address(&assign.target);
        let target_marked = self.marked.contains(&AccessRef {
            stmt,
            loc: AccessLoc::Target,
        });
        let text = format_access(self.nest, &assign.target);
        self.instrs.push(AnnotatedInstr {
            instr: TacInstr::Store {
                addr,
                src: value.src,
            },
            marked: target_marked || value.mem_marked,
            comment: Some(format!("{text} = {}", value.src)),
        });
    }
}

/// Lowers the assignments of a nest body (in flattened program order) into
/// one straight-line [`TacBody`], marking the instructions whose accesses
/// appear in `marked`.
///
/// Conditional statements are handled at code-generation level (they wrap
/// whole lowered bodies); this function lowers the flattened assignments.
#[must_use]
pub fn lower_body(nest: &LoopNest, marked: &BTreeSet<AccessRef>) -> TacBody {
    let assigns = crate::deps::flatten(&nest.body);
    let mut lw = Lowerer {
        nest,
        marked,
        instrs: Vec::new(),
        next_temp: 1,
    };
    for (stmt, assign) in assigns.iter().enumerate() {
        lw.lower_assign(assign, stmt);
    }
    TacBody {
        instrs: lw.instrs,
        next_temp: lw.next_temp,
    }
}

/// Lowers a single assignment in isolation (used by transformations that
/// split bodies).
#[must_use]
pub fn lower_assign_at(
    nest: &LoopNest,
    assign: &Assign,
    stmt: usize,
    marked: &BTreeSet<AccessRef>,
    first_temp: usize,
) -> TacBody {
    let mut lw = Lowerer {
        nest,
        marked,
        instrs: Vec::new(),
        next_temp: first_temp,
    };
    lw.lower_assign(assign, stmt);
    TacBody {
        instrs: lw.instrs,
        next_temp: lw.next_temp,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ast::{ArrayDecl, ArrayId, Stmt, VarId};
    use crate::deps;

    /// Builds the paper's Poisson solver nest with left-linear additions,
    /// matching the association in Fig. 4.
    pub(crate) fn poisson_nest() -> LoopNest {
        let k = VarId(0);
        let i = VarId(1);
        let j = VarId(2);
        let p = ArrayId(0);
        let acc = |di: i64, dj: i64| {
            Expr::Access(ArrayAccess::new(
                p,
                vec![Subscript::var(i, di), Subscript::var(j, dj)],
            ))
        };
        // ((P[i][j+1] + P[i][j-1]) + P[i+1][j]) + P[i-1][j], then / 4.
        let value = Expr::div_const(
            Expr::add(
                Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
                acc(-1, 0),
            ),
            4,
        );
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "P".into(),
                dims: vec![4, 4],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 20,
            private_vars: vec![i, j],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
                value,
            })],
            var_names: vec!["k".into(), "i".into(), "j".into()],
        }
    }

    #[test]
    fn poisson_lowering_matches_paper_instruction_counts() {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let marked = info.marked_for_carried();
        let body = lower_body(&nest, &marked);

        // Per access: offset-add (when offset ≠ 0) + 2 muls + 2 adds.
        // Reads with one non-zero offset: 4 instrs + ... let's just check
        // the aggregate. 5 accesses: 4 with one offset (4×5) ... target has
        // no offsets (4 instrs). Address code: 4 reads × 5 + 1 target × 4 =
        // wait, reads P[i][j±1] have offset on j only (5 instrs: add, mul,
        // add-base, mul, add), P[i±1][j] have offset on i (also 5),
        // P[i][j] has none (4). Value code: 3 fused adds + 1 div. Store: 1.
        assert_eq!(body.len(), 4 * 5 + 4 + 3 + 1 + 1);

        // Exactly 4 marked instructions — the paper's I1…I4: three adds
        // consuming memory operands and the final store.
        let marked_idx = body.marked_indices();
        assert_eq!(marked_idx.len(), 4, "{body:#?}");

        // The div (T = x / 4) is NOT marked (it consumes a temp).
        let div_count = body
            .instrs
            .iter()
            .filter(|a| matches!(a.instr, TacInstr::Bin { op: BinOp::Div, .. }))
            .count();
        assert_eq!(div_count, 1);
        assert!(body
            .instrs
            .iter()
            .find(|a| matches!(a.instr, TacInstr::Bin { op: BinOp::Div, .. }))
            .map(|a| !a.marked)
            .unwrap());

        // The last instruction is the marked store with its comment.
        let last = body.instrs.last().unwrap();
        assert!(last.marked);
        assert!(last.comment.as_deref().unwrap().starts_with("P[i][j] ="));
    }

    #[test]
    fn address_comments_name_the_access() {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let comments: Vec<&str> = body
            .instrs
            .iter()
            .filter_map(|a| a.comment.as_deref())
            .collect();
        assert!(comments.iter().any(|c| c.contains("address of P[i][j+1]")));
        assert!(comments.iter().any(|c| c.contains("address of P[i-1][j]")));
    }

    #[test]
    fn temps_are_assigned_once() {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let mut seen = std::collections::HashSet::new();
        for a in &body.instrs {
            if let Some(d) = a.instr.def() {
                assert!(seen.insert(d), "temp {d} defined twice");
            }
        }
    }

    #[test]
    fn uses_follow_defs() {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let mut defined = std::collections::HashSet::new();
        for a in &body.instrs {
            for u in a.instr.uses() {
                assert!(defined.contains(&u), "temp {u} used before definition");
            }
            if let Some(d) = a.instr.def() {
                defined.insert(d);
            }
        }
    }

    #[test]
    fn lower_assign_at_continues_temp_numbering() {
        let nest = poisson_nest();
        let assigns = deps::flatten(&nest.body);
        let marked = BTreeSet::new();
        let b1 = lower_assign_at(&nest, assigns[0], 0, &marked, 1);
        let b2 = lower_assign_at(&nest, assigns[0], 0, &marked, b1.next_temp);
        let d1: std::collections::HashSet<_> =
            b1.instrs.iter().filter_map(|a| a.instr.def()).collect();
        let d2: std::collections::HashSet<_> =
            b2.instrs.iter().filter_map(|a| a.instr.def()).collect();
        assert!(d1.is_disjoint(&d2));
    }
}
