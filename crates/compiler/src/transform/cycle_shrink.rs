//! Cycle shrinking (Polychronopoulos, the paper's \[5\]).
//!
//! The paper's introduction notes that "application of transformations
//! such as cycle shrinking depend heavily upon use of barriers.
//! Availability of an efficient barrier mechanism makes their application
//! practical." When the minimum dependence distance carried by a
//! sequential loop is *d > 1*, groups of *d* consecutive iterations are
//! mutually independent: the loop can run *d* iterations in parallel with
//! a barrier between groups, turning a serial loop into a barrier-per-
//! group parallel loop.

use crate::ast::{LoopNest, VarId};
use crate::deps::{AccessRef, DepInfo, DepKind};
use std::collections::BTreeSet;

/// A cycle-shrinking opportunity: `group_size` consecutive iterations of
/// the sequential loop may run in parallel, separated by barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shrunk {
    /// Number of iterations per parallel group (the minimum carried
    /// dependence distance).
    pub group_size: i64,
}

/// Analyses the nest's carried dependences and returns the shrinking
/// opportunity, if any.
///
/// Returns `None` when
/// * some carried dependence is unconstrained in the sequential variable
///   (distance recorded as 0 — it binds *every* pair of iterations), or
/// * the minimum distance is 1 (no two consecutive iterations are
///   independent), or
/// * there are no carried dependences at all (the loop is fully parallel
///   and needs no barriers — shrinking is moot).
#[must_use]
pub fn shrink(info: &DepInfo) -> Option<Shrunk> {
    let mut min_distance: Option<i64> = None;
    for dep in info.carried() {
        let DepKind::Carried { distance } = dep.kind else {
            continue;
        };
        let d = distance.abs();
        if d == 0 {
            return None; // unconstrained: every iteration pair depends
        }
        min_distance = Some(min_distance.map_or(d, |m: i64| m.min(d)));
    }
    match min_distance {
        Some(d) if d > 1 => Some(Shrunk { group_size: d }),
        _ => None,
    }
}

impl Shrunk {
    /// Whether shrinking may actually be applied to `nest`'s bounds: the
    /// trip count must be a positive multiple of the group size.
    ///
    /// The compiled group loop is a do-while (`k += group; if k <= hi go
    /// to L1`), so every one of the `group_size` processors executes
    /// `ceil((hi - lo + 1 - p) / group_size)` iterations. When the trip
    /// count is not divisible, those counts differ between processors and
    /// the last group's barriers are entered by only a subset of them —
    /// the machine deadlocks waiting for processors that already halted
    /// (found by the differential fuzzer; see
    /// `crates/fuzz/corpus`). Callers must check this before using
    /// [`Self::per_proc_inits`], exactly as Fig. 11 pads trip counts to
    /// divisibility before unrolling.
    #[must_use]
    pub fn applies_to(&self, nest: &LoopNest) -> bool {
        let trip = nest.seq_hi - nest.seq_lo + 1;
        trip >= self.group_size && trip % self.group_size == 0
    }

    /// Marked accesses for the group barrier: the endpoints of **all**
    /// carried dependences. (Under shrinking, iterations of a group run
    /// on different processors, so even same-variable carried dependences
    /// become cross-processor.)
    #[must_use]
    pub fn marked(&self, info: &DepInfo) -> BTreeSet<AccessRef> {
        info.marked_accesses(info.carried())
    }

    /// Per-processor initial values for the sequential variable:
    /// processor *p* executes iterations `lo + p, lo + p + group_size, …`.
    /// Feed into [`crate::driver::compile_nest_with_marks`] together with
    /// [`Self::options`].
    #[must_use]
    pub fn per_proc_inits(&self, nest: &LoopNest) -> Vec<Vec<(VarId, i64)>> {
        (0..self.group_size)
            .map(|p| vec![(nest.seq_var, nest.seq_lo + p)])
            .collect()
    }

    /// Compile options with the sequential step set to the group size.
    #[must_use]
    pub fn options(&self, base: crate::driver::CompileOptions) -> crate::driver::CompileOptions {
        crate::driver::CompileOptions {
            seq_step: self.group_size,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, Stmt, Subscript};
    use crate::deps;
    use crate::driver::{compile_nest_with_marks, CompileOptions};
    use fuzzy_sim::machine::{Machine, MachineConfig};

    /// `for k seq: a[k] = a[k-2] + 1` — distance-2 recurrence.
    fn distance2_nest() -> LoopNest {
        let k = VarId(0);
        let a = ArrayId(0);
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![64],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 2,
            seq_hi: 41,
            private_vars: vec![],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(k, 0)]),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(a, vec![Subscript::var(k, -2)])),
                    Expr::Const(1),
                ),
            })],
            var_names: vec!["k".into()],
        }
    }

    #[test]
    fn detects_distance_two() {
        let nest = distance2_nest();
        let info = deps::analyze(&nest);
        assert_eq!(shrink(&info), Some(Shrunk { group_size: 2 }));
    }

    #[test]
    fn distance_one_cannot_shrink() {
        let mut nest = distance2_nest();
        let Stmt::Assign(a) = &mut nest.body[0] else {
            unreachable!()
        };
        let Expr::Add(read, _) = &mut a.value else {
            unreachable!()
        };
        let Expr::Access(acc) = read.as_mut() else {
            unreachable!()
        };
        acc.subs[0].offset = -1;
        let info = deps::analyze(&nest);
        assert_eq!(shrink(&info), None);
    }

    #[test]
    fn unconstrained_dependence_cannot_shrink() {
        // Poisson-style: seq var absent from subscripts.
        let k = VarId(0);
        let i = VarId(1);
        let a = ArrayId(0);
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![8],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 4,
            private_vars: vec![i],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(i, 0)]),
                value: Expr::Access(ArrayAccess::new(a, vec![Subscript::var(i, 1)])),
            })],
            var_names: vec!["k".into(), "i".into()],
        };
        let info = deps::analyze(&nest);
        assert_eq!(shrink(&info), None);
    }

    #[test]
    fn shrunk_compilation_matches_serial_reference() {
        let nest = distance2_nest();
        let info = deps::analyze(&nest);
        let shrunk = shrink(&info).expect("distance 2");
        let marked = shrunk.marked(&info);
        assert!(!marked.is_empty(), "carried endpoints must be marked");
        let compiled = compile_nest_with_marks(
            &nest,
            &shrunk.per_proc_inits(&nest),
            &marked,
            &shrunk.options(CompileOptions::default()),
        )
        .expect("compiles");
        assert_eq!(compiled.program.num_procs(), 2);

        let mut m = Machine::new(compiled.program, MachineConfig::default()).unwrap();
        m.memory_mut().poke(0, 100);
        m.memory_mut().poke(1, 200);
        let out = m.run(10_000_000).unwrap();
        assert!(out.is_halted(), "{out:?}");

        // Serial reference.
        let mut a = vec![0i64; 64];
        a[0] = 100;
        a[1] = 200;
        for k in 2..=41usize {
            a[k] = a[k - 2] + 1;
        }
        let simulated: Vec<i64> = (0..64).map(|w| m.memory().peek(w)).collect();
        assert_eq!(simulated, a);
    }

    #[test]
    fn ragged_trip_counts_are_inapplicable() {
        // Trip 40 divides by 2: applicable. Trip 39 does not: processor 0
        // would execute 20 group iterations against processor 1's 19 and
        // the final barrier would deadlock.
        let nest = distance2_nest();
        let info = deps::analyze(&nest);
        let shrunk = shrink(&info).expect("distance 2");
        assert!(shrunk.applies_to(&nest));
        let ragged = LoopNest {
            seq_hi: nest.seq_hi - 1,
            ..nest
        };
        assert!(!shrunk.applies_to(&ragged));
        // A group larger than the whole trip is inapplicable too.
        let tiny = Shrunk { group_size: 64 };
        assert!(!tiny.applies_to(&ragged));
    }
}
