//! Multiple-version loops for run-time scheduling (Fig. 12).
//!
//! Under self-scheduling the compiler cannot know at compile time which
//! iteration of the inner loop a processor will execute first or last, so
//! it compiles **four versions** of the loop body and the run-time system
//! picks one per iteration:
//!
//! > "the first iteration of the inner loop that a processor executes
//! > should start with a barrier, the last iteration should be followed by
//! > a barrier and the intervening iterations should have no barriers at
//! > all. If the processor is allocated only a single iteration, the loop
//! > body should be compiled such that it is both preceded and followed by
//! > a barrier region."
//!
//! "Compiling multiple versions of code and selecting the appropriate one
//! at run-time is a common practice in parallelizing compilers."

/// The four compiled versions of a self-scheduled loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopVersion {
    /// Version 1: first (but not last) iteration — starts with a barrier
    /// region.
    BarrierBefore,
    /// Version 2: last (but not first) iteration — followed by a barrier
    /// region.
    BarrierAfter,
    /// Version 3: an intervening iteration — no barrier regions.
    NoBarrier,
    /// Version 4: the only iteration — barrier regions on both sides.
    BarrierBoth,
}

impl LoopVersion {
    /// Selects the version for an iteration, per Fig. 12's dispatch.
    #[must_use]
    pub fn select(is_first: bool, is_last: bool) -> Self {
        match (is_first, is_last) {
            (true, false) => LoopVersion::BarrierBefore,
            (false, true) => LoopVersion::BarrierAfter,
            (false, false) => LoopVersion::NoBarrier,
            (true, true) => LoopVersion::BarrierBoth,
        }
    }

    /// Whether this version opens with a barrier region.
    #[must_use]
    pub fn barrier_before(&self) -> bool {
        matches!(self, LoopVersion::BarrierBefore | LoopVersion::BarrierBoth)
    }

    /// Whether this version closes with a barrier region.
    #[must_use]
    pub fn barrier_after(&self) -> bool {
        matches!(self, LoopVersion::BarrierAfter | LoopVersion::BarrierBoth)
    }

    /// All four versions (compile-them-all order).
    #[must_use]
    pub fn all() -> [LoopVersion; 4] {
        [
            LoopVersion::BarrierBefore,
            LoopVersion::BarrierAfter,
            LoopVersion::NoBarrier,
            LoopVersion::BarrierBoth,
        ]
    }
}

/// Assigns a version to every iteration index of a processor's allocated
/// chunk of `total` iterations (0-based positions within the chunk).
///
/// # Examples
///
/// ```
/// use fuzzy_compiler::transform::multiversion::{chunk_versions, LoopVersion};
///
/// assert_eq!(chunk_versions(1), vec![LoopVersion::BarrierBoth]);
/// assert_eq!(
///     chunk_versions(3),
///     vec![
///         LoopVersion::BarrierBefore,
///         LoopVersion::NoBarrier,
///         LoopVersion::BarrierAfter,
///     ]
/// );
/// ```
#[must_use]
pub fn chunk_versions(total: usize) -> Vec<LoopVersion> {
    (0..total)
        .map(|pos| LoopVersion::select(pos == 0, pos + 1 == total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_matches_fig12() {
        assert_eq!(LoopVersion::select(true, false), LoopVersion::BarrierBefore);
        assert_eq!(LoopVersion::select(false, true), LoopVersion::BarrierAfter);
        assert_eq!(LoopVersion::select(false, false), LoopVersion::NoBarrier);
        assert_eq!(LoopVersion::select(true, true), LoopVersion::BarrierBoth);
    }

    #[test]
    fn barrier_sides() {
        assert!(LoopVersion::BarrierBefore.barrier_before());
        assert!(!LoopVersion::BarrierBefore.barrier_after());
        assert!(LoopVersion::BarrierBoth.barrier_before());
        assert!(LoopVersion::BarrierBoth.barrier_after());
        assert!(!LoopVersion::NoBarrier.barrier_before());
        assert!(!LoopVersion::NoBarrier.barrier_after());
    }

    #[test]
    fn chunk_of_two() {
        assert_eq!(
            chunk_versions(2),
            vec![LoopVersion::BarrierBefore, LoopVersion::BarrierAfter]
        );
    }

    #[test]
    fn empty_chunk_has_no_versions() {
        assert!(chunk_versions(0).is_empty());
    }

    #[test]
    fn every_chunk_has_exactly_one_open_and_one_close() {
        for n in 1..10 {
            let vs = chunk_versions(n);
            assert_eq!(vs.iter().filter(|v| v.barrier_before()).count(), 1);
            assert_eq!(vs.iter().filter(|v| v.barrier_after()).count(), 1);
        }
    }
}
