//! Loop distribution (Fig. 5).
//!
//! "Loop distribution is a transformation that takes a loop with several
//! statements and divides it into multiple loops, each of which contains
//! only a subset of statements from the loop body." Statements that carry
//! the cross-iteration dependences stay in the first loop(s); independent
//! statements split into their own loop, which can then be placed entirely
//! inside the barrier region — growing it from a single statement instance
//! (Fig. 5(b)) to a whole loop (Fig. 5(c)).

use crate::ast::LoopNest;
use crate::deps::{self, DepKind};

/// The result of distributing a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    /// Statement groups, each becoming one loop, in original statement
    /// order. `groups[g]` holds flattened-assignment indices.
    pub groups: Vec<Vec<usize>>,
    /// For each group, whether any of its statements participates in a
    /// cross-processor dependence (and therefore must stay in the
    /// non-barrier region). Groups with `false` can be placed entirely
    /// inside the barrier region.
    pub pinned: Vec<bool>,
}

impl Distribution {
    /// Indices of groups that may move wholly into the barrier region.
    #[must_use]
    pub fn movable_groups(&self) -> Vec<usize> {
        (0..self.groups.len())
            .filter(|&g| !self.pinned[g])
            .collect()
    }
}

/// Partitions the flattened assignments of `nest` into distributable
/// groups.
///
/// Two statements must stay in the same loop when a *within-iteration*
/// dependence (lexically forward or backward) connects them — splitting
/// them would reorder the dependent instances. Dependences carried by the
/// outer sequential loop do **not** force fusion: the barrier between
/// iterations enforces them regardless of how the body is split (this is
/// precisely why Fig. 5 can split S₂ away from S₁).
///
/// Groups are emitted in order of their smallest statement index, and
/// statement order is preserved inside each group, so the transformation
/// is always legal for the dependences it models.
#[must_use]
pub fn distribute(nest: &LoopNest) -> Distribution {
    let n = deps::flatten(&nest.body).len();
    let info = deps::analyze(nest);

    // Union-find over statements connected by within-iteration deps.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let union = |a: usize, b: usize, parent: &mut Vec<usize>| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    for d in &info.deps {
        if matches!(d.kind, DepKind::LexForward | DepKind::LexBackward) && d.from.stmt != d.to.stmt
        {
            union(d.from.stmt, d.to.stmt, &mut parent);
        }
    }

    // Collect groups ordered by first member.
    let mut group_of_root: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for s in 0..n {
        let root = find(&mut parent, s);
        let g = *group_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(s);
    }

    // A group is pinned if any member appears in a cross-processor
    // dependence endpoint — those accesses are the marked ones.
    let pinned: Vec<bool> = groups
        .iter()
        .map(|members| {
            members.iter().any(|&s| {
                info.deps
                    .iter()
                    .any(|d| d.cross_processor && (d.from.stmt == s || d.to.stmt == s))
            })
        })
        .collect();

    Distribution { groups, pinned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, Stmt, Subscript, VarId};

    /// Fig. 5(a): for i seq, j par:
    ///   S1: a[j][i] = a[j+1][i-1] + 2
    ///   S2: b[j][i] = b[j][i] + c[j][i]
    fn fig5() -> LoopNest {
        let i = VarId(0);
        let j = VarId(1);
        let a = ArrayId(0);
        let b = ArrayId(1);
        let c = ArrayId(2);
        let decl = |name: &str, base: i64| ArrayDecl {
            name: name.into(),
            dims: vec![10, 10],
            base,
        };
        LoopNest {
            arrays: vec![decl("a", 0), decl("b", 100), decl("c", 200)],
            seq_var: i,
            seq_lo: 1,
            seq_hi: 8,
            private_vars: vec![j],
            body: vec![
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                    value: Expr::add(
                        Expr::Access(ArrayAccess::new(
                            a,
                            vec![Subscript::var(j, 1), Subscript::var(i, -1)],
                        )),
                        Expr::Const(2),
                    ),
                }),
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(b, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                    value: Expr::add(
                        Expr::Access(ArrayAccess::new(
                            b,
                            vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                        )),
                        Expr::Access(ArrayAccess::new(
                            c,
                            vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                        )),
                    ),
                }),
            ],
            var_names: vec!["i".into(), "j".into()],
        }
    }

    #[test]
    fn fig5_splits_into_two_loops() {
        let dist = distribute(&fig5());
        assert_eq!(dist.groups, vec![vec![0], vec![1]]);
        // S1 carries the cross-processor dependence (a[j][i] vs
        // a[j+1][i-1]); S2 is private per processor.
        assert_eq!(dist.pinned, vec![true, false]);
        assert_eq!(dist.movable_groups(), vec![1]);
    }

    #[test]
    fn within_iteration_dep_fuses_statements() {
        // S1 writes a[j][i]; S2 reads a[j][i] in the same iteration on the
        // same processor — they must stay together.
        let i = VarId(0);
        let j = VarId(1);
        let a = ArrayId(0);
        let b = ArrayId(1);
        let decl = |name: &str, base: i64| ArrayDecl {
            name: name.into(),
            dims: vec![10, 10],
            base,
        };
        let nest = LoopNest {
            arrays: vec![decl("a", 0), decl("b", 100)],
            seq_var: i,
            seq_lo: 1,
            seq_hi: 8,
            private_vars: vec![j],
            body: vec![
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                    value: Expr::Const(1),
                }),
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(b, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                    value: Expr::Access(ArrayAccess::new(
                        a,
                        vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                    )),
                }),
            ],
            var_names: vec!["i".into(), "j".into()],
        };
        let dist = distribute(&nest);
        assert_eq!(dist.groups, vec![vec![0, 1]]);
    }

    #[test]
    fn independent_statements_all_split() {
        // Three statements on three disjoint arrays: three groups, none
        // pinned.
        let i = VarId(0);
        let decls: Vec<ArrayDecl> = (0..3)
            .map(|n| ArrayDecl {
                name: format!("a{n}"),
                dims: vec![16],
                base: n * 16,
            })
            .collect();
        let body = (0..3)
            .map(|n| {
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(ArrayId(n), vec![Subscript::var(i, 0)]),
                    value: Expr::Const(n as i64),
                })
            })
            .collect();
        let nest = LoopNest {
            arrays: decls,
            seq_var: VarId(9),
            seq_lo: 0,
            seq_hi: 3,
            private_vars: vec![i],
            body,
            var_names: vec!["i".into()],
        };
        let dist = distribute(&nest);
        assert_eq!(dist.groups.len(), 3);
        assert_eq!(dist.pinned, vec![false, false, false]);
    }
}
