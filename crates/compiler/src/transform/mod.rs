//! Statement-level program transformations that enlarge barrier regions.
//!
//! "In addition to reordering at the intermediate code level, statement
//! level transformations may be useful in increasing the size of the
//! barrier region" (Sec. 4). Three are reproduced:
//!
//! * [`distribution`] — loop distribution (Fig. 5), which turns a single
//!   statement-instance barrier region into an entire loop;
//! * [`cycle_shrink`] — cycle shrinking (the paper’s \[5\]): a loop whose
//!   minimum carried distance is *d* runs *d* iterations in parallel per
//!   barrier-separated group;
//! * [`unroll`] — outer-loop unrolling until the iteration count divides
//!   the processor count (Fig. 11);
//! * [`multiversion`] — the four loop-body versions selected at run time
//!   under self-scheduling (Fig. 12).

pub mod cycle_shrink;
pub mod distribution;
pub mod multiversion;
pub mod unroll;
