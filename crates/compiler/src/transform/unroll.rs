//! Outer-loop unrolling (Fig. 11).
//!
//! When the iterations of an inner parallel loop do not divide evenly among
//! the processors, the paper proposes (a) rotating the extra iteration
//! among processors, and (b) unrolling the outer loop "until the total
//! number of loop iterations available becomes divisible by the number of
//! processors", after which code reordering can create barrier regions
//! large enough to eliminate idling.

use crate::ast::{ArrayAccess, Assign, Expr, LoopNest, Stmt, Subscript};

/// The factor by which the outer loop must be unrolled so that
/// `iters_per_outer × factor` is divisible by `procs`. In Fig. 11 the
/// inner loop has 4 iterations on 3 processors; replicating the body 3×
/// ("unrolling the outer loop twice" in the paper's counting) yields 12
/// iterations, divisible by 3. Computed as
/// `procs / gcd(iters_per_outer, procs)`.
///
/// # Panics
///
/// Panics if either argument is zero.
#[must_use]
pub fn divisibility_factor(iters_per_outer: usize, procs: usize) -> usize {
    assert!(iters_per_outer > 0 && procs > 0);
    procs / gcd(iters_per_outer, procs)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Unrolls the sequential loop of `nest` by `factor`: the body is
/// replicated `factor` times with the sequential variable's subscript
/// offsets shifted by `0, 1, …, factor−1`, and the loop steps by `factor`.
///
/// The caller is responsible for ensuring the trip count divides `factor`
/// (use [`divisibility_factor`] / pad bounds first); this function asserts
/// it.
///
/// # Panics
///
/// Panics if `factor == 0` or the trip count is not divisible by `factor`.
#[must_use]
pub fn unroll_seq(nest: &LoopNest, factor: usize) -> UnrolledNest {
    assert!(factor > 0, "unroll factor must be positive");
    let trip = (nest.seq_hi - nest.seq_lo + 1) as usize;
    assert!(
        trip.is_multiple_of(factor),
        "trip count {trip} not divisible by unroll factor {factor}"
    );
    let mut body = Vec::with_capacity(nest.body.len() * factor);
    for copy in 0..factor as i64 {
        for stmt in &nest.body {
            body.push(shift_stmt(stmt, nest, copy));
        }
    }
    UnrolledNest {
        nest: LoopNest {
            body,
            ..nest.clone()
        },
        factor,
        step: factor as i64,
    }
}

/// An unrolled nest plus the metadata the code generator needs (the
/// sequential variable now steps by `step`).
#[derive(Debug, Clone, PartialEq)]
pub struct UnrolledNest {
    /// The transformed nest (body replicated with shifted subscripts).
    pub nest: LoopNest,
    /// The unroll factor.
    pub factor: usize,
    /// New step of the sequential variable.
    pub step: i64,
}

fn shift_stmt(stmt: &Stmt, nest: &LoopNest, shift: i64) -> Stmt {
    match stmt {
        Stmt::Assign(a) => Stmt::Assign(Assign {
            target: shift_access(&a.target, nest, shift),
            value: shift_expr(&a.value, nest, shift),
        }),
        Stmt::If {
            var,
            equals,
            then_branch,
            else_branch,
        } => Stmt::If {
            var: *var,
            equals: *equals,
            then_branch: then_branch
                .iter()
                .map(|s| shift_stmt(s, nest, shift))
                .collect(),
            else_branch: else_branch
                .iter()
                .map(|s| shift_stmt(s, nest, shift))
                .collect(),
        },
    }
}

fn shift_access(access: &ArrayAccess, nest: &LoopNest, shift: i64) -> ArrayAccess {
    ArrayAccess {
        array: access.array,
        subs: access
            .subs
            .iter()
            .map(|s| {
                if s.var == Some(nest.seq_var) {
                    Subscript {
                        var: s.var,
                        offset: s.offset + shift,
                    }
                } else {
                    *s
                }
            })
            .collect(),
    }
}

fn shift_expr(expr: &Expr, nest: &LoopNest, shift: i64) -> Expr {
    match expr {
        Expr::Access(a) => Expr::Access(shift_access(a, nest, shift)),
        Expr::Var(v) if *v == nest.seq_var && shift != 0 => {
            // `seq_var` in a value position becomes `seq_var + shift`.
            Expr::add(Expr::Var(*v), Expr::Const(shift))
        }
        Expr::Var(v) => Expr::Var(*v),
        Expr::Const(c) => Expr::Const(*c),
        Expr::Add(a, b) => Expr::add(shift_expr(a, nest, shift), shift_expr(b, nest, shift)),
        Expr::Sub(a, b) => Expr::sub(shift_expr(a, nest, shift), shift_expr(b, nest, shift)),
        Expr::Mul(a, b) => Expr::mul(shift_expr(a, nest, shift), shift_expr(b, nest, shift)),
        Expr::DivConst(a, c) => Expr::div_const(shift_expr(a, nest, shift), *c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayDecl, ArrayId, VarId};

    #[test]
    fn divisibility_factors() {
        // Fig. 11: 4 inner iterations on 3 processors → the outer loop
        // must be unrolled 3×: 12 iterations = 3 × 4.
        assert_eq!(divisibility_factor(4, 3), 3);
        assert_eq!(divisibility_factor(6, 3), 1);
        assert_eq!(divisibility_factor(6, 4), 2);
        assert_eq!(divisibility_factor(5, 5), 1);
        assert_eq!(divisibility_factor(1, 8), 8);
    }

    fn simple_nest() -> LoopNest {
        let k = VarId(0);
        let i = VarId(1);
        let a = ArrayId(0);
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![32, 8],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 6,
            private_vars: vec![i],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(k, 0), Subscript::var(i, 0)]),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(
                        a,
                        vec![Subscript::var(k, -1), Subscript::var(i, 0)],
                    )),
                    Expr::Var(k),
                ),
            })],
            var_names: vec!["k".into(), "i".into()],
        }
    }

    #[test]
    fn unroll_replicates_and_shifts() -> Result<(), String> {
        let u = unroll_seq(&simple_nest(), 2);
        assert_eq!(u.nest.body.len(), 2);
        assert_eq!(u.step, 2);
        // Second copy writes a[k+1][i] and reads a[k][i], uses k+1 as value.
        let Stmt::Assign(second) = &u.nest.body[1] else {
            return Err(format!(
                "{}:{}: expected body[1] of the unrolled nest to be an assignment, got {:?}",
                file!(),
                line!(),
                u.nest.body[1]
            ));
        };
        assert_eq!(second.target.subs[0].offset, 1);
        let reads = second.value.reads();
        assert_eq!(reads[0].subs[0].offset, 0);
        assert!(matches!(&second.value, Expr::Add(_, _)));
        Ok(())
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn unroll_requires_divisible_trip() {
        let _ = unroll_seq(&simple_nest(), 4); // trip 6, factor 4
    }

    #[test]
    fn unroll_by_one_is_identity_body() {
        let nest = simple_nest();
        let u = unroll_seq(&nest, 1);
        assert_eq!(u.nest.body, nest.body);
    }
}
