//! Code generation: TAC → simulator ISA, with register allocation.
//!
//! Register conventions: `r0` is kept zero (the code generator never writes
//! it, so absolute addressing works through it), scalar variables live in
//! caller-assigned low registers, and temps are allocated from a pool with
//! Belady (farthest-next-use) spilling into a per-processor spill area.
//!
//! Each emitted instruction carries the barrier-region bit of the region
//! being generated, which is how the compiler's [`crate::region`] decisions
//! reach the hardware.

use crate::ast::VarId;
use crate::tac::{AnnotatedInstr, BinOp, Src, TacInstr, Temp};
use fuzzy_sim::isa::{Instr, Reg};
use fuzzy_sim::program::StreamBuilder;
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// First register of the temp pool.
pub const TEMP_POOL_START: Reg = 8;
/// One past the last register of the temp pool.
pub const TEMP_POOL_END: Reg = 32;

/// Code-generation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodegenError {
    /// A scalar variable had no register assignment.
    UnmappedVar {
        /// The variable.
        var: VarId,
    },
    /// Division by a non-constant is not supported by the ISA.
    DivByNonConst,
    /// A temp was used before being defined.
    UseBeforeDef {
        /// The temp.
        temp: Temp,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnmappedVar { var } => {
                write!(f, "variable v{} has no register assignment", var.0)
            }
            CodegenError::DivByNonConst => write!(f, "division by a non-constant operand"),
            CodegenError::UseBeforeDef { temp } => write!(f, "temp {temp} used before definition"),
        }
    }
}

impl Error for CodegenError {}

/// Mapping from scalar variables to dedicated registers.
#[derive(Debug, Clone, Default)]
pub struct VarMap {
    map: BTreeMap<VarId, Reg>,
}

impl VarMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        VarMap::default()
    }

    /// Assigns `var` to `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is r0 or inside the temp pool.
    pub fn assign(&mut self, var: VarId, reg: Reg) {
        assert!(reg != 0, "r0 is the zero register");
        assert!(
            !(TEMP_POOL_START..TEMP_POOL_END).contains(&reg),
            "r{reg} belongs to the temp pool"
        );
        self.map.insert(var, reg);
    }

    /// The register of `var`, if assigned.
    #[must_use]
    pub fn reg(&self, var: VarId) -> Option<Reg> {
        self.map.get(&var).copied()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    Spilled(i64),
}

/// Belady register allocator over one straight-line instruction sequence.
#[derive(Debug)]
struct RegAlloc {
    free: Vec<Reg>,
    loc: HashMap<Temp, Loc>,
    in_reg: HashMap<Reg, Temp>,
    /// Remaining use positions per temp, ascending.
    uses: HashMap<Temp, Vec<usize>>,
    spill_base: i64,
    spill_slots: HashMap<Temp, i64>,
    next_slot: i64,
    /// Count of spill stores/reloads emitted (for diagnostics).
    spill_ops: u64,
}

impl RegAlloc {
    fn new(seq: &[&AnnotatedInstr], spill_base: i64) -> Self {
        let mut uses: HashMap<Temp, Vec<usize>> = HashMap::new();
        for (pos, a) in seq.iter().enumerate() {
            for u in a.instr.uses() {
                uses.entry(u).or_default().push(pos);
            }
        }
        RegAlloc {
            free: (TEMP_POOL_START..TEMP_POOL_END).rev().collect(),
            loc: HashMap::new(),
            in_reg: HashMap::new(),
            uses,
            spill_base,
            spill_slots: HashMap::new(),
            next_slot: 0,
            spill_ops: 0,
        }
    }

    fn next_use(&self, t: Temp, after: usize) -> usize {
        self.uses
            .get(&t)
            .and_then(|v| v.iter().find(|&&p| p >= after))
            .copied()
            .unwrap_or(usize::MAX)
    }

    /// Grabs a register, spilling the live temp with the farthest next use
    /// if none is free. `protect` lists registers that must not be evicted
    /// (operands of the current instruction).
    fn take_reg(&mut self, pos: usize, protect: &[Reg], out: &mut Vec<Instr>) -> Reg {
        if let Some(r) = self.free.pop() {
            return r;
        }
        // Evict: farthest next use among unprotected registers.
        let victim_reg = self
            .in_reg
            .iter()
            .filter(|(r, _)| !protect.contains(r))
            .max_by_key(|(_, &t)| self.next_use(t, pos))
            .map(|(&r, _)| r)
            .expect("temp pool larger than protected set");
        let victim = self.in_reg.remove(&victim_reg).expect("victim tracked");
        // Only write the spill slot if the temp is still needed.
        if self.next_use(victim, pos) != usize::MAX {
            let slot = *self.spill_slots.entry(victim).or_insert_with(|| {
                let s = self.spill_base + self.next_slot;
                self.next_slot += 1;
                s
            });
            out.push(Instr::Store {
                rs: victim_reg,
                rb: 0,
                offset: slot,
            });
            self.spill_ops += 1;
            self.loc.insert(victim, Loc::Spilled(slot));
        } else {
            self.loc.remove(&victim);
        }
        victim_reg
    }

    /// Ensures `t` is in a register, reloading from the spill area if
    /// needed.
    fn ensure_in_reg(
        &mut self,
        t: Temp,
        pos: usize,
        protect: &[Reg],
        out: &mut Vec<Instr>,
    ) -> Result<Reg, CodegenError> {
        match self.loc.get(&t) {
            Some(&Loc::Reg(r)) => Ok(r),
            Some(&Loc::Spilled(slot)) => {
                let r = self.take_reg(pos, protect, out);
                out.push(Instr::Load {
                    rd: r,
                    rs: 0,
                    offset: slot,
                });
                self.spill_ops += 1;
                self.loc.insert(t, Loc::Reg(r));
                self.in_reg.insert(r, t);
                Ok(r)
            }
            None => Err(CodegenError::UseBeforeDef { temp: t }),
        }
    }

    /// Binds the destination temp of the instruction at `pos` to a
    /// register.
    fn define(&mut self, t: Temp, pos: usize, protect: &[Reg], out: &mut Vec<Instr>) -> Reg {
        let r = self.take_reg(pos, protect, out);
        self.loc.insert(t, Loc::Reg(r));
        self.in_reg.insert(r, t);
        r
    }

    /// Releases registers whose temps have no further uses after `pos`.
    fn expire(&mut self, pos: usize) {
        let dead: Vec<(Reg, Temp)> = self
            .in_reg
            .iter()
            .filter(|(_, &t)| self.next_use(t, pos + 1) == usize::MAX)
            .map(|(&r, &t)| (r, t))
            .collect();
        for (r, t) in dead {
            self.in_reg.remove(&r);
            self.loc.remove(&t);
            self.free.push(r);
        }
    }
}

/// Result of emitting one TAC region.
#[derive(Debug, Clone, Default)]
pub struct EmitStats {
    /// ISA instructions emitted.
    pub isa_instrs: usize,
    /// Spill stores + reloads among them.
    pub spill_ops: u64,
}

/// Generates ISA code for a full loop body (`regions` in execution order,
/// each with its barrier bit) into `builder`.
///
/// The register allocator spans all regions, since temps defined in a
/// barrier region (address arithmetic) are used in the non-barrier region.
/// `spill_base` must point at a scratch memory area private to the
/// processor.
///
/// # Errors
///
/// Returns a [`CodegenError`] on unmapped variables, non-constant division
/// or malformed TAC.
pub fn emit_regions(
    builder: &mut StreamBuilder,
    regions: &[(&[AnnotatedInstr], bool)],
    vars: &VarMap,
    spill_base: i64,
) -> Result<EmitStats, CodegenError> {
    let seq: Vec<&AnnotatedInstr> = regions
        .iter()
        .flat_map(|(instrs, _)| instrs.iter())
        .collect();
    let mut alloc = RegAlloc::new(&seq, spill_base);
    let mut stats = EmitStats::default();
    let mut pos = 0usize;
    for (instrs, barrier) in regions {
        for a in instrs.iter() {
            let mut out: Vec<Instr> = Vec::new();
            emit_one(&a.instr, pos, &mut alloc, vars, &mut out)?;
            alloc.expire(pos);
            stats.isa_instrs += out.len();
            for instr in out {
                builder.op(instr, *barrier);
            }
            pos += 1;
        }
    }
    stats.spill_ops = alloc.spill_ops;
    Ok(stats)
}

/// Operand resolved to either a register or an immediate.
enum Val {
    Reg(Reg),
    Imm(i64),
}

fn resolve(
    src: Src,
    pos: usize,
    alloc: &mut RegAlloc,
    vars: &VarMap,
    protect: &mut Vec<Reg>,
    out: &mut Vec<Instr>,
) -> Result<Val, CodegenError> {
    match src {
        Src::Const(c) => Ok(Val::Imm(c)),
        Src::Var(v) => {
            let r = vars.reg(v).ok_or(CodegenError::UnmappedVar { var: v })?;
            Ok(Val::Reg(r))
        }
        Src::Temp(t) => {
            let r = alloc.ensure_in_reg(t, pos, protect, out)?;
            protect.push(r);
            Ok(Val::Reg(r))
        }
        Src::Mem(t) => {
            let addr = alloc.ensure_in_reg(t, pos, protect, out)?;
            protect.push(addr);
            let r = alloc.take_reg(pos, protect, out);
            out.push(Instr::Load {
                rd: r,
                rs: addr,
                offset: 0,
            });
            protect.push(r);
            // The loaded value lives in a scratch register that is not
            // bound to any temp: free it again right away by pushing it
            // back AFTER the instruction is finished — handled by caller
            // convention: scratch regs are returned to the pool by expire()
            // being a no-op for them, so we must free explicitly.
            Ok(Val::Reg(r))
        }
    }
}

fn emit_one(
    instr: &TacInstr,
    pos: usize,
    alloc: &mut RegAlloc,
    vars: &VarMap,
    out: &mut Vec<Instr>,
) -> Result<(), CodegenError> {
    let mut protect: Vec<Reg> = Vec::new();
    let free_scratch = |alloc: &mut RegAlloc, protect: &[Reg]| {
        // Return scratch registers (protected but not bound to a temp and
        // not a var register) to the pool.
        for &r in protect {
            if (TEMP_POOL_START..TEMP_POOL_END).contains(&r)
                && !alloc.in_reg.contains_key(&r)
                && !alloc.free.contains(&r)
            {
                alloc.free.push(r);
            }
        }
    };
    match instr {
        TacInstr::Const { dst, value } => {
            let rd = alloc.define(*dst, pos, &protect, out);
            out.push(Instr::Li { rd, imm: *value });
        }
        TacInstr::Copy { dst, src } => {
            let v = resolve(*src, pos, alloc, vars, &mut protect, out)?;
            let rd = alloc.define(*dst, pos, &protect, out);
            match v {
                Val::Imm(c) => out.push(Instr::Li { rd, imm: c }),
                Val::Reg(rs) => out.push(Instr::Mov { rd, rs }),
            }
            free_scratch(alloc, &protect);
        }
        TacInstr::Bin { dst, op, lhs, rhs } => {
            let lv = resolve(*lhs, pos, alloc, vars, &mut protect, out)?;
            let rv = resolve(*rhs, pos, alloc, vars, &mut protect, out)?;
            let rd = alloc.define(*dst, pos, &protect, out);
            emit_bin(rd, *op, lv, rv, &mut protect, alloc, pos, out)?;
            free_scratch(alloc, &protect);
        }
        TacInstr::Store { addr, src } => {
            let v = resolve(*src, pos, alloc, vars, &mut protect, out)?;
            let rs = match v {
                Val::Reg(r) => r,
                Val::Imm(c) => {
                    let r = alloc.take_reg(pos, &protect, out);
                    out.push(Instr::Li { rd: r, imm: c });
                    protect.push(r);
                    r
                }
            };
            let ra = alloc.ensure_in_reg(*addr, pos, &protect, out)?;
            out.push(Instr::Store {
                rs,
                rb: ra,
                offset: 0,
            });
            free_scratch(alloc, &protect);
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_bin(
    rd: Reg,
    op: BinOp,
    lv: Val,
    rv: Val,
    protect: &mut Vec<Reg>,
    alloc: &mut RegAlloc,
    pos: usize,
    out: &mut Vec<Instr>,
) -> Result<(), CodegenError> {
    let materialize =
        |c: i64, protect: &mut Vec<Reg>, alloc: &mut RegAlloc, out: &mut Vec<Instr>| {
            let r = alloc.take_reg(pos, protect, out);
            out.push(Instr::Li { rd: r, imm: c });
            protect.push(r);
            r
        };
    match (op, lv, rv) {
        // Constant folding.
        (BinOp::Add, Val::Imm(a), Val::Imm(b)) => out.push(Instr::Li {
            rd,
            imm: a.wrapping_add(b),
        }),
        (BinOp::Sub, Val::Imm(a), Val::Imm(b)) => out.push(Instr::Li {
            rd,
            imm: a.wrapping_sub(b),
        }),
        (BinOp::Mul, Val::Imm(a), Val::Imm(b)) => out.push(Instr::Li {
            rd,
            imm: a.wrapping_mul(b),
        }),
        (BinOp::Div, Val::Imm(a), Val::Imm(b)) => out.push(Instr::Li {
            rd,
            imm: if b == 0 { 0 } else { a.wrapping_div(b) },
        }),
        // Register-immediate forms.
        (BinOp::Add, Val::Reg(r), Val::Imm(c)) | (BinOp::Add, Val::Imm(c), Val::Reg(r)) => {
            out.push(Instr::Addi { rd, rs: r, imm: c });
        }
        (BinOp::Sub, Val::Reg(r), Val::Imm(c)) => out.push(Instr::Addi { rd, rs: r, imm: -c }),
        (BinOp::Mul, Val::Reg(r), Val::Imm(c)) | (BinOp::Mul, Val::Imm(c), Val::Reg(r)) => {
            out.push(Instr::Muli { rd, rs: r, imm: c });
        }
        (BinOp::Div, Val::Reg(r), Val::Imm(c)) => out.push(Instr::Divi { rd, rs: r, imm: c }),
        // Immediate-left subtraction needs materialization.
        (BinOp::Sub, Val::Imm(c), Val::Reg(r)) => {
            let ra = materialize(c, protect, alloc, out);
            out.push(Instr::Sub {
                rd,
                rs1: ra,
                rs2: r,
            });
        }
        (BinOp::Div, _, Val::Reg(_)) => return Err(CodegenError::DivByNonConst),
        // Register-register forms.
        (BinOp::Add, Val::Reg(a), Val::Reg(b)) => out.push(Instr::Add { rd, rs1: a, rs2: b }),
        (BinOp::Sub, Val::Reg(a), Val::Reg(b)) => out.push(Instr::Sub { rd, rs1: a, rs2: b }),
        (BinOp::Mul, Val::Reg(a), Val::Reg(b)) => out.push(Instr::Mul { rd, rs1: a, rs2: b }),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps;
    use crate::lower::{lower_body, tests::poisson_nest};
    use crate::region::RegionSplit;
    use crate::reorder::reorder;
    use fuzzy_sim::machine::{Machine, MachineConfig};
    use fuzzy_sim::program::Program;

    /// Compiles the Poisson body once (single processor, i=j=1) and runs
    /// it on the simulator, checking the relaxation arithmetic.
    fn run_poisson_once(use_reorder: bool) -> i64 {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let split = if use_reorder {
            reorder(&body)
        } else {
            RegionSplit::by_marks(&body)
        };

        let mut vars = VarMap::new();
        let (k, i, j) = (VarId(0), VarId(1), VarId(2));
        vars.assign(k, 1);
        vars.assign(i, 2);
        vars.assign(j, 3);

        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 1 }); // k
        b.plain(Instr::Li { rd: 2, imm: 1 }); // i
        b.plain(Instr::Li { rd: 3, imm: 1 }); // j
        emit_regions(
            &mut b,
            &[
                (&split.prefix, true),
                (&split.non_barrier, false),
                (&split.suffix, true),
            ],
            &vars,
            1000,
        )
        .unwrap();
        b.plain(Instr::Halt);
        let stream = b.finish().unwrap();
        let mut m = Machine::new(Program::new(vec![stream]), MachineConfig::default()).unwrap();
        // Neighbours of P[1][1] in a 4x4 array at base 0:
        // P[1][2]=8, P[1][0]=2, P[2][1]=20, P[0][1]=10 → (8+2+20+10)/4 = 10
        let at = |row: usize, col: usize| row * 4 + col;
        m.memory_mut().poke(at(1, 2), 8);
        m.memory_mut().poke(at(1, 0), 2);
        m.memory_mut().poke(at(2, 1), 20);
        m.memory_mut().poke(at(0, 1), 10);
        assert!(m.run(100_000).unwrap().is_halted());
        m.memory().peek(at(1, 1))
    }

    #[test]
    fn poisson_codegen_computes_correct_average() {
        assert_eq!(run_poisson_once(false), 10);
    }

    #[test]
    fn reordered_poisson_computes_the_same_value() {
        assert_eq!(run_poisson_once(true), 10);
    }

    #[test]
    fn unmapped_var_is_an_error() {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let mut b = StreamBuilder::new();
        let err = emit_regions(&mut b, &[(&body.instrs, false)], &VarMap::new(), 1000).unwrap_err();
        assert!(matches!(err, CodegenError::UnmappedVar { .. }));
    }

    #[test]
    fn constant_folding_and_immediate_forms() {
        use crate::tac::{AnnotatedInstr, TacBody};
        // T1 = 6; T2 = 7 - T1 (imm-left sub, must materialize);
        // T3 = T2 * 3; T4 = T3 / 2; T5 = 2 + 3 (folded);
        // store results at 500/501.
        let t = Temp;
        let instrs = vec![
            AnnotatedInstr::plain(TacInstr::Const {
                dst: t(1),
                value: 6,
            }),
            AnnotatedInstr::plain(TacInstr::Bin {
                dst: t(2),
                op: BinOp::Sub,
                lhs: Src::Const(7),
                rhs: Src::Temp(t(1)),
            }),
            AnnotatedInstr::plain(TacInstr::Bin {
                dst: t(3),
                op: BinOp::Mul,
                lhs: Src::Temp(t(2)),
                rhs: Src::Const(3),
            }),
            AnnotatedInstr::plain(TacInstr::Bin {
                dst: t(4),
                op: BinOp::Div,
                lhs: Src::Temp(t(3)),
                rhs: Src::Const(2),
            }),
            AnnotatedInstr::plain(TacInstr::Bin {
                dst: t(5),
                op: BinOp::Add,
                lhs: Src::Const(2),
                rhs: Src::Const(3),
            }),
            AnnotatedInstr::plain(TacInstr::Const {
                dst: t(6),
                value: 500,
            }),
            AnnotatedInstr::plain(TacInstr::Store {
                addr: t(6),
                src: Src::Temp(t(4)),
            }),
            AnnotatedInstr::plain(TacInstr::Const {
                dst: t(7),
                value: 501,
            }),
            AnnotatedInstr::plain(TacInstr::Store {
                addr: t(7),
                src: Src::Temp(t(5)),
            }),
        ];
        let body = TacBody {
            instrs,
            next_temp: 8,
        };
        let mut b = StreamBuilder::new();
        emit_regions(&mut b, &[(&body.instrs, false)], &VarMap::new(), 1000).unwrap();
        b.plain(Instr::Halt);
        let mut m = Machine::new(
            Program::new(vec![b.finish().unwrap()]),
            MachineConfig::default(),
        )
        .unwrap();
        assert!(m.run(10_000).unwrap().is_halted());
        // (7-6)*3/2 = 1; 2+3 = 5
        assert_eq!(m.memory().peek(500), 1);
        assert_eq!(m.memory().peek(501), 5);
    }

    #[test]
    fn store_of_immediate_materializes() {
        use crate::tac::{AnnotatedInstr, TacBody};
        let body = TacBody {
            instrs: vec![
                AnnotatedInstr::plain(TacInstr::Const {
                    dst: Temp(1),
                    value: 77,
                }),
                AnnotatedInstr::plain(TacInstr::Store {
                    addr: Temp(1),
                    src: Src::Const(-9),
                }),
            ],
            next_temp: 2,
        };
        let mut b = StreamBuilder::new();
        emit_regions(&mut b, &[(&body.instrs, false)], &VarMap::new(), 1000).unwrap();
        b.plain(Instr::Halt);
        let mut m = Machine::new(
            Program::new(vec![b.finish().unwrap()]),
            MachineConfig::default(),
        )
        .unwrap();
        assert!(m.run(1000).unwrap().is_halted());
        assert_eq!(m.memory().peek(77), -9);
    }

    #[test]
    fn spilling_handles_many_live_temps() {
        // Build a body with more simultaneously-live temps than the pool:
        // 40 constants all summed at the end.
        use crate::tac::{AnnotatedInstr, TacBody};
        let n = 40usize;
        let mut instrs: Vec<AnnotatedInstr> = (0..n)
            .map(|t| {
                AnnotatedInstr::plain(TacInstr::Const {
                    dst: Temp(t + 1),
                    value: t as i64 + 1,
                })
            })
            .collect();
        let mut acc = Temp(1);
        for t in 2..=n {
            let dst = Temp(n + t);
            instrs.push(AnnotatedInstr::plain(TacInstr::Bin {
                dst,
                op: BinOp::Add,
                lhs: Src::Temp(acc),
                rhs: Src::Temp(Temp(t)),
            }));
            acc = dst;
        }
        // Store the sum at address 500.
        instrs.push(AnnotatedInstr::plain(TacInstr::Const {
            dst: Temp(999),
            value: 500,
        }));
        instrs.push(AnnotatedInstr::plain(TacInstr::Store {
            addr: Temp(999),
            src: Src::Temp(acc),
        }));
        let body = TacBody {
            instrs,
            next_temp: 1000,
        };

        let mut b = StreamBuilder::new();
        let stats = emit_regions(&mut b, &[(&body.instrs, false)], &VarMap::new(), 600).unwrap();
        assert!(stats.spill_ops > 0, "this body must force spills");
        b.plain(Instr::Halt);
        let mut m = Machine::new(
            Program::new(vec![b.finish().unwrap()]),
            MachineConfig::default(),
        )
        .unwrap();
        assert!(m.run(1_000_000).unwrap().is_halted());
        assert_eq!(m.memory().peek(500), (1..=40).sum::<i64>());
    }
}
