//! Source-level representation of parallel loop nests.
//!
//! The paper's compiler examples (Poisson solver Fig. 3, loop distribution
//! Fig. 5, lexically forward dependences Fig. 9) all share one shape: an
//! outer **sequential** loop whose iterations are separated by barriers,
//! containing statements over arrays whose subscripts are affine
//! (`var + constant`) in the loop variables, executed in parallel across
//! processors. This module models exactly that shape.

use std::fmt;

/// Identifier of a scalar (loop) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Identifier of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// An affine subscript: `var + offset`, or a constant when `var` is `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subscript {
    /// The loop variable, if any.
    pub var: Option<VarId>,
    /// The constant offset.
    pub offset: i64,
}

impl Subscript {
    /// `var + offset`.
    #[must_use]
    pub fn var(v: VarId, offset: i64) -> Self {
        Subscript {
            var: Some(v),
            offset,
        }
    }

    /// A constant subscript.
    #[must_use]
    pub fn constant(offset: i64) -> Self {
        Subscript { var: None, offset }
    }

    /// The constant distance between two subscripts if they use the same
    /// variable (or are both constant): `self − other`.
    #[must_use]
    pub fn distance(&self, other: &Subscript) -> Option<i64> {
        if self.var == other.var {
            Some(self.offset - other.offset)
        } else {
            None
        }
    }
}

/// A subscripted array reference, e.g. `P[i][j+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayAccess {
    /// Which array.
    pub array: ArrayId,
    /// One subscript per dimension.
    pub subs: Vec<Subscript>,
}

impl ArrayAccess {
    /// Creates an access.
    #[must_use]
    pub fn new(array: ArrayId, subs: Vec<Subscript>) -> Self {
        ArrayAccess { array, subs }
    }
}

/// An arithmetic expression over array accesses, variables and constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An array element read.
    Access(ArrayAccess),
    /// A scalar variable read.
    Var(VarId),
    /// A constant.
    Const(i64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division by a constant.
    DivConst(Box<Expr>, i64),
}

impl Expr {
    // These are boxing constructors taking both operands by value, not
    // operator methods — implementing `std::ops::{Add, Sub, Mul}` instead
    // would misleadingly suggest arithmetic on evaluated values.
    /// Convenience constructor for `a + b`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a - b`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a * b`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a / c`.
    #[must_use]
    pub fn div_const(a: Expr, c: i64) -> Expr {
        Expr::DivConst(Box::new(a), c)
    }

    /// All array reads in the expression, in evaluation order.
    #[must_use]
    pub fn reads(&self) -> Vec<&ArrayAccess> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayAccess>) {
        match self {
            Expr::Access(a) => out.push(a),
            Expr::Var(_) | Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::DivConst(a, _) => a.collect_reads(out),
        }
    }
}

/// An assignment statement `target = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// The array element written.
    pub target: ArrayAccess,
    /// The value expression.
    pub value: Expr,
}

/// A statement of the (restricted) source language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An array assignment.
    Assign(Assign),
    /// A two-way conditional on `var cmp const` (enough for the Fig. 7
    /// variable-length-stream experiments).
    If {
        /// The scrutinized variable.
        var: VarId,
        /// Comparison constant; the branch tests `var == constant`.
        equals: i64,
        /// Statements when equal.
        then_branch: Vec<Stmt>,
        /// Statements when not equal.
        else_branch: Vec<Stmt>,
    },
}

impl Stmt {
    /// All array assignments inside the statement (flattening branches).
    #[must_use]
    pub fn assignments(&self) -> Vec<&Assign> {
        let mut out = Vec::new();
        self.collect_assignments(&mut out);
        out
    }

    fn collect_assignments<'a>(&'a self, out: &mut Vec<&'a Assign>) {
        match self {
            Stmt::Assign(a) => out.push(a),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    s.collect_assignments(out);
                }
                for s in else_branch {
                    s.collect_assignments(out);
                }
            }
        }
    }
}

/// Declaration of an array with rectangular dimensions (row-major,
/// one word per element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (for listings).
    pub name: String,
    /// Extents, outermost first.
    pub dims: Vec<usize>,
    /// Base word address in simulator memory.
    pub base: i64,
}

impl ArrayDecl {
    /// Total elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the array has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major stride (in words) of dimension `d`: the product of the
    /// extents of all inner dimensions.
    #[must_use]
    pub fn stride(&self, d: usize) -> i64 {
        self.dims[d + 1..].iter().product::<usize>() as i64
    }
}

/// A parallel loop nest in the paper's canonical shape: a sequential outer
/// loop (iterations separated by barriers) whose body each processor
/// executes with its own private coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Arrays referenced by the body.
    pub arrays: Vec<ArrayDecl>,
    /// The sequential loop variable (e.g. `k` in the Poisson solver).
    pub seq_var: VarId,
    /// Outer loop bounds: `seq_var` runs from `lo` to `hi` inclusive,
    /// step 1.
    pub seq_lo: i64,
    /// Inclusive upper bound.
    pub seq_hi: i64,
    /// Per-processor private variables and how each processor initializes
    /// them (the paper's "private i, j, k" with `i = l; j = m`).
    pub private_vars: Vec<VarId>,
    /// The loop body, executed by every processor per outer iteration.
    pub body: Vec<Stmt>,
    /// Names for variables (for listings), indexed by `VarId`.
    pub var_names: Vec<String>,
}

impl LoopNest {
    /// The declaration of `array`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn array(&self, array: ArrayId) -> &ArrayDecl {
        &self.arrays[array.0]
    }

    /// The display name of `var`.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        self.var_names.get(var.0).map_or("?", String::as_str)
    }
}

impl fmt::Display for Subscript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.var, self.offset) {
            (None, c) => write!(f, "{c}"),
            (Some(v), 0) => write!(f, "v{}", v.0),
            (Some(v), c) if c > 0 => write!(f, "v{}+{c}", v.0),
            (Some(v), c) => write!(f, "v{}{c}", v.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscript_distance() {
        let i = VarId(0);
        let j = VarId(1);
        assert_eq!(
            Subscript::var(i, 1).distance(&Subscript::var(i, -1)),
            Some(2)
        );
        assert_eq!(Subscript::var(i, 0).distance(&Subscript::var(j, 0)), None);
        assert_eq!(
            Subscript::constant(5).distance(&Subscript::constant(3)),
            Some(2)
        );
    }

    #[test]
    fn expr_reads_in_order() {
        let p = ArrayId(0);
        let i = VarId(0);
        let a1 = ArrayAccess::new(p, vec![Subscript::var(i, 1)]);
        let a2 = ArrayAccess::new(p, vec![Subscript::var(i, -1)]);
        let e = Expr::div_const(
            Expr::add(Expr::Access(a1.clone()), Expr::Access(a2.clone())),
            4,
        );
        let reads = e.reads();
        assert_eq!(reads, vec![&a1, &a2]);
    }

    #[test]
    fn stmt_assignments_flatten_branches() {
        let p = ArrayId(0);
        let i = VarId(0);
        let mk = |off| {
            Stmt::Assign(Assign {
                target: ArrayAccess::new(p, vec![Subscript::var(i, off)]),
                value: Expr::Const(off),
            })
        };
        let s = Stmt::If {
            var: i,
            equals: 0,
            then_branch: vec![mk(1)],
            else_branch: vec![mk(2), mk(3)],
        };
        assert_eq!(s.assignments().len(), 3);
    }

    #[test]
    fn array_strides_are_row_major() {
        let d = ArrayDecl {
            name: "P".into(),
            dims: vec![3, 4, 5],
            base: 100,
        };
        assert_eq!(d.len(), 60);
        assert_eq!(d.stride(0), 20);
        assert_eq!(d.stride(1), 5);
        assert_eq!(d.stride(2), 1);
    }
}
