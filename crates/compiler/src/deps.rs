//! Dependence analysis over loop nests.
//!
//! Two kinds of dependence drive barrier placement in the paper:
//!
//! * **loop-carried** dependences of the sequential outer loop (Sec. 4:
//!   "a barrier at the end of each iteration of the outer loop enforces
//!   loop carried dependences") — these determine the *marked*
//!   instructions;
//! * **lexically forward** dependences (Sec. 7.2, Fig. 8): a statement
//!   later in the iteration reads what an earlier statement wrote, possibly
//!   on a different processor — "in an architecture where processors
//!   execute asynchronously, a barrier synchronization is required to
//!   guarantee these dependences".
//!
//! Subscripts are affine (`var + c`), so the analysis is the constant-
//! distance (SIV) test; anything it cannot prove independent is treated as
//! dependent.

use crate::ast::{ArrayAccess, ArrayId, LoopNest, Stmt, VarId};
use std::collections::BTreeSet;

/// Where an access sits inside a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessLoc {
    /// The assignment target (a write).
    Target,
    /// The `k`-th array read of the value expression.
    Read(usize),
}

/// A reference to one array access in the flattened assignment list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessRef {
    /// Index into the flattened assignment list (see [`flatten`]).
    pub stmt: usize,
    /// Which access within that assignment.
    pub loc: AccessLoc,
}

/// Classification of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Carried by the sequential outer loop. Enforced by the
    /// end-of-iteration barrier. `distance` is the iteration distance when
    /// the sequential variable appears in the subscripts; when it does not
    /// (as in the Poisson solver, where `k` never subscripts `P`), the
    /// dependence holds at **every** distance and is recorded as 0.
    Carried {
        /// Outer-loop iteration distance; 0 means "unconstrained".
        distance: i64,
    },
    /// Within one outer iteration, source statement lexically precedes the
    /// sink — a *lexically forward* dependence (Fig. 8).
    LexForward,
    /// Within one outer iteration, source statement lexically follows or
    /// equals the sink — only satisfiable by a barrier *before* the sink's
    /// next execution; shows up when code is unrolled incorrectly.
    LexBackward,
}

/// One dependence edge: `from` (a write) must complete before `to` (a read
/// or write of an overlapping element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// The source access (always a write).
    pub from: AccessRef,
    /// The sink access.
    pub to: AccessRef,
    /// The array involved.
    pub array: ArrayId,
    /// Classification.
    pub kind: DepKind,
    /// Whether the endpoints can be executed by different processors
    /// (subscripts differ in a private/processor variable).
    pub cross_processor: bool,
}

/// Flattens a statement list into `(assignment index, &Assign)` pairs in
/// program order, descending into both branches of conditionals.
#[must_use]
pub fn flatten(body: &[Stmt]) -> Vec<&crate::ast::Assign> {
    body.iter().flat_map(Stmt::assignments).collect()
}

/// Relation between two accesses to the same array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    /// Provably never the same element.
    Independent,
    /// Possibly the same element, with the given outer-loop distance
    /// (`None` when the sequential variable does not constrain the pair)
    /// and cross-processor flag.
    Dependent {
        seq_distance: Option<i64>,
        cross_processor: bool,
    },
}

/// Compares two accesses dimension by dimension.
fn relate(
    write: &ArrayAccess,
    read: &ArrayAccess,
    seq_var: VarId,
    private_vars: &BTreeSet<VarId>,
) -> Relation {
    if write.array != read.array || write.subs.len() != read.subs.len() {
        return Relation::Independent;
    }
    let mut seq_distance: Option<i64> = None;
    let mut cross_processor = false;
    for (ws, rs) in write.subs.iter().zip(&read.subs) {
        match ws.distance(rs) {
            Some(d) => {
                let var = ws.var;
                if var == Some(seq_var) {
                    seq_distance = Some(d);
                } else if d != 0 {
                    // Same non-sequential variable, different offsets: the
                    // accesses coincide only for different values of that
                    // variable — different processors when it is private.
                    if var.is_some_and(|v| private_vars.contains(&v)) {
                        cross_processor = true;
                    } else if var.is_none() {
                        // Two distinct constants: provably different element.
                        return Relation::Independent;
                    } else {
                        cross_processor = true;
                    }
                }
            }
            None => {
                // Different variables in the same dimension: cannot prove
                // independence; conservatively cross-processor.
                cross_processor = true;
            }
        }
    }
    Relation::Dependent {
        seq_distance,
        cross_processor,
    }
}

/// Result of analysing a [`LoopNest`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepInfo {
    /// All dependences found, in discovery order.
    pub deps: Vec<Dependence>,
}

impl DepInfo {
    /// Dependences carried by the outer loop.
    pub fn carried(&self) -> impl Iterator<Item = &Dependence> {
        self.deps
            .iter()
            .filter(|d| matches!(d.kind, DepKind::Carried { .. }))
    }

    /// Lexically forward dependences within an iteration.
    pub fn lex_forward(&self) -> impl Iterator<Item = &Dependence> {
        self.deps.iter().filter(|d| d.kind == DepKind::LexForward)
    }

    /// The *marked* accesses for a barrier enforcing the given dependences:
    /// every source and sink access (Sec. 4: "the marked instructions are
    /// those instructions which either access a value computed by another
    /// processor or compute a value that will be accessed by another
    /// processor").
    #[must_use]
    pub fn marked_accesses<'a>(
        &self,
        deps: impl IntoIterator<Item = &'a Dependence>,
    ) -> BTreeSet<AccessRef> {
        let mut set = BTreeSet::new();
        for d in deps {
            set.insert(d.from);
            set.insert(d.to);
        }
        set
    }

    /// Marked accesses for the end-of-iteration barrier (carried deps that
    /// may cross processors).
    #[must_use]
    pub fn marked_for_carried(&self) -> BTreeSet<AccessRef> {
        self.marked_accesses(self.carried().filter(|d| d.cross_processor))
    }
}

/// Analyses all write→read and write→write pairs in the nest body.
#[must_use]
pub fn analyze(nest: &LoopNest) -> DepInfo {
    let assigns = flatten(&nest.body);
    let private: BTreeSet<VarId> = nest.private_vars.iter().copied().collect();
    let mut deps = Vec::new();

    for (wi, w) in assigns.iter().enumerate() {
        // write → read pairs
        for (ri, r) in assigns.iter().enumerate() {
            for (k, read) in r.value.reads().iter().enumerate() {
                if let Relation::Dependent {
                    seq_distance,
                    cross_processor,
                } = relate(&w.target, read, nest.seq_var, &private)
                {
                    let kind = classify(seq_distance, cross_processor, wi, ri);
                    // A zero-distance dependence of a statement on itself
                    // through the same element is just a reuse, not an
                    // ordering constraint between processors.
                    if kind == DepKind::LexBackward && wi == ri && !cross_processor {
                        continue;
                    }
                    deps.push(Dependence {
                        from: AccessRef {
                            stmt: wi,
                            loc: AccessLoc::Target,
                        },
                        to: AccessRef {
                            stmt: ri,
                            loc: AccessLoc::Read(k),
                        },
                        array: w.target.array,
                        kind,
                        cross_processor,
                    });
                }
            }
        }
        // write → write pairs (output dependences), needed for marking
        // when two processors may write overlapping elements.
        for (vi, v) in assigns.iter().enumerate() {
            if vi == wi {
                continue;
            }
            if let Relation::Dependent {
                seq_distance,
                cross_processor,
            } = relate(&w.target, &v.target, nest.seq_var, &private)
            {
                // Within-iteration same-processor output dependences
                // (zero distance, not cross-processor) are ordering
                // constraints too: two statements storing to the same
                // element must keep their lexical order, or the later
                // value is lost. They classify as LexForward/LexBackward
                // and are what keeps loop distribution from splitting the
                // pair apart.
                deps.push(Dependence {
                    from: AccessRef {
                        stmt: wi,
                        loc: AccessLoc::Target,
                    },
                    to: AccessRef {
                        stmt: vi,
                        loc: AccessLoc::Target,
                    },
                    array: w.target.array,
                    kind: classify(seq_distance, cross_processor, wi, vi),
                    cross_processor,
                });
            }
        }
    }
    DepInfo { deps }
}

fn classify(
    seq_distance: Option<i64>,
    cross_processor: bool,
    from_stmt: usize,
    to_stmt: usize,
) -> DepKind {
    match seq_distance {
        Some(d) if d != 0 => DepKind::Carried { distance: d },
        Some(_) => {
            if from_stmt < to_stmt {
                DepKind::LexForward
            } else {
                DepKind::LexBackward
            }
        }
        None => {
            // The sequential variable does not constrain the pair: the
            // dependence exists between *every* pair of outer iterations
            // when it can cross processors (Poisson), and degenerates to a
            // same-processor reuse otherwise.
            if cross_processor {
                DepKind::Carried { distance: 0 }
            } else if from_stmt < to_stmt {
                DepKind::LexForward
            } else {
                DepKind::LexBackward
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayDecl, Assign, Expr, Subscript};

    /// The Poisson solver body (Fig. 3):
    /// `P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4`
    /// with `k` sequential and `i`, `j` private.
    fn poisson() -> LoopNest {
        let k = VarId(0);
        let i = VarId(1);
        let j = VarId(2);
        let p = ArrayId(0);
        let acc = |di: i64, dj: i64| {
            Expr::Access(ArrayAccess::new(
                p,
                vec![Subscript::var(i, di), Subscript::var(j, dj)],
            ))
        };
        let value = Expr::div_const(
            Expr::add(
                Expr::add(acc(0, 1), acc(0, -1)),
                Expr::add(acc(1, 0), acc(-1, 0)),
            ),
            4,
        );
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "P".into(),
                dims: vec![4, 4],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 20,
            private_vars: vec![i, j],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
                value,
            })],
            var_names: vec!["k".into(), "i".into(), "j".into()],
        }
    }

    #[test]
    fn poisson_has_carried_cross_processor_deps_on_all_reads() {
        // P[i][j] written; P[i±1][j], P[i][j±1] read: four dependences,
        // all cross-processor. The outer variable k does not appear in the
        // subscripts, so each holds at every iteration distance — the
        // loop-carried dependences the end-of-iteration barrier enforces.
        let info = analyze(&poisson());
        let cross: Vec<_> = info.deps.iter().filter(|d| d.cross_processor).collect();
        assert_eq!(cross.len(), 4);
        assert!(cross
            .iter()
            .all(|d| matches!(d.kind, DepKind::Carried { .. })));
        // The marked accesses are the write target plus all four reads —
        // exactly the paper's I1…I4 instructions.
        let marked = info.marked_for_carried();
        assert_eq!(marked.len(), 5);
        assert!(marked.contains(&AccessRef {
            stmt: 0,
            loc: AccessLoc::Target
        }));
    }

    /// Fig. 9: `a[j][i] = a[j-1][i-1] + i*j` with `j` sequential, `i`
    /// private.
    fn fig9() -> LoopNest {
        let j = VarId(0);
        let i = VarId(1);
        let a = ArrayId(0);
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![10, 4],
                base: 0,
            }],
            seq_var: j,
            seq_lo: 1,
            seq_hi: 9,
            private_vars: vec![i],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(
                        a,
                        vec![Subscript::var(j, -1), Subscript::var(i, -1)],
                    )),
                    Expr::mul(Expr::Var(i), Expr::Var(j)),
                ),
            })],
            var_names: vec!["j".into(), "i".into()],
        }
    }

    #[test]
    fn fig9_dependence_is_carried_and_cross_processor() {
        let info = analyze(&fig9());
        assert_eq!(info.deps.len(), 1);
        let d = &info.deps[0];
        assert_eq!(d.kind, DepKind::Carried { distance: 1 });
        assert!(d.cross_processor);
        let marked = info.marked_for_carried();
        assert_eq!(marked.len(), 2);
        assert!(marked.contains(&AccessRef {
            stmt: 0,
            loc: AccessLoc::Target
        }));
        assert!(marked.contains(&AccessRef {
            stmt: 0,
            loc: AccessLoc::Read(0)
        }));
    }

    /// Fig. 9 unrolled once: two statements; the second reads what the
    /// first wrote on a *different processor* in the same outer iteration —
    /// a lexically forward dependence.
    #[test]
    fn unrolled_fig9_exposes_lex_forward_dep() {
        let j = VarId(0);
        let i = VarId(1);
        let a = ArrayId(0);
        let s1 = Stmt::Assign(Assign {
            target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
            value: Expr::Access(ArrayAccess::new(
                a,
                vec![Subscript::var(j, -1), Subscript::var(i, -1)],
            )),
        });
        let s2 = Stmt::Assign(Assign {
            target: ArrayAccess::new(a, vec![Subscript::var(j, 1), Subscript::var(i, 0)]),
            value: Expr::Access(ArrayAccess::new(
                a,
                vec![Subscript::var(j, 0), Subscript::var(i, -1)],
            )),
        });
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![10, 4],
                base: 0,
            }],
            seq_var: j,
            seq_lo: 1,
            seq_hi: 9,
            private_vars: vec![i],
            body: vec![s1, s2],
            var_names: vec!["j".into(), "i".into()],
        };
        let info = analyze(&nest);
        let fwd: Vec<_> = info.lex_forward().collect();
        assert!(
            fwd.iter()
                .any(|d| d.from.stmt == 0 && d.to.stmt == 1 && d.cross_processor),
            "expected S1→S2 cross-processor lexically forward dep, got {:?}",
            info.deps
        );
    }

    #[test]
    fn constant_subscript_mismatch_is_independent() {
        let private = BTreeSet::new();
        let a = ArrayId(0);
        let w = ArrayAccess::new(a, vec![Subscript::constant(1)]);
        let r = ArrayAccess::new(a, vec![Subscript::constant(2)]);
        assert_eq!(relate(&w, &r, VarId(9), &private), Relation::Independent);
    }

    #[test]
    fn different_arrays_are_independent() {
        let info = {
            let j = VarId(0);
            let a = ArrayId(0);
            let b = ArrayId(1);
            let nest = LoopNest {
                arrays: vec![
                    ArrayDecl {
                        name: "a".into(),
                        dims: vec![8],
                        base: 0,
                    },
                    ArrayDecl {
                        name: "b".into(),
                        dims: vec![8],
                        base: 8,
                    },
                ],
                seq_var: j,
                seq_lo: 0,
                seq_hi: 7,
                private_vars: vec![],
                body: vec![Stmt::Assign(Assign {
                    target: ArrayAccess::new(a, vec![Subscript::var(j, 0)]),
                    value: Expr::Access(ArrayAccess::new(b, vec![Subscript::var(j, 0)])),
                })],
                var_names: vec!["j".into()],
            };
            analyze(&nest)
        };
        assert!(info.deps.is_empty(), "{:?}", info.deps);
    }
}
