//! Three-address intermediate code, in the style of the paper's Fig. 4.
//!
//! The paper's intermediate code fuses memory references into arithmetic
//! (`T11 = [T5] + [T10]`), which is what makes its marked-instruction
//! counts come out the way they do. [`Src::Mem`] reproduces that: a source
//! operand may be a memory reference through an address temp.

use crate::ast::VarId;
use std::fmt;

/// A compiler temporary (`T1`, `T2`, … in the paper's listings). Each temp
/// is assigned exactly once within a lowered body (SSA-style), which keeps
/// the dependence DAG simple and faithful to the paper's examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Temp(pub usize);

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (by a constant in practice).
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A temp.
    Temp(Temp),
    /// A constant.
    Const(i64),
    /// A scalar variable (loop variable or processor coordinate; read-only
    /// within a lowered body).
    Var(VarId),
    /// A memory reference `[t]` through address temp `t`.
    Mem(Temp),
}

impl Src {
    /// The temp this operand reads, if any (address temps count).
    #[must_use]
    pub fn read_temp(&self) -> Option<Temp> {
        match self {
            Src::Temp(t) | Src::Mem(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether this operand reads memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Src::Mem(_))
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Temp(t) => write!(f, "{t}"),
            Src::Const(c) => write!(f, "{c}"),
            Src::Var(v) => write!(f, "v{}", v.0),
            Src::Mem(t) => write!(f, "[{t}]"),
        }
    }
}

/// One three-address instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TacInstr {
    /// `dst ← value`
    Const {
        /// Destination temp.
        dst: Temp,
        /// The constant.
        value: i64,
    },
    /// `dst ← lhs op rhs`
    Bin {
        /// Destination temp.
        dst: Temp,
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Src,
        /// Right operand.
        rhs: Src,
    },
    /// `dst ← src`
    Copy {
        /// Destination temp.
        dst: Temp,
        /// Source operand.
        src: Src,
    },
    /// `[addr] ← src`
    Store {
        /// Address temp.
        addr: Temp,
        /// Stored operand.
        src: Src,
    },
}

impl TacInstr {
    /// The temp this instruction defines, if any.
    #[must_use]
    pub fn def(&self) -> Option<Temp> {
        match self {
            TacInstr::Const { dst, .. }
            | TacInstr::Bin { dst, .. }
            | TacInstr::Copy { dst, .. } => Some(*dst),
            TacInstr::Store { .. } => None,
        }
    }

    /// The temps this instruction reads (including address temps).
    #[must_use]
    pub fn uses(&self) -> Vec<Temp> {
        let mut out = Vec::new();
        match self {
            TacInstr::Const { .. } => {}
            TacInstr::Bin { lhs, rhs, .. } => {
                out.extend(lhs.read_temp());
                out.extend(rhs.read_temp());
            }
            TacInstr::Copy { src, .. } => out.extend(src.read_temp()),
            TacInstr::Store { addr, src } => {
                out.push(*addr);
                out.extend(src.read_temp());
            }
        }
        out
    }

    /// Whether the instruction reads memory.
    #[must_use]
    pub fn reads_mem(&self) -> bool {
        match self {
            TacInstr::Const { .. } => false,
            TacInstr::Bin { lhs, rhs, .. } => lhs.is_mem() || rhs.is_mem(),
            TacInstr::Copy { src, .. } => src.is_mem(),
            TacInstr::Store { src, .. } => src.is_mem(),
        }
    }

    /// Whether the instruction writes memory.
    #[must_use]
    pub fn writes_mem(&self) -> bool {
        matches!(self, TacInstr::Store { .. })
    }

    /// Whether the instruction touches memory at all.
    #[must_use]
    pub fn touches_mem(&self) -> bool {
        self.reads_mem() || self.writes_mem()
    }
}

impl fmt::Display for TacInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TacInstr::Const { dst, value } => write!(f, "{dst} = {value}"),
            TacInstr::Bin { dst, op, lhs, rhs } => write!(f, "{dst} = {lhs} {op} {rhs}"),
            TacInstr::Copy { dst, src } => write!(f, "{dst} = {src}"),
            TacInstr::Store { addr, src } => write!(f, "[{addr}] = {src}"),
        }
    }
}

/// An instruction plus its compiler annotations: the *marked* flag (the
/// instruction "either accesses a value computed by another processor or
/// computes a value that will be accessed by another processor", Sec. 4)
/// and an optional listing comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedInstr {
    /// The instruction.
    pub instr: TacInstr,
    /// Whether the instruction is marked (must stay in the non-barrier
    /// region).
    pub marked: bool,
    /// Listing comment (e.g. `T5 <- address of P[i][j+1]`).
    pub comment: Option<String>,
}

impl AnnotatedInstr {
    /// An unmarked instruction without comment.
    #[must_use]
    pub fn plain(instr: TacInstr) -> Self {
        AnnotatedInstr {
            instr,
            marked: false,
            comment: None,
        }
    }

    /// A marked instruction.
    #[must_use]
    pub fn marked(instr: TacInstr) -> Self {
        AnnotatedInstr {
            instr,
            marked: true,
            comment: None,
        }
    }

    /// Attaches a comment.
    #[must_use]
    pub fn with_comment(mut self, comment: impl Into<String>) -> Self {
        self.comment = Some(comment.into());
        self
    }
}

impl fmt::Display for AnnotatedInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.marked { "*" } else { " " };
        write!(f, "{mark} {}", self.instr)?;
        if let Some(c) = &self.comment {
            write!(f, "  /* {c} */")?;
        }
        Ok(())
    }
}

/// A straight-line lowered loop body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TacBody {
    /// The instructions, in program order.
    pub instrs: Vec<AnnotatedInstr>,
    /// Number of temps allocated (temp indices are `1..=next_temp-1`,
    /// matching the paper's 1-based `T1…`).
    pub next_temp: usize,
}

impl TacBody {
    /// Indices of the marked instructions.
    #[must_use]
    pub fn marked_indices(&self) -> Vec<usize> {
        self.instrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.marked.then_some(i))
            .collect()
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the body is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let t = |n| Temp(n);
        let i = TacInstr::Bin {
            dst: t(3),
            op: BinOp::Add,
            lhs: Src::Mem(t(1)),
            rhs: Src::Temp(t(2)),
        };
        assert_eq!(i.def(), Some(t(3)));
        assert_eq!(i.uses(), vec![t(1), t(2)]);
        assert!(i.reads_mem());
        assert!(!i.writes_mem());

        let s = TacInstr::Store {
            addr: t(4),
            src: Src::Const(0),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![t(4)]);
        assert!(s.writes_mem());
    }

    #[test]
    fn display_matches_paper_style() {
        let i = TacInstr::Bin {
            dst: Temp(11),
            op: BinOp::Add,
            lhs: Src::Mem(Temp(5)),
            rhs: Src::Mem(Temp(10)),
        };
        assert_eq!(i.to_string(), "T11 = [T5] + [T10]");
        let c = TacInstr::Const {
            dst: Temp(1),
            value: 7,
        };
        assert_eq!(c.to_string(), "T1 = 7");
    }

    #[test]
    fn annotated_display_shows_mark_and_comment() {
        let a = AnnotatedInstr::marked(TacInstr::Store {
            addr: Temp(28),
            src: Src::Temp(Temp(24)),
        })
        .with_comment("P[i][j] = T24");
        assert_eq!(a.to_string(), "* [T28] = T24  /* P[i][j] = T24 */");
    }

    #[test]
    fn marked_indices_filter() {
        let body = TacBody {
            instrs: vec![
                AnnotatedInstr::plain(TacInstr::Const {
                    dst: Temp(1),
                    value: 0,
                }),
                AnnotatedInstr::marked(TacInstr::Copy {
                    dst: Temp(2),
                    src: Src::Mem(Temp(1)),
                }),
            ],
            next_temp: 3,
        };
        assert_eq!(body.marked_indices(), vec![1]);
    }
}
