//! The data-dependence DAG over a straight-line TAC body (Sec. 4: "a
//! directed acyclic graph (DAG) representing the data dependences for the
//! code in the non-barrier region is built").

use crate::tac::{AnnotatedInstr, Temp};
use std::collections::HashMap;

/// Dependence DAG: node *i* is instruction *i* of the body; an edge
/// `a → b` means *a* must execute before *b*.
///
/// Edges come from temp def→use chains (each temp is defined once) and
/// from conservative memory ordering: a store is ordered after every
/// earlier memory-touching instruction and before every later one; loads
/// commute with loads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepDag {
    /// `succs[i]`: instructions that must come after `i`.
    pub succs: Vec<Vec<usize>>,
    /// `preds[i]`: instructions that must come before `i`.
    pub preds: Vec<Vec<usize>>,
}

impl DepDag {
    /// Builds the DAG for `instrs`.
    #[must_use]
    pub fn build(instrs: &[AnnotatedInstr]) -> Self {
        let n = instrs.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let add_edge =
            |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, preds: &mut Vec<Vec<usize>>| {
                if !succs[from].contains(&to) {
                    succs[from].push(to);
                    preds[to].push(from);
                }
            };

        // Temp def sites.
        let mut def_site: HashMap<Temp, usize> = HashMap::new();
        for (i, a) in instrs.iter().enumerate() {
            for u in a.instr.uses() {
                if let Some(&d) = def_site.get(&u) {
                    add_edge(d, i, &mut succs, &mut preds);
                }
            }
            if let Some(d) = a.instr.def() {
                def_site.insert(d, i);
            }
        }

        // Conservative memory ordering.
        let mut last_store: Option<usize> = None;
        let mut mem_ops_since_store: Vec<usize> = Vec::new();
        for (i, a) in instrs.iter().enumerate() {
            if a.instr.writes_mem() {
                if let Some(s) = last_store {
                    add_edge(s, i, &mut succs, &mut preds);
                }
                for &m in &mem_ops_since_store {
                    add_edge(m, i, &mut succs, &mut preds);
                }
                last_store = Some(i);
                mem_ops_since_store.clear();
            } else if a.instr.reads_mem() {
                if let Some(s) = last_store {
                    add_edge(s, i, &mut succs, &mut preds);
                }
                mem_ops_since_store.push(i);
            }
        }

        DepDag { succs, preds }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the DAG has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The set of nodes reachable from `roots` along successor edges
    /// (including the roots themselves).
    #[must_use]
    pub fn descendants_of(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(self.succs[n].iter().copied());
        }
        seen
    }

    /// The set of nodes from which some node in `targets` is reachable
    /// (including the targets themselves).
    #[must_use]
    pub fn ancestors_of(&self, targets: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = targets.to_vec();
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(self.preds[n].iter().copied());
        }
        seen
    }

    /// Checks that `order` (a permutation of node indices) respects every
    /// edge. Used by tests and by the reorder pass's self-check.
    #[must_use]
    pub fn respects(&self, order: &[usize]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (pos, &n) in order.iter().enumerate() {
            if n >= self.len() || position[n] != usize::MAX {
                return false;
            }
            position[n] = pos;
        }
        for (from, succs) in self.succs.iter().enumerate() {
            for &to in succs {
                if position[from] >= position[to] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tac::{BinOp, Src, TacInstr};

    fn instr(i: TacInstr) -> AnnotatedInstr {
        AnnotatedInstr::plain(i)
    }

    fn t(n: usize) -> Temp {
        Temp(n)
    }

    /// T1 = 1; T2 = T1 + 1; store [T2] = T1; T3 = [T2]
    fn sample() -> Vec<AnnotatedInstr> {
        vec![
            instr(TacInstr::Const {
                dst: t(1),
                value: 1,
            }),
            instr(TacInstr::Bin {
                dst: t(2),
                op: BinOp::Add,
                lhs: Src::Temp(t(1)),
                rhs: Src::Const(1),
            }),
            instr(TacInstr::Store {
                addr: t(2),
                src: Src::Temp(t(1)),
            }),
            instr(TacInstr::Copy {
                dst: t(3),
                src: Src::Mem(t(2)),
            }),
        ]
    }

    #[test]
    fn raw_edges_follow_defs() {
        let dag = DepDag::build(&sample());
        assert!(dag.succs[0].contains(&1)); // T1 → T2 computation
        assert!(dag.succs[0].contains(&2)); // T1 → store
        assert!(dag.succs[1].contains(&2)); // T2 → store (address)
        assert!(dag.succs[1].contains(&3)); // T2 → load (address)
    }

    #[test]
    fn store_orders_with_later_load() {
        let dag = DepDag::build(&sample());
        assert!(
            dag.succs[2].contains(&3),
            "load after store must be ordered"
        );
    }

    #[test]
    fn loads_commute() {
        let body = vec![
            instr(TacInstr::Const {
                dst: t(1),
                value: 0,
            }),
            instr(TacInstr::Copy {
                dst: t(2),
                src: Src::Mem(t(1)),
            }),
            instr(TacInstr::Copy {
                dst: t(3),
                src: Src::Mem(t(1)),
            }),
        ];
        let dag = DepDag::build(&body);
        assert!(!dag.succs[1].contains(&2));
        assert!(!dag.succs[2].contains(&1));
    }

    #[test]
    fn descendants_and_ancestors() {
        let dag = DepDag::build(&sample());
        let desc = dag.descendants_of(&[1]);
        assert_eq!(desc, vec![false, true, true, true]);
        let anc = dag.ancestors_of(&[2]);
        assert_eq!(anc, vec![true, true, true, false]);
    }

    #[test]
    fn respects_detects_violations() {
        let dag = DepDag::build(&sample());
        assert!(dag.respects(&[0, 1, 2, 3]));
        assert!(!dag.respects(&[1, 0, 2, 3]), "T2 before its def");
        assert!(!dag.respects(&[0, 1, 3, 2]), "load before store");
        assert!(!dag.respects(&[0, 1, 2]), "wrong length");
        assert!(!dag.respects(&[0, 1, 2, 2]), "not a permutation");
    }
}
