//! `fcc` — the fuzzy-barrier compiler driver.
//!
//! ```text
//! fcc SOURCE.fc [options]
//!
//!   --no-reorder     skip the three-phase reordering (Fig. 4(a) regions)
//!   --listing        print the intermediate-code listing with regions
//!   --asm            print the generated machine streams
//!   --run            execute on the simulated multiprocessor
//!   --cycles N       cycle budget for --run (default 10_000_000)
//!   --miss-rate X    drift injection for --run
//!   --dump A B       with --run, print memory words A..B afterwards
//! ```
//!
//! `SOURCE.fc` uses the paper's Fig. 3(a) syntax:
//!
//! ```text
//! int P[4][4];
//! for (k=1; k<=20; k++) do seq
//!   for (i=1; i<=2; i++) do par
//!     for (j=1; j<=2; j++) do par
//!       P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
//! ```

use fuzzy_compiler::driver::{compile_nest, CompileOptions};
use fuzzy_compiler::parse::parse_program;
use fuzzy_compiler::pretty::{render_split, summarize_split};
use fuzzy_sim::builder::MachineBuilder;
use std::process::ExitCode;

struct Options {
    path: String,
    reorder: bool,
    listing: bool,
    asm: bool,
    run: bool,
    cycles: u64,
    miss_rate: Option<f64>,
    dump: Option<(usize, usize)>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        reorder: true,
        listing: false,
        asm: false,
        run: false,
        cycles: 10_000_000,
        miss_rate: None,
        dump: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-reorder" => opts.reorder = false,
            "--listing" => opts.listing = true,
            "--asm" => opts.asm = true,
            "--run" => opts.run = true,
            "--cycles" => {
                opts.cycles = args
                    .next()
                    .ok_or("--cycles needs a value")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?;
            }
            "--miss-rate" => {
                opts.miss_rate = Some(
                    args.next()
                        .ok_or("--miss-rate needs a value")?
                        .parse()
                        .map_err(|e| format!("--miss-rate: {e}"))?,
                );
            }
            "--dump" => {
                let a = args
                    .next()
                    .ok_or("--dump needs two values")?
                    .parse()
                    .map_err(|e| format!("--dump: {e}"))?;
                let b = args
                    .next()
                    .ok_or("--dump needs two values")?
                    .parse()
                    .map_err(|e| format!("--dump: {e}"))?;
                opts.dump = Some((a, b));
            }
            "--help" | "-h" => return Err("usage".into()),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("no source file given".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("fcc: {msg}");
            eprintln!(
                "usage: fcc SOURCE.fc [--no-reorder] [--listing] [--asm] [--run] \
                 [--cycles N] [--miss-rate X] [--dump A B]"
            );
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fcc: cannot read `{}`: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let parsed = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fcc: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: seq `{}` over {}..={}, {} processors",
        opts.path,
        parsed.nest.var_name(parsed.nest.seq_var),
        parsed.nest.seq_lo,
        parsed.nest.seq_hi,
        parsed.proc_inits.len()
    );

    let compiled = match compile_nest(
        &parsed.nest,
        &parsed.proc_inits,
        &CompileOptions {
            reorder: opts.reorder,
            ..CompileOptions::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fcc: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "regions before reordering: {}",
        summarize_split(&compiled.before)
    );
    println!(
        "regions after  reordering: {}",
        summarize_split(&compiled.after)
    );

    if opts.listing {
        println!();
        println!("{}", render_split("compiled regions", &compiled.after));
    }
    if opts.asm {
        for (p, stream) in compiled.program.streams().iter().enumerate() {
            println!("\n; processor {p} ({} instructions)", stream.len());
            for (i, op) in stream.ops().iter().enumerate() {
                println!("{i:>4}: {op}");
            }
        }
    }
    if opts.run {
        let mut builder = MachineBuilder::new(compiled.program).preload(parsed.data.clone());
        if let Some(r) = opts.miss_rate {
            builder = builder.miss_rate(r);
        }
        let mut machine = match builder.build() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("fcc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match machine.run(opts.cycles) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("fcc: runtime fault: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stats = machine.stats();
        println!(
            "\nrun: {outcome:?} — {} cycles, {} syncs, {} stall cycles",
            stats.cycles,
            stats.sync_events,
            stats.total_stall_cycles()
        );
        if let Some((a, b)) = opts.dump {
            println!("memory[{a}..{b}]:");
            for w in a..b {
                println!("  [{w:>6}] = {}", machine.memory().peek(w));
            }
        }
        if !outcome.is_halted() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
