//! A parser for the paper's source syntax (Fig. 3(a)).
//!
//! Accepts programs in the style the paper writes them:
//!
//! ```text
//! /* Boundary conditions are held in rows/columns 0 and M+1 */
//! int P[4][4];
//!
//! for (k=1; k<=20; k++) do seq
//!   for (i=1; i<=2; i++) do par
//!     for (j=1; j<=2; j++) do par
//!       P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
//! ```
//!
//! and produces a [`LoopNest`] plus the per-processor private-variable
//! initializations (the cartesian product of the `par` loop ranges — the
//! paper's "M² processors", Fig. 3(b)).
//!
//! Restrictions (by design, matching what the analyses support): exactly
//! one outermost `seq` loop; `par` loops directly nested inside it; loop
//! bounds are integer literals; subscripts are affine (`var ± const`);
//! division only by constants; `if` conditions are `var == const`.

use crate::ast::{ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Result of parsing: the nest plus the processor grid implied by the
/// `par` loops.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedProgram {
    /// The loop nest (sequential loop + body statements, `par` variables
    /// private).
    pub nest: LoopNest,
    /// One entry per processor: initial values of the private variables,
    /// enumerating the cartesian product of the `par` ranges.
    pub proc_inits: Vec<Vec<(VarId, i64)>>,
    /// Initial memory image from top-level constant assignments such as
    /// `P[0][1] = 100;` (the paper's "boundary conditions are held in
    /// rows/columns 0 and M+1"): `(word address, value)` pairs.
    pub data: Vec<(usize, i64)>,
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(char),
    /// `++`
    Incr,
    /// `<=`
    Le,
    /// `==`
    EqEq,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        loop {
                            match chars.next() {
                                Some('\n') => {
                                    line += 1;
                                    prev = '\n';
                                }
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                                None => {
                                    return Err(ParseError {
                                        line,
                                        message: "unterminated comment".into(),
                                    })
                                }
                            }
                        }
                    }
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    _ => out.push(Token {
                        tok: Tok::Punct('/'),
                        line,
                    }),
                }
            }
            c if c.is_ascii_digit() => {
                let mut n = 0i64;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + i64::from(v);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Num(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            '+' => {
                chars.next();
                if chars.peek() == Some(&'+') {
                    chars.next();
                    out.push(Token {
                        tok: Tok::Incr,
                        line,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Punct('+'),
                        line,
                    });
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token { tok: Tok::Le, line });
                } else {
                    return Err(ParseError {
                        line,
                        message: "only `<=` comparisons are supported".into(),
                    });
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token {
                        tok: Tok::EqEq,
                        line,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Punct('='),
                        line,
                    });
                }
            }
            c if "()[]{};,*-".contains(c) => {
                chars.next();
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    arrays: Vec<ArrayDecl>,
    array_ids: HashMap<String, ArrayId>,
    vars: Vec<String>,
    var_ids: HashMap<String, VarId>,
    /// (var, lo, hi) of each `par` loop, in nesting order.
    par_ranges: Vec<(VarId, i64, i64)>,
    seq: Option<(VarId, i64, i64)>,
    /// Next array base address (arrays are laid out contiguously).
    next_base: i64,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?
            .tok
            .clone();
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let s = self.expect_ident()?;
        if s == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{s}`")))
        }
    }

    fn expect_num(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Num(n) => Ok(n),
            Tok::Punct('-') => Ok(-self.expect_num()?),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = VarId(self.vars.len());
        self.vars.push(name.to_string());
        self.var_ids.insert(name.to_string(), v);
        v
    }

    // int NAME [n][m]... ;
    fn parse_decl(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("int")?;
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.peek() == Some(&Tok::Punct('[')) {
            self.expect_punct('[')?;
            let n = self.expect_num()?;
            if n <= 0 {
                return Err(self.err("array dimensions must be positive literals"));
            }
            dims.push(n as usize);
            self.expect_punct(']')?;
        }
        if dims.is_empty() {
            return Err(self.err("scalar declarations are not supported"));
        }
        self.expect_punct(';')?;
        let id = ArrayId(self.arrays.len());
        let decl = ArrayDecl {
            name: name.clone(),
            dims,
            base: self.next_base,
        };
        self.next_base += decl.len() as i64;
        if self.array_ids.insert(name.clone(), id).is_some() {
            return Err(self.err(format!("array `{name}` declared twice")));
        }
        self.arrays.push(decl);
        Ok(())
    }

    // for (v=lo; v<=hi; v++) do seq|par  <item>
    fn parse_loop(&mut self, depth: usize) -> Result<Vec<Stmt>, ParseError> {
        self.expect_keyword("for")?;
        self.expect_punct('(')?;
        let name = self.expect_ident()?;
        let v = self.var(&name);
        self.expect_punct('=')?;
        let lo = self.expect_num()?;
        self.expect_punct(';')?;
        let name2 = self.expect_ident()?;
        if name2 != name {
            return Err(self.err("loop condition must test the loop variable"));
        }
        match self.next()? {
            Tok::Le => {}
            other => return Err(self.err(format!("expected `<=`, found {other:?}"))),
        }
        let hi = self.expect_num()?;
        self.expect_punct(';')?;
        let name3 = self.expect_ident()?;
        if name3 != name {
            return Err(self.err("loop increment must update the loop variable"));
        }
        match self.next()? {
            Tok::Incr => {}
            other => return Err(self.err(format!("expected `++`, found {other:?}"))),
        }
        self.expect_punct(')')?;
        self.expect_keyword("do")?;
        let kind = self.expect_ident()?;
        match kind.as_str() {
            "seq" => {
                if depth != 0 || self.seq.is_some() {
                    return Err(self.err("exactly one outermost `seq` loop is supported"));
                }
                self.seq = Some((v, lo, hi));
            }
            "par" => {
                if self.seq.is_none() {
                    return Err(self.err("`par` loops must be inside the `seq` loop"));
                }
                self.par_ranges.push((v, lo, hi));
            }
            other => return Err(self.err(format!("expected `seq` or `par`, found `{other}`"))),
        }
        self.parse_item(depth + 1)
    }

    /// A loop body item: `{ items }`, a nested loop, or a statement.
    fn parse_item(&mut self, depth: usize) -> Result<Vec<Stmt>, ParseError> {
        match self.peek() {
            Some(Tok::Punct('{')) => {
                self.expect_punct('{')?;
                let mut stmts = Vec::new();
                while self.peek() != Some(&Tok::Punct('}')) {
                    stmts.extend(self.parse_item(depth)?);
                }
                self.expect_punct('}')?;
                Ok(stmts)
            }
            Some(Tok::Ident(s)) if s == "for" => self.parse_loop(depth),
            Some(Tok::Ident(s)) if s == "if" => {
                let stmt = self.parse_if(depth)?;
                Ok(vec![stmt])
            }
            _ => Ok(vec![self.parse_assign()?]),
        }
    }

    // if (v == n) item [else item]
    fn parse_if(&mut self, depth: usize) -> Result<Stmt, ParseError> {
        self.expect_keyword("if")?;
        self.expect_punct('(')?;
        let name = self.expect_ident()?;
        let v = self.var(&name);
        match self.next()? {
            Tok::EqEq => {}
            other => return Err(self.err(format!("expected `==`, found {other:?}"))),
        }
        let n = self.expect_num()?;
        self.expect_punct(')')?;
        let then_branch = self.parse_item(depth)?;
        let else_branch = if matches!(self.peek(), Some(Tok::Ident(s)) if s == "else") {
            self.expect_keyword("else")?;
            self.parse_item(depth)?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            var: v,
            equals: n,
            then_branch,
            else_branch,
        })
    }

    // access = expr ;
    fn parse_assign(&mut self) -> Result<Stmt, ParseError> {
        let target = self.parse_access()?;
        self.expect_punct('=')?;
        let value = self.parse_expr()?;
        self.expect_punct(';')?;
        Ok(Stmt::Assign(Assign { target, value }))
    }

    fn parse_access(&mut self) -> Result<ArrayAccess, ParseError> {
        let name = self.expect_ident()?;
        let &id = self
            .array_ids
            .get(&name)
            .ok_or_else(|| self.err(format!("undeclared array `{name}`")))?;
        let dims = self.arrays[id.0].dims.len();
        let mut subs = Vec::new();
        while self.peek() == Some(&Tok::Punct('[')) {
            self.expect_punct('[')?;
            subs.push(self.parse_subscript()?);
            self.expect_punct(']')?;
        }
        if subs.len() != dims {
            return Err(self.err(format!(
                "array `{name}` has {dims} dimensions but {} subscripts given",
                subs.len()
            )));
        }
        Ok(ArrayAccess::new(id, subs))
    }

    // var | var+c | var-c | c
    fn parse_subscript(&mut self) -> Result<Subscript, ParseError> {
        match self.next()? {
            Tok::Num(c) => Ok(Subscript::constant(c)),
            Tok::Ident(name) => {
                let v = self.var(&name);
                match self.peek() {
                    Some(Tok::Punct('+')) => {
                        self.next()?;
                        let c = self.expect_num()?;
                        Ok(Subscript::var(v, c))
                    }
                    Some(Tok::Punct('-')) => {
                        self.next()?;
                        let c = self.expect_num()?;
                        Ok(Subscript::var(v, -c))
                    }
                    _ => Ok(Subscript::var(v, 0)),
                }
            }
            other => Err(self.err(format!("expected subscript, found {other:?}"))),
        }
    }

    // expr := term (("+"|"-") term)*
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Tok::Punct('+')) => {
                    self.next()?;
                    lhs = Expr::add(lhs, self.parse_term()?);
                }
                Some(Tok::Punct('-')) => {
                    self.next()?;
                    lhs = Expr::sub(lhs, self.parse_term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    // term := factor (("*"|"/") factor)*   — "/" requires a constant rhs
    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor()?;
        loop {
            match self.peek() {
                Some(Tok::Punct('*')) => {
                    self.next()?;
                    lhs = Expr::mul(lhs, self.parse_factor()?);
                }
                Some(Tok::Punct('/')) => {
                    self.next()?;
                    match self.parse_factor()? {
                        Expr::Const(c) if c != 0 => lhs = Expr::div_const(lhs, c),
                        Expr::Const(_) => return Err(self.err("division by zero")),
                        _ => return Err(self.err("division is only supported by constants")),
                    }
                }
                _ => return Ok(lhs),
            }
        }
    }

    // factor := num | "(" expr ")" | array-access | var
    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Num(_)) => Ok(Expr::Const(self.expect_num()?)),
            Some(Tok::Punct('-')) => {
                self.next()?;
                Ok(Expr::sub(Expr::Const(0), self.parse_factor()?))
            }
            Some(Tok::Punct('(')) => {
                self.expect_punct('(')?;
                let e = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.array_ids.contains_key(name) {
                    Ok(Expr::Access(self.parse_access()?))
                } else {
                    let name = self.expect_ident()?;
                    let v = self.var(&name);
                    Ok(Expr::Var(v))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a program in the paper's source syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] with line information on any syntax or
/// structure violation (see the module docs for the accepted subset).
///
/// # Examples
///
/// ```
/// use fuzzy_compiler::parse::parse_program;
///
/// let parsed = parse_program(
///     "int A[8];\n\
///      for (k=1; k<=4; k++) do seq\n\
///        for (i=1; i<=3; i++) do par\n\
///          A[i] = A[i] + k;\n",
/// )?;
/// assert_eq!(parsed.proc_inits.len(), 3);
/// # Ok::<(), fuzzy_compiler::parse::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<ParsedProgram, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        arrays: Vec::new(),
        array_ids: HashMap::new(),
        vars: Vec::new(),
        var_ids: HashMap::new(),
        par_ranges: Vec::new(),
        seq: None,
        next_base: 0,
    };
    // Declarations.
    while matches!(p.peek(), Some(Tok::Ident(s)) if s == "int") {
        p.parse_decl()?;
    }
    // Top-level constant initializers (boundary conditions).
    let mut data: Vec<(usize, i64)> = Vec::new();
    while let Some(Tok::Ident(name)) = p.peek() {
        if !p.array_ids.contains_key(name) {
            break;
        }
        let access = p.parse_access()?;
        p.expect_punct('=')?;
        let value = p.expect_num()?;
        p.expect_punct(';')?;
        let decl = &p.arrays[access.array.0];
        let mut addr = decl.base;
        for (d, sub) in access.subs.iter().enumerate() {
            if sub.var.is_some() {
                return Err(p.err("initializer subscripts must be constants"));
            }
            if sub.offset < 0 || sub.offset as usize >= decl.dims[d] {
                return Err(p.err(format!(
                    "initializer subscript {} out of bounds for `{}`",
                    sub.offset, decl.name
                )));
            }
            addr += decl.stride(d) * sub.offset;
        }
        data.push((addr as usize, value));
    }
    // The loop nest.
    if !matches!(p.peek(), Some(Tok::Ident(s)) if s == "for") {
        return Err(p.err("expected the outer `for … do seq` loop"));
    }
    let body = p.parse_loop(0)?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after the loop nest"));
    }
    let (seq_var, seq_lo, seq_hi) = p.seq.ok_or_else(|| p.err("missing `seq` loop"))?;

    // Enumerate the processor grid: cartesian product of par ranges.
    let mut proc_inits: Vec<Vec<(VarId, i64)>> = vec![Vec::new()];
    for &(v, lo, hi) in &p.par_ranges {
        let mut next = Vec::new();
        for base in &proc_inits {
            for value in lo..=hi {
                let mut entry = base.clone();
                entry.push((v, value));
                next.push(entry);
            }
        }
        proc_inits = next;
    }
    if p.par_ranges.is_empty() {
        // A single processor with no private coordinates.
        proc_inits = vec![Vec::new()];
    }

    let nest = LoopNest {
        arrays: p.arrays,
        seq_var,
        seq_lo,
        seq_hi,
        private_vars: p.par_ranges.iter().map(|&(v, _, _)| v).collect(),
        body,
        var_names: p.vars,
    };
    Ok(ParsedProgram {
        nest,
        proc_inits,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_nest, CompileOptions};
    use fuzzy_sim::builder::MachineBuilder;

    const POISSON: &str = "\
/* Boundary conditions are held in rows/columns 0 and M+1 */
int P[4][4];

for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
";

    #[test]
    fn parses_the_papers_poisson_solver() {
        let parsed = parse_program(POISSON).unwrap();
        assert_eq!(parsed.nest.arrays.len(), 1);
        assert_eq!(parsed.nest.arrays[0].dims, vec![4, 4]);
        assert_eq!(parsed.nest.seq_lo, 1);
        assert_eq!(parsed.nest.seq_hi, 20);
        assert_eq!(parsed.nest.private_vars.len(), 2);
        assert_eq!(parsed.proc_inits.len(), 4, "M^2 = 4 processors");
        assert_eq!(parsed.nest.body.len(), 1);
        // Variable names survive for listings.
        assert_eq!(parsed.nest.var_name(parsed.nest.seq_var), "k");
    }

    #[test]
    fn parsed_poisson_compiles_and_runs() {
        let parsed = parse_program(POISSON).unwrap();
        let compiled =
            compile_nest(&parsed.nest, &parsed.proc_inits, &CompileOptions::default()).unwrap();
        let mut m = MachineBuilder::new(compiled.program).build().unwrap();
        for col in 0..4 {
            m.memory_mut().poke(col, 80);
        }
        assert!(m.run(10_000_000).unwrap().is_halted());
        // Host reference.
        let mut g = vec![0i64; 16];
        for cell in g.iter_mut().take(4) {
            *cell = 80;
        }
        for _ in 0..20 {
            let prev = g.clone();
            for i in 1..=2usize {
                for j in 1..=2usize {
                    g[i * 4 + j] = (prev[i * 4 + j + 1]
                        + prev[i * 4 + j - 1]
                        + prev[(i + 1) * 4 + j]
                        + prev[(i - 1) * 4 + j])
                        / 4;
                }
            }
        }
        let sim: Vec<i64> = (0..16).map(|w| m.memory().peek(w)).collect();
        assert_eq!(sim, g);
    }

    #[test]
    fn boundary_initializers_become_data() {
        let src = "\
int P[4][4];
P[0][1] = 100;
P[0][2] = 100;
for (k=1; k<=2; k++) do seq
  for (i=1; i<=2; i++) do par
    P[i][i] = P[i-1][i] / 2;
";
        let parsed = parse_program(src).unwrap();
        assert_eq!(parsed.data, vec![(1, 100), (2, 100)]);
    }

    #[test]
    fn initializer_bounds_are_checked() {
        let src = "int P[2][2];\nP[0][5] = 1;\nfor (k=1; k<=2; k++) do seq P[1][1] = 0;\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");
    }

    #[test]
    fn initializer_with_variable_subscript_rejected() {
        let src = "int P[4];\nP[i] = 1;\nfor (k=1; k<=2; k++) do seq P[1] = 0;\n";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn parses_if_statements() {
        let src = "\
int A[8];
int B[8];
for (k=1; k<=3; k++) do seq
  for (i=1; i<=2; i++) do par {
    A[i] = A[i] + 1;
    if (i == 1) { B[i] = k; } else { B[i] = 0 - k; }
  }
";
        let parsed = parse_program(src).unwrap();
        assert_eq!(parsed.nest.body.len(), 2);
        assert!(matches!(parsed.nest.body[1], Stmt::If { equals: 1, .. }));
        assert_eq!(
            parsed.nest.arrays[1].base, 8,
            "arrays laid out contiguously"
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line comment\nint A[4];\n/* block\n comment */\nfor (k=0; k<=1; k++) do seq A[k] = 1;\n";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn rejects_two_seq_loops() {
        let src = "int A[4];\nfor (k=0; k<=1; k++) do seq for (m=0; m<=1; m++) do seq A[k] = 1;\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("seq"), "{e}");
    }

    #[test]
    fn rejects_par_outside_seq() {
        let src = "int A[4];\nfor (k=0; k<=1; k++) do par A[k] = 1;\n";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn rejects_undeclared_array() {
        let src = "for (k=0; k<=1; k++) do seq Q[k] = 1;\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("expected the outer") || e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_division_by_variable() {
        let src = "int A[4];\nfor (k=1; k<=2; k++) do seq A[k] = A[k] / k;\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("division"), "{e}");
    }

    #[test]
    fn rejects_wrong_dimensionality() {
        let src = "int A[4][4];\nfor (k=1; k<=2; k++) do seq A[k] = 1;\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("dimensions"), "{e}");
    }

    #[test]
    fn error_carries_line_numbers() {
        let src = "int A[4];\n\nfor (k=1; k<=2; k++) do zigzag A[k] = 1;\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn negative_constants_and_precedence() -> Result<(), ParseError> {
        let src = "int A[16];\nfor (k=2; k<=9; k++) do seq A[k] = A[k-2] * 2 + 3 - 1;\n";
        let parsed = parse_program(src)?;
        let Stmt::Assign(a) = &parsed.nest.body[0] else {
            // The assignment sits on line 2 of `src`.
            return Err(ParseError {
                line: 2,
                message: format!(
                    "expected the loop body to parse as an assignment, got {:?}",
                    parsed.nest.body[0]
                ),
            });
        };
        // ((A[k-2] * 2) + 3) - 1
        assert!(matches!(a.value, Expr::Sub(_, _)));
        Ok(())
    }
}
