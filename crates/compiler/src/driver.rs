//! The compile driver: loop nest → simulator program.
//!
//! Reproduces the paper's per-processor task layout (Fig. 3(b)/Fig. 4):
//! each processor gets its own stream with private loop variables, the
//! sequential loop's body split into barrier / non-barrier regions, and the
//! loop-control instructions (`k = k + 1; if k ≤ hi goto L1`) inside the
//! barrier region so that the region "extends across consecutive
//! iterations" (Sec. 3).

use crate::ast::{LoopNest, Stmt, VarId};
use crate::codegen::{emit_regions, CodegenError, VarMap};
use crate::deps::{self, AccessRef};
use crate::lower::{lower_assign_at, lower_body};
use crate::region::RegionSplit;
use crate::reorder::reorder;
use fuzzy_sim::isa::{Cond, Instr, Reg};
use fuzzy_sim::program::{BuildError, Program, StreamBuilder};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Register assigned to the sequential loop variable.
pub const SEQ_REG: Reg = 1;
/// First register assigned to private variables.
pub const PRIVATE_REG_BASE: Reg = 2;
/// Scratch register used by conditional statements.
pub const COND_REG: Reg = 6;
/// Register holding the sequential loop bound.
pub const BOUND_REG: Reg = 7;
/// Maximum private variables the driver supports.
pub const MAX_PRIVATE_VARS: usize = (COND_REG - PRIVATE_REG_BASE) as usize;

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Apply the three-phase reordering (Sec. 4). When off, regions are
    /// built purely from marked-instruction positions (Fig. 4(a)).
    pub reorder: bool,
    /// Step of the sequential loop variable per iteration (default 1;
    /// unrolled and cycle-shrunk loops step by their factor).
    pub seq_step: i64,
    /// Base address of the spill area; processor `p` spills at
    /// `spill_base + p * spill_stride`.
    pub spill_base: i64,
    /// Stride between per-processor spill areas.
    pub spill_stride: i64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            reorder: true,
            seq_step: 1,
            spill_base: 1 << 14,
            spill_stride: 64,
        }
    }
}

/// Compilation errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// More private variables than the driver's register convention holds.
    TooManyPrivateVars {
        /// How many the nest declared.
        got: usize,
    },
    /// A conditional statement appeared before the last assignment; the
    /// driver only supports trailing conditionals (they are emitted into
    /// the barrier region, Fig. 7).
    MisplacedConditional,
    /// A conditional's branches contained marked accesses, which would
    /// belong in the non-barrier region.
    MarkedConditional,
    /// Code generation failed.
    Codegen(CodegenError),
    /// Label resolution failed (internal).
    Build(BuildError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyPrivateVars { got } => write!(
                f,
                "{got} private variables exceed the supported {MAX_PRIVATE_VARS}"
            ),
            CompileError::MisplacedConditional => {
                write!(f, "conditional statements must follow all assignments")
            }
            CompileError::MarkedConditional => {
                write!(f, "conditional branches contain cross-processor accesses")
            }
            CompileError::Codegen(e) => write!(f, "codegen: {e}"),
            CompileError::Build(e) => write!(f, "label resolution: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Codegen(e) => Some(e),
            CompileError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

impl From<BuildError> for CompileError {
    fn from(e: BuildError) -> Self {
        CompileError::Build(e)
    }
}

/// The result of compiling a loop nest.
#[derive(Debug)]
pub struct CompiledLoop {
    /// One stream per processor.
    pub program: Program,
    /// The region split before reordering (Fig. 4(a)) — for reporting.
    pub before: RegionSplit,
    /// The split actually compiled (equal to `before` when reordering is
    /// off).
    pub after: RegionSplit,
}

/// Builds the driver's register map for a nest.
///
/// # Errors
///
/// Returns [`CompileError::TooManyPrivateVars`] if the convention cannot
/// hold all private variables.
pub fn var_map(nest: &LoopNest) -> Result<VarMap, CompileError> {
    if nest.private_vars.len() > MAX_PRIVATE_VARS {
        return Err(CompileError::TooManyPrivateVars {
            got: nest.private_vars.len(),
        });
    }
    let mut vars = VarMap::new();
    vars.assign(nest.seq_var, SEQ_REG);
    for (idx, &v) in nest.private_vars.iter().enumerate() {
        if v != nest.seq_var {
            vars.assign(v, PRIVATE_REG_BASE + idx as Reg);
        }
    }
    Ok(vars)
}

/// Compiles `nest` for the processors described by `per_proc_inits`
/// (each entry: the initial values of the private variables for that
/// processor, e.g. the paper's `i = l; j = m`).
///
/// The barrier enforces the nest's **loop-carried** dependences, exactly
/// as in Sec. 4: marked instructions are those involved in cross-processor
/// carried dependences.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_nest(
    nest: &LoopNest,
    per_proc_inits: &[Vec<(VarId, i64)>],
    opts: &CompileOptions,
) -> Result<CompiledLoop, CompileError> {
    let info = deps::analyze(nest);
    compile_nest_with_marks(nest, per_proc_inits, &info.marked_for_carried(), opts)
}

/// Like [`compile_nest`] but with an explicit marked-access set (used when
/// the barrier enforces a different dependence class, e.g. lexically
/// forward dependences).
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_nest_with_marks(
    nest: &LoopNest,
    per_proc_inits: &[Vec<(VarId, i64)>],
    marked: &BTreeSet<AccessRef>,
    opts: &CompileOptions,
) -> Result<CompiledLoop, CompileError> {
    // Split trailing conditionals from the assignment core.
    let first_if = nest
        .body
        .iter()
        .position(|s| matches!(s, Stmt::If { .. }))
        .unwrap_or(nest.body.len());
    if nest.body[first_if..]
        .iter()
        .any(|s| matches!(s, Stmt::Assign(_)))
    {
        return Err(CompileError::MisplacedConditional);
    }
    let core_nest = LoopNest {
        body: nest.body[..first_if].to_vec(),
        ..nest.clone()
    };
    let tail_ifs = &nest.body[first_if..];

    let body = lower_body(&core_nest, marked);
    let before = RegionSplit::by_marks(&body);
    let after = if opts.reorder {
        reorder(&body)
    } else {
        before.clone()
    };

    let vars = var_map(nest)?;
    let mut streams = Vec::with_capacity(per_proc_inits.len());
    for (p, inits) in per_proc_inits.iter().enumerate() {
        let spill = opts.spill_base + p as i64 * opts.spill_stride;
        let mut b = StreamBuilder::new();
        // Initialization, inside the (leading) barrier region per
        // Fig. 4(a)'s "Barrier: i=1; j=m; k=1".
        b.fuzzy(Instr::Li {
            rd: SEQ_REG,
            imm: nest.seq_lo,
        });
        b.fuzzy(Instr::Li {
            rd: BOUND_REG,
            imm: nest.seq_hi,
        });
        for &(v, value) in inits {
            let rd = vars.reg(v).ok_or(CodegenError::UnmappedVar { var: v })?;
            b.fuzzy(Instr::Li { rd, imm: value });
        }
        b.label("L1");
        emit_regions(
            &mut b,
            &[
                (&after.prefix, true),
                (&after.non_barrier, false),
                (&after.suffix, true),
            ],
            &vars,
            spill,
        )?;
        emit_tail_ifs(&mut b, &core_nest, tail_ifs, &vars, marked, spill, p)?;
        // Loop control in the barrier region (Fig. 4: "Barrier: k = k+1;
        // if k <= 10M go to L1").
        b.fuzzy(Instr::Addi {
            rd: SEQ_REG,
            rs: SEQ_REG,
            imm: opts.seq_step,
        });
        b.fuzzy_branch(Cond::Le, SEQ_REG, BOUND_REG, "L1");
        b.plain(Instr::Halt);
        streams.push(b.finish()?);
    }

    Ok(CompiledLoop {
        program: Program::new(streams),
        before,
        after,
    })
}

/// Emits trailing conditional statements entirely inside the barrier
/// region — the Fig. 7(b)(ii) placement ("the entire if-statement is part
/// of the barrier").
fn emit_tail_ifs(
    b: &mut StreamBuilder,
    core_nest: &LoopNest,
    tail_ifs: &[Stmt],
    vars: &VarMap,
    marked: &BTreeSet<AccessRef>,
    spill: i64,
    proc: usize,
) -> Result<(), CompileError> {
    // Statement indices for marked-set lookups continue after the core.
    let core_assigns = deps::flatten(&core_nest.body).len();
    let mut stmt_idx = core_assigns;
    for (if_idx, stmt) in tail_ifs.iter().enumerate() {
        let Stmt::If {
            var,
            equals,
            then_branch,
            else_branch,
        } = stmt
        else {
            return Err(CompileError::MisplacedConditional);
        };
        let var_reg = vars
            .reg(*var)
            .ok_or(CodegenError::UnmappedVar { var: *var })?;
        let else_label = format!("__else_{proc}_{if_idx}");
        let end_label = format!("__endif_{proc}_{if_idx}");
        b.fuzzy(Instr::Li {
            rd: COND_REG,
            imm: *equals,
        });
        b.fuzzy_branch(Cond::Ne, var_reg, COND_REG, else_label.clone());
        stmt_idx = emit_branch_body(b, core_nest, then_branch, vars, marked, spill, stmt_idx)?;
        b.jump(end_label.clone(), true);
        b.label(else_label);
        stmt_idx = emit_branch_body(b, core_nest, else_branch, vars, marked, spill, stmt_idx)?;
        b.label(end_label);
        // Keep the join point inside the barrier region so the region stays
        // contiguous through the conditional.
        b.fuzzy(Instr::Nop);
    }
    Ok(())
}

fn emit_branch_body(
    b: &mut StreamBuilder,
    nest: &LoopNest,
    stmts: &[Stmt],
    vars: &VarMap,
    marked: &BTreeSet<AccessRef>,
    spill: i64,
    mut stmt_idx: usize,
) -> Result<usize, CompileError> {
    for s in stmts {
        let Stmt::Assign(assign) = s else {
            return Err(CompileError::MisplacedConditional);
        };
        let body = lower_assign_at(nest, assign, stmt_idx, marked, 1);
        if body.instrs.iter().any(|a| a.marked) {
            return Err(CompileError::MarkedConditional);
        }
        emit_regions(b, &[(&body.instrs, true)], vars, spill)?;
        stmt_idx += 1;
    }
    Ok(stmt_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, Subscript};
    use fuzzy_sim::machine::{Machine, MachineConfig};

    /// Fig. 9's nest: `for j seq { for i par: a[j][i] = a[j-1][i-1] + i*j }`
    /// with 4 processors, each owning one value of `i` (1..=4); the array
    /// is 12 rows × 6 cols so that i±1 and j−1 stay in bounds.
    fn fig9_nest() -> (LoopNest, Vec<Vec<(VarId, i64)>>) {
        let j = VarId(0);
        let i = VarId(1);
        let a = ArrayId(0);
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![12, 6],
                base: 0,
            }],
            seq_var: j,
            seq_lo: 1,
            seq_hi: 9,
            private_vars: vec![i],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(
                        a,
                        vec![Subscript::var(j, -1), Subscript::var(i, -1)],
                    )),
                    Expr::mul(Expr::Var(i), Expr::Var(j)),
                ),
            })],
            var_names: vec!["j".into(), "i".into()],
        };
        let inits = (1..=4).map(|l| vec![(i, l)]).collect();
        (nest, inits)
    }

    /// Reference execution of the Fig. 9 recurrence on the host.
    fn fig9_reference() -> Vec<i64> {
        let mut a = vec![0i64; 12 * 6];
        for j in 1..=9i64 {
            let prev = a.clone();
            for i in 1..=4i64 {
                a[(j * 6 + i) as usize] = prev[((j - 1) * 6 + (i - 1)) as usize] + i * j;
            }
        }
        a
    }

    fn run_compiled(compiled: &CompiledLoop) -> Vec<i64> {
        let mut m = Machine::new(
            compiled.program.clone(),
            MachineConfig {
                memory: fuzzy_sim::memory::MemoryConfig {
                    size_words: 1 << 16,
                    ..Default::default()
                },
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let out = m.run(10_000_000).unwrap();
        assert!(out.is_halted(), "outcome {out:?}");
        (0..12 * 6).map(|w| m.memory().peek(w)).collect()
    }

    #[test]
    fn fig9_compiles_and_computes_reference_values_without_reorder() {
        let (nest, inits) = fig9_nest();
        let compiled = compile_nest(
            &nest,
            &inits,
            &CompileOptions {
                reorder: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run_compiled(&compiled), fig9_reference());
    }

    #[test]
    fn fig9_compiles_and_computes_reference_values_with_reorder() {
        let (nest, inits) = fig9_nest();
        let compiled = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap();
        assert_eq!(run_compiled(&compiled), fig9_reference());
        assert!(
            compiled.after.non_barrier_len() < compiled.before.non_barrier_len(),
            "reordering must shrink the non-barrier region"
        );
    }

    #[test]
    fn compiled_program_validates() {
        let (nest, inits) = fig9_nest();
        let compiled = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap();
        assert!(compiled.program.validate().is_ok());
    }

    #[test]
    fn reordering_reduces_stall_cycles_under_drift() {
        // With probabilistic cache misses injecting drift, the enlarged
        // barrier region must absorb more skew: total stall cycles with
        // reordering <= without.
        let (nest, inits) = fig9_nest();
        let run = |reorder: bool| -> u64 {
            let compiled = compile_nest(
                &nest,
                &inits,
                &CompileOptions {
                    reorder,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
            let mut m = fuzzy_sim::builder::MachineBuilder::new(compiled.program)
                .miss_rate(0.3)
                .miss_penalty(20)
                .seed(7)
                .build()
                .unwrap();
            assert!(m.run(10_000_000).unwrap().is_halted());
            m.stats().total_stall_cycles()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with <= without,
            "reordered stalls ({with}) should not exceed unreordered ({without})"
        );
    }

    #[test]
    fn too_many_private_vars_rejected() {
        let (mut nest, _) = fig9_nest();
        nest.private_vars = (1..=5).map(VarId).collect();
        let err = compile_nest(&nest, &[vec![]], &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::TooManyPrivateVars { got: 5 }));
    }

    #[test]
    fn trailing_conditional_compiles_into_barrier_region() {
        // for k seq { a[i] = a[i] + 1; if i == 1 then b[i] = k } with the
        // conditional unmarked → emitted in barrier region.
        let k = VarId(0);
        let i = VarId(1);
        let a = ArrayId(0);
        let bb = ArrayId(1);
        let nest = LoopNest {
            arrays: vec![
                ArrayDecl {
                    name: "a".into(),
                    dims: vec![8],
                    base: 0,
                },
                ArrayDecl {
                    name: "b".into(),
                    dims: vec![8],
                    base: 8,
                },
            ],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 3,
            private_vars: vec![i],
            body: vec![
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(a, vec![Subscript::var(i, 0)]),
                    value: Expr::add(
                        Expr::Access(ArrayAccess::new(a, vec![Subscript::var(i, 0)])),
                        Expr::Const(1),
                    ),
                }),
                Stmt::If {
                    var: i,
                    equals: 1,
                    then_branch: vec![Stmt::Assign(Assign {
                        target: ArrayAccess::new(bb, vec![Subscript::var(i, 0)]),
                        value: Expr::Var(k),
                    })],
                    else_branch: vec![],
                },
            ],
            var_names: vec!["k".into(), "i".into()],
        };
        let inits: Vec<Vec<(VarId, i64)>> = (1..=2).map(|l| vec![(i, l)]).collect();
        let compiled = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap();
        assert!(compiled.program.validate().is_ok());
        let mut m = Machine::new(compiled.program, MachineConfig::default()).unwrap();
        assert!(m.run(1_000_000).unwrap().is_halted());
        assert_eq!(m.memory().peek(1), 3, "a[1] incremented 3 times");
        assert_eq!(m.memory().peek(2), 3, "a[2] incremented 3 times");
        assert_eq!(m.memory().peek(8 + 1), 3, "b[1] = k from last iteration");
        assert_eq!(m.memory().peek(8 + 2), 0, "proc 2 never takes the branch");
    }

    #[test]
    fn misplaced_conditional_rejected() {
        let (nest, _) = fig9_nest();
        let mut bad = nest.clone();
        bad.body.insert(
            0,
            Stmt::If {
                var: VarId(1),
                equals: 0,
                then_branch: vec![],
                else_branch: vec![],
            },
        );
        let err = compile_nest(&bad, &[vec![]], &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::MisplacedConditional));
    }

    #[test]
    fn nested_conditional_rejected() {
        // An If inside a trailing If's branch: branches may only hold
        // straight-line assignments.
        let (nest, inits) = fig9_nest();
        let mut bad = nest.clone();
        bad.body.push(Stmt::If {
            var: VarId(1),
            equals: 1,
            then_branch: vec![Stmt::If {
                var: VarId(1),
                equals: 2,
                then_branch: vec![],
                else_branch: vec![],
            }],
            else_branch: vec![],
        });
        let err = compile_nest(&bad, &inits, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::MisplacedConditional));
    }

    #[test]
    fn marked_conditional_rejected() {
        // m[k][p] = m[k-1][p-1] carries a cross-processor dependence, so
        // both endpoints are marked (they delimit the barrier region). A
        // trailing conditional whose branch touches a marked access would
        // make the region's extent control-dependent — rejected.
        let k = VarId(0);
        let p = VarId(1);
        let m = ArrayId(0);
        let carried_read =
            || ArrayAccess::new(m, vec![Subscript::var(k, -1), Subscript::var(p, -1)]);
        let write = || ArrayAccess::new(m, vec![Subscript::var(k, 0), Subscript::var(p, 0)]);
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "m".into(),
                dims: vec![8, 4],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 6,
            private_vars: vec![p],
            body: vec![
                Stmt::Assign(Assign {
                    target: write(),
                    value: Expr::add(Expr::Access(carried_read()), Expr::Const(1)),
                }),
                Stmt::If {
                    var: p,
                    equals: 1,
                    then_branch: vec![Stmt::Assign(Assign {
                        target: write(),
                        value: Expr::Access(carried_read()),
                    })],
                    else_branch: vec![],
                },
            ],
            var_names: vec!["k".into(), "p".into()],
        };
        let inits: Vec<Vec<(VarId, i64)>> = (1..=2).map(|l| vec![(p, l)]).collect();
        let err = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::MarkedConditional));
    }
}
