//! Three-phase code reordering (Sec. 4) that shrinks the non-barrier
//! region to its minimum and grows the barrier regions around it.
//!
//! > "First we consider for scheduling only the instructions from the
//! > non-barrier region that are not marked. All instructions scheduled
//! > during this phase are essentially moved into the barrier region
//! > preceding the non-barrier region. Next, the scheduling of instructions
//! > is carried out in manner that tries to schedule the marked
//! > instructions as early as possible. … The instructions scheduled
//! > during this phase form the non-barrier region. After the last
//! > non-barrier instruction has been scheduled, the final phase generates
//! > an ordering for the remaining instructions. These instructions are
//! > included in the barrier region following the non-barrier region."

use crate::dag::DepDag;
use crate::region::RegionSplit;
use crate::tac::TacBody;

/// Reorders `body` into a [`RegionSplit`] with a minimal non-barrier
/// region:
///
/// * **prefix** — instructions with no (transitive) dependence on a marked
///   instruction (phase 1);
/// * **non-barrier** — the marked instructions plus every unscheduled
///   ancestor they require (phase 2);
/// * **suffix** — everything else, i.e. instructions that depend on marked
///   instructions but are not needed by them (phase 3).
///
/// Each phase emits in topological order, so the result is always a legal
/// schedule of the original body (checked with a debug assertion against
/// the dependence DAG).
///
/// A body with no marked instructions comes back entirely in `prefix`.
#[must_use]
pub fn reorder(body: &TacBody) -> RegionSplit {
    let dag = DepDag::build(&body.instrs);
    let n = body.instrs.len();
    let marked: Vec<usize> = body.marked_indices();
    if marked.is_empty() {
        return RegionSplit {
            prefix: body.instrs.clone(),
            non_barrier: Vec::new(),
            suffix: Vec::new(),
        };
    }

    let tainted = dag.descendants_of(&marked); // marked + their descendants
    let needed = dag.ancestors_of(&marked); // marked + their ancestors

    // Emit a phase: topological order over the nodes selected by `take`,
    // assuming every selected node's predecessors are either already
    // emitted or also selected.
    let mut emitted = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let emit_phase =
        |take: &dyn Fn(usize) -> bool, emitted: &mut Vec<bool>, order: &mut Vec<usize>| {
            let start = order.len();
            let mut pending: Vec<usize> = (0..n).filter(|&i| !emitted[i] && take(i)).collect();
            // Kahn's algorithm restricted to the pending set, preserving
            // original program order among ready nodes for stable output.
            let mut remaining = pending.len();
            while remaining > 0 {
                let mut progressed = false;
                pending.retain(|&i| {
                    if emitted[i] {
                        return false;
                    }
                    let ready = dag.preds[i].iter().all(|&p| emitted[p]);
                    if ready {
                        emitted[i] = true;
                        order.push(i);
                        progressed = true;
                        false
                    } else {
                        true
                    }
                });
                remaining = pending.len();
                assert!(
                    progressed || remaining == 0,
                    "phase selection was not predecessor-closed"
                );
            }
            order.len() - start
        };

    let phase1 = emit_phase(&|i| !tainted[i], &mut emitted, &mut order);
    let phase2 = emit_phase(&|i| needed[i], &mut emitted, &mut order);
    let _phase3 = emit_phase(&|_| true, &mut emitted, &mut order);

    debug_assert!(dag.respects(&order), "reorder produced an illegal schedule");

    let pick = |range: std::ops::Range<usize>| {
        order[range]
            .iter()
            .map(|&i| body.instrs[i].clone())
            .collect::<Vec<_>>()
    };
    RegionSplit {
        prefix: pick(0..phase1),
        non_barrier: pick(phase1..phase1 + phase2),
        suffix: pick(phase1 + phase2..n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps;
    use crate::lower::{lower_body, tests::poisson_nest};
    use crate::tac::{AnnotatedInstr, BinOp, Src, TacInstr, Temp};

    #[test]
    fn poisson_reorder_matches_paper() {
        // Fig. 4(b): after reordering, the non-barrier region holds only
        // I1…I4 plus the divide — 5 instructions; all address arithmetic
        // moves to the preceding barrier region; phase 3 is empty.
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let before = RegionSplit::by_marks(&body);
        let after = reorder(&body);

        assert_eq!(after.non_barrier_len(), 5, "{after:#?}");
        assert_eq!(after.suffix.len(), 0, "paper: nothing left for phase 3");
        assert_eq!(after.total_len(), body.len());
        assert!(
            after.non_barrier_len() < before.non_barrier_len(),
            "reordering must shrink the non-barrier region \
             ({} -> {})",
            before.non_barrier_len(),
            after.non_barrier_len()
        );
        // Paper's Fig 4(a) non-barrier region: I1 through I4 including the
        // interleaved address code (15 instructions in their listing; ours
        // differs only by the lazily-emitted address adds).
        assert!(before.non_barrier_len() >= 15);
    }

    #[test]
    fn reorder_is_a_legal_schedule() {
        let nest = poisson_nest();
        let info = deps::analyze(&nest);
        let body = lower_body(&nest, &info.marked_for_carried());
        let after = reorder(&body);
        // Re-run the DAG check over the flattened order by matching
        // instructions back to their original indices.
        let flat = after.in_order();
        assert_eq!(flat.len(), body.instrs.len());
        // Every marked instruction is in the non-barrier region, none in
        // prefix/suffix.
        assert!(after.non_barrier.iter().filter(|a| a.marked).count() == 4);
        assert!(after.prefix.iter().all(|a| !a.marked));
        assert!(after.suffix.iter().all(|a| !a.marked));
    }

    #[test]
    fn unmarked_body_moves_entirely_to_prefix() {
        let body = TacBody {
            instrs: vec![
                AnnotatedInstr::plain(TacInstr::Const {
                    dst: Temp(1),
                    value: 3,
                }),
                AnnotatedInstr::plain(TacInstr::Bin {
                    dst: Temp(2),
                    op: BinOp::Add,
                    lhs: Src::Temp(Temp(1)),
                    rhs: Src::Const(1),
                }),
            ],
            next_temp: 3,
        };
        let split = reorder(&body);
        assert_eq!(split.prefix.len(), 2);
        assert_eq!(split.non_barrier_len(), 0);
    }

    #[test]
    fn consumer_of_marked_value_goes_to_suffix() {
        // T1 = 0; T2 = [T1] (marked); T3 = T2 + 1 (unmarked, depends on
        // marked): phase 3 must pick it up.
        let body = TacBody {
            instrs: vec![
                AnnotatedInstr::plain(TacInstr::Const {
                    dst: Temp(1),
                    value: 0,
                }),
                AnnotatedInstr::marked(TacInstr::Copy {
                    dst: Temp(2),
                    src: Src::Mem(Temp(1)),
                }),
                AnnotatedInstr::plain(TacInstr::Bin {
                    dst: Temp(3),
                    op: BinOp::Add,
                    lhs: Src::Temp(Temp(2)),
                    rhs: Src::Const(1),
                }),
            ],
            next_temp: 4,
        };
        let split = reorder(&body);
        assert_eq!(split.prefix.len(), 1);
        assert_eq!(split.non_barrier.len(), 1);
        assert_eq!(split.suffix.len(), 1);
    }

    #[test]
    fn instruction_between_two_marked_stays_in_non_barrier() {
        // marked load → unmarked add → marked store: the add is both a
        // descendant of the first mark and an ancestor of the second, so
        // it must be scheduled in phase 2.
        let body = TacBody {
            instrs: vec![
                AnnotatedInstr::plain(TacInstr::Const {
                    dst: Temp(1),
                    value: 0,
                }),
                AnnotatedInstr::marked(TacInstr::Copy {
                    dst: Temp(2),
                    src: Src::Mem(Temp(1)),
                }),
                AnnotatedInstr::plain(TacInstr::Bin {
                    dst: Temp(3),
                    op: BinOp::Add,
                    lhs: Src::Temp(Temp(2)),
                    rhs: Src::Const(1),
                }),
                AnnotatedInstr::marked(TacInstr::Store {
                    addr: Temp(1),
                    src: Src::Temp(Temp(3)),
                }),
            ],
            next_temp: 4,
        };
        let split = reorder(&body);
        assert_eq!(split.non_barrier.len(), 3);
        assert_eq!(split.prefix.len(), 1);
        assert!(split.suffix.is_empty());
    }
}
