//! Property-based tests for the compiler: reordering is always a legal
//! schedule, distribution partitions statements, and compiled random
//! expressions evaluate exactly as a host interpreter says they should.

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::codegen::{emit_regions, VarMap};
use fuzzy_compiler::dag::DepDag;
use fuzzy_compiler::lower::lower_assign_at;
use fuzzy_compiler::region::RegionSplit;
use fuzzy_compiler::reorder::reorder;
use fuzzy_compiler::tac::{AnnotatedInstr, BinOp, Src, TacBody, TacInstr, Temp};
use fuzzy_compiler::transform::distribution::distribute;
use fuzzy_sim::machine::{Machine, MachineConfig};
use fuzzy_sim::program::{Program, StreamBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: random straight-line TAC bodies. Instruction `k` defines
/// temp `k+1` and may use any earlier temp; stores use earlier temps as
/// addresses.
fn arb_body() -> impl Strategy<Value = TacBody> {
    prop::collection::vec((0usize..4, any::<u16>(), any::<bool>()), 2..40).prop_map(|spec| {
        let mut instrs = Vec::new();
        let mut next_temp = 1usize;
        for (kind, r, marked) in spec {
            let pick = |r: u16, n: usize| Temp(1 + (r as usize) % n.max(1));
            let instr = if next_temp == 1 {
                TacInstr::Const {
                    dst: Temp(next_temp),
                    value: i64::from(r),
                }
            } else {
                match kind {
                    0 => TacInstr::Const {
                        dst: Temp(next_temp),
                        value: i64::from(r),
                    },
                    1 => TacInstr::Bin {
                        dst: Temp(next_temp),
                        op: BinOp::Add,
                        lhs: Src::Temp(pick(r, next_temp - 1)),
                        rhs: Src::Const(1),
                    },
                    2 => TacInstr::Copy {
                        dst: Temp(next_temp),
                        src: Src::Mem(pick(r, next_temp - 1)),
                    },
                    _ => {
                        let addr = pick(r, next_temp - 1);
                        instrs.push(AnnotatedInstr {
                            instr: TacInstr::Store {
                                addr,
                                src: Src::Const(i64::from(r)),
                            },
                            marked,
                            comment: None,
                        });
                        continue;
                    }
                }
            };
            let defines = instr.def().is_some();
            instrs.push(AnnotatedInstr {
                instr,
                marked,
                comment: None,
            });
            if defines {
                next_temp += 1;
            }
        }
        TacBody {
            instrs,
            next_temp,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reordering any body yields a permutation that respects the
    /// dependence DAG, keeps every marked instruction in the non-barrier
    /// region and nothing marked outside it.
    #[test]
    fn reorder_is_always_a_legal_partition(body in arb_body()) {
        let split = reorder(&body);
        prop_assert_eq!(split.total_len(), body.instrs.len());

        // Multiset equality: match reordered instructions back to the
        // original by searching (instructions may repeat, so consume).
        let mut remaining: Vec<Option<&AnnotatedInstr>> =
            body.instrs.iter().map(Some).collect();
        let order: Vec<usize> = split
            .in_order()
            .iter()
            .map(|a| {
                let idx = remaining
                    .iter()
                    .position(|o| o.map(|x| x == a).unwrap_or(false))
                    .expect("reordered instr must come from the body");
                remaining[idx] = None;
                idx
            })
            .collect();
        // `order` maps positions to original indices; legality = the DAG
        // is respected. (Duplicate instructions may swap matches, but
        // identical instructions have identical deps only when their
        // operands coincide, which `position` handles conservatively for
        // stores; defs are unique so definers can't swap.)
        let dag = DepDag::build(&body.instrs);
        prop_assert!(dag.respects(&order), "illegal schedule: {order:?}");

        prop_assert!(split.prefix.iter().all(|a| !a.marked));
        prop_assert!(split.suffix.iter().all(|a| !a.marked));
        let marked_in = split.non_barrier.iter().filter(|a| a.marked).count();
        prop_assert_eq!(marked_in, body.marked_indices().len());
    }

    /// by_marks and reorder agree on totals, and reorder's non-barrier
    /// region is never larger.
    #[test]
    fn reorder_never_grows_the_non_barrier_region(body in arb_body()) {
        let before = RegionSplit::by_marks(&body);
        let after = reorder(&body);
        prop_assert_eq!(before.total_len(), after.total_len());
        prop_assert!(after.non_barrier_len() <= before.non_barrier_len());
    }

    /// distribute() partitions the statement indices exactly.
    #[test]
    fn distribution_partitions_statements(
        n_stmts in 1usize..5,
        offsets in prop::collection::vec((-1i64..2, -1i64..2), 5),
    ) {
        let i = VarId(0);
        let j = VarId(1);
        let body: Vec<Stmt> = (0..n_stmts)
            .map(|s| {
                let (di, dj) = offsets[s % offsets.len()];
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(
                        ArrayId(s), // distinct arrays: independence varies via offsets
                        vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                    ),
                    value: Expr::Access(ArrayAccess::new(
                        ArrayId((s + 1) % n_stmts),
                        vec![Subscript::var(j, dj), Subscript::var(i, di)],
                    )),
                })
            })
            .collect();
        let arrays = (0..n_stmts)
            .map(|s| ArrayDecl {
                name: format!("a{s}"),
                dims: vec![8, 8],
                base: (s * 64) as i64,
            })
            .collect();
        let nest = LoopNest {
            arrays,
            seq_var: i,
            seq_lo: 1,
            seq_hi: 4,
            private_vars: vec![j],
            body,
            var_names: vec!["i".into(), "j".into()],
        };
        let dist = distribute(&nest);
        let mut seen: Vec<usize> = dist.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_stmts).collect::<Vec<_>>());
        prop_assert_eq!(dist.groups.len(), dist.pinned.len());
        // Statement order is preserved within each group.
        for g in &dist.groups {
            prop_assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Compiled random expressions compute exactly what a host
    /// interpreter computes (end-to-end: lower -> codegen -> simulate).
    #[test]
    fn compiled_expressions_match_interpreter(expr in arb_expr(), init in prop::collection::vec(-100i64..100, 16)) {
        let i_var = VarId(0);
        let arr = ArrayId(0);
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![16],
                base: 0,
            }],
            seq_var: VarId(9),
            seq_lo: 0,
            seq_hi: 0,
            private_vars: vec![i_var],
            body: vec![],
            var_names: vec!["i".into()],
        };
        let i_value = 7i64; // target a[7+1]; reads clamp to 0..8 offsets
        let assign = Assign {
            target: ArrayAccess::new(arr, vec![Subscript::var(i_var, 1)]),
            value: expr.clone(),
        };
        let body = lower_assign_at(&nest, &assign, 0, &BTreeSet::new(), 1);

        let mut vars = VarMap::new();
        vars.assign(i_var, 1);
        let mut b = StreamBuilder::new();
        b.plain(fuzzy_sim::isa::Instr::Li { rd: 1, imm: i_value });
        emit_regions(&mut b, &[(&body.instrs, false)], &vars, 1000).unwrap();
        b.plain(fuzzy_sim::isa::Instr::Halt);
        let mut m = Machine::new(
            Program::new(vec![b.finish().unwrap()]),
            MachineConfig::default(),
        )
        .unwrap();
        for (w, &v) in init.iter().enumerate() {
            m.memory_mut().poke(w, v);
        }
        let out = m.run(1_000_000).unwrap();
        prop_assert!(out.is_halted(), "{out:?}");

        let expected = eval(&expr, i_value, &init);
        prop_assert_eq!(m.memory().peek((i_value + 1) as usize), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end: random parallel loop nests compiled for several
    /// processors compute exactly what a lockstep (Jacobi) interpreter
    /// computes. With zero drift every processor executes the identical
    /// instruction sequence in lockstep, so all reads of an outer
    /// iteration happen before any writes — matching the interpreter's
    /// read-prev/write-next semantics.
    #[test]
    fn compiled_nests_match_jacobi_interpreter(
        procs in 1usize..5,
        outer in 1i64..8,
        di in -1i64..=1,
        dk in -1i64..=0,
        scale in 1i64..4,
        with_reorder in proptest::bool::ANY,
    ) {
        let k = VarId(0);
        let i = VarId(1);
        let arr = ArrayId(0);
        let rows = (procs + 2) as usize;
        let cols = (outer + 2) as usize;
        // a[i][k] = a[i+di][k+dk] * scale + i + k
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![rows, cols],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: outer,
            private_vars: vec![i],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(
                    arr,
                    vec![Subscript::var(i, 0), Subscript::var(k, 0)],
                ),
                value: Expr::add(
                    Expr::mul(
                        Expr::Access(ArrayAccess::new(
                            arr,
                            vec![Subscript::var(i, di), Subscript::var(k, dk)],
                        )),
                        Expr::Const(scale),
                    ),
                    Expr::add(Expr::Var(i), Expr::Var(k)),
                ),
            })],
            var_names: vec!["k".into(), "i".into()],
        };
        let inits: Vec<Vec<(VarId, i64)>> =
            (1..=procs as i64).map(|l| vec![(i, l)]).collect();
        let compiled = fuzzy_compiler::driver::compile_nest(
            &nest,
            &inits,
            &fuzzy_compiler::driver::CompileOptions {
                reorder: with_reorder,
                ..Default::default()
            },
        )
        .unwrap();
        let mut m = Machine::new(compiled.program, MachineConfig::default()).unwrap();
        // Seed the array with distinctive values.
        for r in 0..rows {
            for c in 0..cols {
                m.memory_mut().poke(r * cols + c, (r * 31 + c * 7) as i64);
            }
        }
        let out = m.run(50_000_000).unwrap();
        let halted = matches!(out, fuzzy_sim::machine::RunOutcome::Halted { .. });
        prop_assert!(halted, "run did not halt");

        // Jacobi interpreter.
        let mut g: Vec<i64> = (0..rows * cols)
            .map(|w| ((w / cols) * 31 + (w % cols) * 7) as i64)
            .collect();
        for kk in 1..=outer {
            let prev = g.clone();
            for ii in 1..=procs as i64 {
                let src = ((ii + di) as usize) * cols + (kk + dk) as usize;
                let dst = (ii as usize) * cols + kk as usize;
                g[dst] = prev[src].wrapping_mul(scale).wrapping_add(ii + kk);
            }
        }
        let sim: Vec<i64> = (0..rows * cols).map(|w| m.memory().peek(w)).collect();
        prop_assert_eq!(sim, g);
    }
}

/// Random expression over a[i+c] reads (c in 0..=8, so addresses stay in
/// 0..16 for i=7), the variable i, and constants.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Const),
        Just(Expr::Var(VarId(0))),
        (-7i64..=8).prop_map(|c| Expr::Access(ArrayAccess::new(
            ArrayId(0),
            vec![Subscript::var(VarId(0), c)]
        ))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner, 1i64..10).prop_map(|(a, c)| Expr::div_const(a, c)),
        ]
    })
}

fn eval(expr: &Expr, i: i64, mem: &[i64]) -> i64 {
    match expr {
        Expr::Const(c) => *c,
        Expr::Var(_) => i,
        Expr::Access(a) => {
            let sub = &a.subs[0];
            let idx = i + sub.offset;
            mem[idx as usize]
        }
        Expr::Add(a, b) => eval(a, i, mem).wrapping_add(eval(b, i, mem)),
        Expr::Sub(a, b) => eval(a, i, mem).wrapping_sub(eval(b, i, mem)),
        Expr::Mul(a, b) => eval(a, i, mem).wrapping_mul(eval(b, i, mem)),
        Expr::DivConst(a, c) => {
            let v = eval(a, i, mem);
            if *c == 0 {
                0
            } else {
                v.wrapping_div(*c)
            }
        }
    }
}
