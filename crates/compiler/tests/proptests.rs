//! Randomized tests for the compiler: reordering is always a legal
//! schedule, distribution partitions statements, and compiled random
//! expressions evaluate exactly as a host interpreter says they should.
//!
//! Formerly written with `proptest`; the build environment is offline, so
//! the same properties are exercised with a deterministic seeded generator
//! ([`fuzzy_util::SplitMix64`]) sweeping many random cases.

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::codegen::{emit_regions, VarMap};
use fuzzy_compiler::dag::DepDag;
use fuzzy_compiler::lower::lower_assign_at;
use fuzzy_compiler::region::RegionSplit;
use fuzzy_compiler::reorder::reorder;
use fuzzy_compiler::tac::{AnnotatedInstr, BinOp, Src, TacBody, TacInstr, Temp};
use fuzzy_compiler::transform::distribution::distribute;
use fuzzy_sim::machine::{Machine, MachineConfig};
use fuzzy_sim::program::{Program, StreamBuilder};
use fuzzy_util::SplitMix64;
use std::collections::BTreeSet;

/// Random straight-line TAC body. Instruction `k` defines temp `k+1` and
/// may use any earlier temp; stores use earlier temps as addresses.
fn random_body(rng: &mut SplitMix64) -> TacBody {
    let len = 2 + rng.below(38);
    let mut instrs = Vec::new();
    let mut next_temp = 1usize;
    for _ in 0..len {
        let kind = rng.below(4);
        let r = rng.range_u64(0, u64::from(u16::MAX)) as u16;
        let marked = rng.chance(0.5);
        let pick = |r: u16, n: usize| Temp(1 + (r as usize) % n.max(1));
        let instr = if next_temp == 1 {
            TacInstr::Const {
                dst: Temp(next_temp),
                value: i64::from(r),
            }
        } else {
            match kind {
                0 => TacInstr::Const {
                    dst: Temp(next_temp),
                    value: i64::from(r),
                },
                1 => TacInstr::Bin {
                    dst: Temp(next_temp),
                    op: BinOp::Add,
                    lhs: Src::Temp(pick(r, next_temp - 1)),
                    rhs: Src::Const(1),
                },
                2 => TacInstr::Copy {
                    dst: Temp(next_temp),
                    src: Src::Mem(pick(r, next_temp - 1)),
                },
                _ => {
                    let addr = pick(r, next_temp - 1);
                    instrs.push(AnnotatedInstr {
                        instr: TacInstr::Store {
                            addr,
                            src: Src::Const(i64::from(r)),
                        },
                        marked,
                        comment: None,
                    });
                    continue;
                }
            }
        };
        let defines = instr.def().is_some();
        instrs.push(AnnotatedInstr {
            instr,
            marked,
            comment: None,
        });
        if defines {
            next_temp += 1;
        }
    }
    TacBody { instrs, next_temp }
}

/// Reordering any body yields a permutation that respects the
/// dependence DAG, keeps every marked instruction in the non-barrier
/// region and nothing marked outside it.
#[test]
fn reorder_is_always_a_legal_partition() {
    let mut rng = SplitMix64::seed_from_u64(0xDA6);
    for _case in 0..128 {
        let body = random_body(&mut rng);
        let split = reorder(&body);
        assert_eq!(split.total_len(), body.instrs.len());

        // Multiset equality: match reordered instructions back to the
        // original by searching (instructions may repeat, so consume).
        let mut remaining: Vec<Option<&AnnotatedInstr>> = body.instrs.iter().map(Some).collect();
        let order: Vec<usize> = split
            .in_order()
            .iter()
            .map(|a| {
                let idx = remaining
                    .iter()
                    .position(|o| o.map(|x| x == a).unwrap_or(false))
                    .expect("reordered instr must come from the body");
                remaining[idx] = None;
                idx
            })
            .collect();
        // `order` maps positions to original indices; legality = the DAG
        // is respected. (Duplicate instructions may swap matches, but
        // identical instructions have identical deps only when their
        // operands coincide, which `position` handles conservatively for
        // stores; defs are unique so definers can't swap.)
        let dag = DepDag::build(&body.instrs);
        assert!(dag.respects(&order), "illegal schedule: {order:?}");

        assert!(split.prefix.iter().all(|a| !a.marked));
        assert!(split.suffix.iter().all(|a| !a.marked));
        let marked_in = split.non_barrier.iter().filter(|a| a.marked).count();
        assert_eq!(marked_in, body.marked_indices().len());
    }
}

/// by_marks and reorder agree on totals, and reorder's non-barrier
/// region is never larger.
#[test]
fn reorder_never_grows_the_non_barrier_region() {
    let mut rng = SplitMix64::seed_from_u64(0xFAB);
    for _case in 0..128 {
        let body = random_body(&mut rng);
        let before = RegionSplit::by_marks(&body);
        let after = reorder(&body);
        assert_eq!(before.total_len(), after.total_len());
        assert!(after.non_barrier_len() <= before.non_barrier_len());
    }
}

/// distribute() partitions the statement indices exactly.
#[test]
fn distribution_partitions_statements() {
    let mut rng = SplitMix64::seed_from_u64(0xD15);
    for _case in 0..64 {
        let n_stmts = 1 + rng.below(4);
        let offsets: Vec<(i64, i64)> = (0..5)
            .map(|_| {
                (
                    rng.range_u64(0, 2) as i64 - 1,
                    rng.range_u64(0, 2) as i64 - 1,
                )
            })
            .collect();
        let i = VarId(0);
        let j = VarId(1);
        let body: Vec<Stmt> = (0..n_stmts)
            .map(|s| {
                let (di, dj) = offsets[s % offsets.len()];
                Stmt::Assign(Assign {
                    target: ArrayAccess::new(
                        ArrayId(s), // distinct arrays: independence varies via offsets
                        vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                    ),
                    value: Expr::Access(ArrayAccess::new(
                        ArrayId((s + 1) % n_stmts),
                        vec![Subscript::var(j, dj), Subscript::var(i, di)],
                    )),
                })
            })
            .collect();
        let arrays = (0..n_stmts)
            .map(|s| ArrayDecl {
                name: format!("a{s}"),
                dims: vec![8, 8],
                base: (s * 64) as i64,
            })
            .collect();
        let nest = LoopNest {
            arrays,
            seq_var: i,
            seq_lo: 1,
            seq_hi: 4,
            private_vars: vec![j],
            body,
            var_names: vec!["i".into(), "j".into()],
        };
        let dist = distribute(&nest);
        let mut seen: Vec<usize> = dist.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n_stmts).collect::<Vec<_>>());
        assert_eq!(dist.groups.len(), dist.pinned.len());
        // Statement order is preserved within each group.
        for g in &dist.groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

/// Random expression over a[i+c] reads (c in -7..=8, so addresses stay in
/// 0..16 for i=7), the variable i, and constants.
fn random_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.chance(0.4) {
        match rng.below(3) {
            0 => Expr::Const(rng.range_u64(0, 39) as i64 - 20),
            1 => Expr::Var(VarId(0)),
            _ => Expr::Access(ArrayAccess::new(
                ArrayId(0),
                vec![Subscript::var(VarId(0), rng.range_u64(0, 15) as i64 - 7)],
            )),
        }
    } else {
        let a = random_expr(rng, depth - 1);
        let b = random_expr(rng, depth - 1);
        match rng.below(4) {
            0 => Expr::add(a, b),
            1 => Expr::sub(a, b),
            2 => Expr::mul(a, b),
            _ => Expr::div_const(a, rng.range_u64(1, 9) as i64),
        }
    }
}

fn eval(expr: &Expr, i: i64, mem: &[i64]) -> i64 {
    match expr {
        Expr::Const(c) => *c,
        Expr::Var(_) => i,
        Expr::Access(a) => {
            let sub = &a.subs[0];
            let idx = i + sub.offset;
            mem[idx as usize]
        }
        Expr::Add(a, b) => eval(a, i, mem).wrapping_add(eval(b, i, mem)),
        Expr::Sub(a, b) => eval(a, i, mem).wrapping_sub(eval(b, i, mem)),
        Expr::Mul(a, b) => eval(a, i, mem).wrapping_mul(eval(b, i, mem)),
        Expr::DivConst(a, c) => {
            let v = eval(a, i, mem);
            if *c == 0 {
                0
            } else {
                v.wrapping_div(*c)
            }
        }
    }
}

/// Compiled random expressions compute exactly what a host interpreter
/// computes (end-to-end: lower -> codegen -> simulate).
#[test]
fn compiled_expressions_match_interpreter() {
    let mut rng = SplitMix64::seed_from_u64(0xE4A);
    for _case in 0..64 {
        let expr = random_expr(&mut rng, 3);
        let init: Vec<i64> = (0..16)
            .map(|_| rng.range_u64(0, 199) as i64 - 100)
            .collect();
        let i_var = VarId(0);
        let arr = ArrayId(0);
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![16],
                base: 0,
            }],
            seq_var: VarId(9),
            seq_lo: 0,
            seq_hi: 0,
            private_vars: vec![i_var],
            body: vec![],
            var_names: vec!["i".into()],
        };
        let i_value = 7i64; // target a[7+1]; reads clamp to 0..8 offsets
        let assign = Assign {
            target: ArrayAccess::new(arr, vec![Subscript::var(i_var, 1)]),
            value: expr.clone(),
        };
        let body = lower_assign_at(&nest, &assign, 0, &BTreeSet::new(), 1);

        let mut vars = VarMap::new();
        vars.assign(i_var, 1);
        let mut b = StreamBuilder::new();
        b.plain(fuzzy_sim::isa::Instr::Li {
            rd: 1,
            imm: i_value,
        });
        emit_regions(&mut b, &[(&body.instrs, false)], &vars, 1000).unwrap();
        b.plain(fuzzy_sim::isa::Instr::Halt);
        let mut m = Machine::new(
            Program::new(vec![b.finish().unwrap()]),
            MachineConfig::default(),
        )
        .unwrap();
        for (w, &v) in init.iter().enumerate() {
            m.memory_mut().poke(w, v);
        }
        let out = m.run(1_000_000).unwrap();
        assert!(out.is_halted(), "{out:?}");

        let expected = eval(&expr, i_value, &init);
        assert_eq!(m.memory().peek((i_value + 1) as usize), expected);
    }
}

/// End-to-end: random parallel loop nests compiled for several
/// processors compute exactly what a lockstep (Jacobi) interpreter
/// computes. With zero drift every processor executes the identical
/// instruction sequence in lockstep, so all reads of an outer
/// iteration happen before any writes — matching the interpreter's
/// read-prev/write-next semantics.
#[test]
fn compiled_nests_match_jacobi_interpreter() {
    let mut rng = SplitMix64::seed_from_u64(0x1AC0);
    for case in 0..24 {
        let procs = 1 + rng.below(4);
        let outer = 1 + rng.range_u64(0, 6) as i64;
        let di = rng.range_u64(0, 2) as i64 - 1;
        let dk = rng.range_u64(0, 1) as i64 - 1;
        let scale = 1 + rng.range_u64(0, 2) as i64;
        let with_reorder = case % 2 == 0;
        let k = VarId(0);
        let i = VarId(1);
        let arr = ArrayId(0);
        let rows = procs + 2;
        let cols = (outer + 2) as usize;
        // a[i][k] = a[i+di][k+dk] * scale + i + k
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![rows, cols],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: outer,
            private_vars: vec![i],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(arr, vec![Subscript::var(i, 0), Subscript::var(k, 0)]),
                value: Expr::add(
                    Expr::mul(
                        Expr::Access(ArrayAccess::new(
                            arr,
                            vec![Subscript::var(i, di), Subscript::var(k, dk)],
                        )),
                        Expr::Const(scale),
                    ),
                    Expr::add(Expr::Var(i), Expr::Var(k)),
                ),
            })],
            var_names: vec!["k".into(), "i".into()],
        };
        let inits: Vec<Vec<(VarId, i64)>> = (1..=procs as i64).map(|l| vec![(i, l)]).collect();
        let compiled = fuzzy_compiler::driver::compile_nest(
            &nest,
            &inits,
            &fuzzy_compiler::driver::CompileOptions {
                reorder: with_reorder,
                ..Default::default()
            },
        )
        .unwrap();
        let mut m = Machine::new(compiled.program, MachineConfig::default()).unwrap();
        // Seed the array with distinctive values.
        for r in 0..rows {
            for c in 0..cols {
                m.memory_mut().poke(r * cols + c, (r * 31 + c * 7) as i64);
            }
        }
        let out = m.run(50_000_000).unwrap();
        let halted = matches!(out, fuzzy_sim::machine::RunOutcome::Halted { .. });
        assert!(halted, "run did not halt");

        // Jacobi interpreter.
        let mut g: Vec<i64> = (0..rows * cols)
            .map(|w| ((w / cols) * 31 + (w % cols) * 7) as i64)
            .collect();
        for kk in 1..=outer {
            let prev = g.clone();
            for ii in 1..=procs as i64 {
                let src = ((ii + di) as usize) * cols + (kk + dk) as usize;
                let dst = (ii as usize) * cols + kk as usize;
                g[dst] = prev[src].wrapping_mul(scale).wrapping_add(ii + kk);
            }
        }
        let sim: Vec<i64> = (0..rows * cols).map(|w| m.memory().peek(w)).collect();
        assert_eq!(sim, g);
    }
}
