//! # fuzzy-net — message-passing fuzzy barriers across processes
//!
//! Gupta's fuzzy barrier (ASPLOS 1989) splits synchronization into an
//! *arrive* signal and a *wait*, with useful work in between. Nothing in
//! that contract requires shared memory — the dissemination backend is
//! already message-shaped — so this crate carries the same
//! [`fuzzy_barrier::SplitBarrier`] contract across a fabric:
//!
//! * [`wire`] — a length-prefixed, versioned frame format with explicit
//!   [`DecodeError`]s; five message kinds carry the whole protocol.
//! * [`Transport`] — one endpoint of a fully connected mesh, pluggable:
//!   [`LoopbackMesh`] (in-process, deterministic, with seeded fault
//!   injection), and [`SocketTransport`] over Unix-domain sockets or TCP.
//! * [`NetBarrier`] — a dissemination barrier over any transport, with
//!   per-round receive timeouts, nack-driven retransmission, and
//!   peer-death detection that poisons survivors instead of wedging them.
//!
//! The barrier region buys over the wire exactly what it buys over a
//! cache hierarchy, scaled up: a network round-trip (microseconds to
//! milliseconds) hides behind the region's useful work instead of a
//! stalled spin loop. See the repository's DESIGN §15 for the wire format
//! and failure model.
//!
//! ```
//! use fuzzy_barrier::SplitBarrier;
//! use fuzzy_net::{LoopbackMesh, NetBarrier, NetConfig};
//! use std::sync::Arc;
//!
//! let mesh = LoopbackMesh::new(2);
//! let barriers: Vec<_> = mesh
//!     .endpoints()
//!     .into_iter()
//!     .map(|t| NetBarrier::start(Arc::new(t), NetConfig::new()))
//!     .collect();
//! std::thread::scope(|s| {
//!     for b in &barriers {
//!         let b = Arc::clone(b);
//!         s.spawn(move || {
//!             let token = b.arrive(0);
//!             // fuzzy region: the network round-trip hides here
//!             assert_eq!(b.wait(token).episode, 0);
//!         });
//!     }
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier;
pub mod error;
pub mod loopback;
pub mod socket;
pub mod transport;
pub mod wire;

pub use barrier::{NetBarrier, NetConfig};
pub use error::NetError;
pub use loopback::{FaultCounts, FaultPlan, LoopbackMesh, LoopbackTransport};
pub use socket::{unix_socket_path, SocketTransport};
pub use transport::{Backoff, FrameSink, Transport};
pub use wire::{DecodeError, Message};
