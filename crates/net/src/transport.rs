//! The pluggable transport abstraction under [`crate::NetBarrier`].
//!
//! A [`Transport`] is one endpoint of a fully connected mesh of `nodes`
//! endpoints, addressed by dense ranks `0..nodes`. It moves [`Message`]s;
//! it knows nothing about barriers. The barrier layer hands it a
//! [`FrameSink`] at [`Transport::start`] and from then on every inbound
//! frame (and every link state change) is pushed into the sink — there is
//! no receive call to block on, which is what keeps the barrier's waiters
//! on their own spin/park machinery (`SyncOps::wait_until_budget`) rather
//! than on any single connection.
//!
//! Transports hold the sink **weakly**: the barrier owns the transport, so
//! a strong reference back would cycle and leak both. A reader thread that
//! fails to upgrade the sink knows the barrier is gone and exits.

use crate::error::NetError;
use crate::wire::{DecodeError, Message};
use std::fmt::Debug;
use std::sync::Arc;
use std::time::Duration;

/// Receiver of inbound frames and link events, implemented by the barrier
/// layer. Object-safe so transports need not know the barrier's `SyncOps`
/// domain.
pub trait FrameSink: Send + Sync {
    /// A frame from `from` decoded cleanly.
    fn deliver(&self, from: usize, msg: Message);

    /// Bytes from `from` failed to decode. The transport drops the
    /// offending frame (stream transports drop the whole connection, since
    /// framing is lost); the sink only records it.
    fn decode_failure(&self, from: usize, err: DecodeError) {
        let _ = (from, err);
    }

    /// The link to `peer` went down: `graceful` if the peer said `Bye`
    /// first (departure), otherwise the peer died mid-protocol and
    /// survivors should poison rather than wait forever.
    fn link_down(&self, peer: usize, graceful: bool);
}

/// One endpoint of a fully connected message mesh.
pub trait Transport: Send + Sync + Debug {
    /// This endpoint's mesh rank.
    fn rank(&self) -> usize;

    /// Total number of mesh endpoints.
    fn nodes(&self) -> usize;

    /// Sends one message to `to`. Never blocks on the *receiver* (the
    /// message is written to the link or queued); may block briefly on
    /// link-level flow control.
    fn send(&self, to: usize, msg: &Message) -> Result<(), NetError>;

    /// Attaches the sink and starts delivery (reader threads for socket
    /// transports, queued-frame flush for loopback). Frames sent to this
    /// endpoint before `start` are buffered and delivered here, in order.
    fn start(&self, sink: Arc<dyn FrameSink>);

    /// Stops delivery, says `Bye` to peers on a best-effort basis, closes
    /// links, and joins any reader threads. Idempotent.
    fn shutdown(&self);
}

/// Capped exponential backoff for connect/send retries.
///
/// `delay(k)` for attempt `k` is `base << k`, saturating at `cap`; the
/// schedule is deterministic (no jitter) so tests can bound total retry
/// time exactly: with `attempts` tries the worst-case total sleep is
/// `Σ min(base·2^k, cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the second attempt.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Maximum number of attempts (≥ 1).
    pub attempts: u32,
}

impl Default for Backoff {
    /// The mesh-setup default: ~8 s of patience for a peer process that
    /// has not bound its listener yet, in 1 ms → 512 ms capped steps.
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(512),
            attempts: 24,
        }
    }
}

impl Backoff {
    /// The delay to sleep after failed attempt `k` (0-based).
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let shifted = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap);
        shifted.min(self.cap)
    }

    /// Runs `op` up to [`Backoff::attempts`] times, sleeping the capped
    /// exponential delay between failures. Returns the first success or
    /// the last error.
    pub fn retry<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut last = None;
        for k in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last = Some(e);
                    if k + 1 < attempts {
                        std::thread::sleep(self.delay(k));
                    }
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let b = Backoff {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(9),
            attempts: 5,
        };
        assert_eq!(b.delay(0), Duration::from_millis(2));
        assert_eq!(b.delay(1), Duration::from_millis(4));
        assert_eq!(b.delay(2), Duration::from_millis(8));
        assert_eq!(b.delay(3), Duration::from_millis(9));
        assert_eq!(b.delay(31), Duration::from_millis(9));
    }

    #[test]
    fn retry_returns_first_success() {
        let b = Backoff {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            attempts: 10,
        };
        let mut calls = 0;
        let r: Result<u32, &str> = b.retry(|| {
            calls += 1;
            if calls == 3 {
                Ok(42)
            } else {
                Err("not yet")
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_surfaces_the_last_error() {
        let b = Backoff {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            attempts: 3,
        };
        let mut calls = 0;
        let r: Result<(), u32> = b.retry(|| {
            calls += 1;
            Err(calls)
        });
        assert_eq!(r, Err(3));
    }
}
