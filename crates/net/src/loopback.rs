//! In-process loopback transport: a mesh of channels inside one address
//! space.
//!
//! The loopback mesh serves two roles. First, it is the zero-setup way to
//! run a [`crate::NetBarrier`] between threads — sends dispatch
//! synchronously into the receiver's sink, so the whole protocol is
//! deterministic enough for the `fuzzy-check` model checker to explore.
//! Second, it is the **deterministic fault surface**: a seeded
//! [`FaultPlan`] injects drops, duplicates, delays, and reorders on every
//! link, and [`LoopbackMesh::kill`] simulates a peer death, so the
//! protocol's recovery machinery (nack-driven retransmission, poison
//! propagation) can be driven repeatably without sockets or real crashes.
//!
//! Frames still travel as encoded bytes and are decoded at delivery, so
//! the loopback path exercises the same wire codec as the socket
//! transports ([`LoopbackMesh::inject_raw`] feeds arbitrary bytes through
//! it for hardening tests).
//!
//! Fault semantics per link (ordered, single held-frame slot):
//! - **drop**: the frame vanishes (recovered by the receiver's nack).
//! - **dup**: the frame is delivered twice (the protocol is idempotent).
//! - **delay**: the frame is held and delivered *before* the next frame on
//!   the same link — late but in order.
//! - **reorder**: the frame is delivered *before* a currently held frame —
//!   out of order (falls back to delay when nothing is held).
//!
//! The fault outcome is computed under the link's lock, but delivery
//! happens **after** the lock is released: a sink's `deliver` may cascade
//! into further `send`s (the barrier's drive loop does exactly that), and
//! those may target the very link being processed.

use crate::error::NetError;
use crate::transport::{FrameSink, Transport};
use crate::wire::{self, Message};
use fuzzy_util::SplitMix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Seeded per-link fault rates, in permille (0–1000) of sent frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-link fault RNGs; the same seed and send sequence
    /// replay the same faults.
    pub seed: u64,
    /// Permille of frames silently dropped.
    pub drop_permille: u16,
    /// Permille of frames delivered twice.
    pub dup_permille: u16,
    /// Permille of frames held one send (late, in order).
    pub delay_permille: u16,
    /// Permille of frames delivered ahead of a held frame (out of order).
    pub reorder_permille: u16,
}

impl FaultPlan {
    /// Combined permille across all fault kinds (must stay ≤ 1000).
    #[must_use]
    pub fn total(&self) -> u32 {
        u32::from(self.drop_permille)
            + u32::from(self.dup_permille)
            + u32::from(self.delay_permille)
            + u32::from(self.reorder_permille)
    }
}

/// Point-in-time injected-fault counts for a mesh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames dropped.
    pub drops: u64,
    /// Frames duplicated.
    pub dups: u64,
    /// Frames delayed (held at least one send).
    pub delays: u64,
    /// Frames delivered out of order.
    pub reorders: u64,
}

enum SinkSlot {
    /// No sink yet: frames queue here and flush, in order, at `start`.
    Pending(Vec<(usize, Vec<u8>)>),
    Attached(Weak<dyn FrameSink>),
    /// The endpoint shut down or was killed.
    Gone,
}

struct Slot {
    sink: Mutex<SinkSlot>,
    dead: AtomicBool,
}

struct LinkState {
    rng: SplitMix64,
    held: Option<Vec<u8>>,
}

struct Fabric {
    nodes: usize,
    plan: FaultPlan,
    slots: Vec<Slot>,
    /// Row-major `from * nodes + to` ordered-link state.
    links: Vec<Mutex<LinkState>>,
    drops: AtomicU64,
    dups: AtomicU64,
    delays: AtomicU64,
    reorders: AtomicU64,
}

impl Fabric {
    fn sink_of(&self, rank: usize) -> Option<Arc<dyn FrameSink>> {
        match &*self.slots[rank].sink.lock().expect("sink lock") {
            SinkSlot::Attached(weak) => weak.upgrade(),
            _ => None,
        }
    }

    /// Queues or delivers `bytes` to `to`, decoding at the boundary.
    fn deliver_bytes(&self, from: usize, to: usize, bytes: Vec<u8>) {
        let sink = {
            let mut slot = self.slots[to].sink.lock().expect("sink lock");
            match &mut *slot {
                SinkSlot::Pending(queue) => {
                    queue.push((from, bytes));
                    return;
                }
                SinkSlot::Attached(weak) => match weak.upgrade() {
                    Some(sink) => sink,
                    None => return,
                },
                SinkSlot::Gone => return,
            }
        };
        // Decode and deliver outside the slot lock: deliver may cascade
        // into sends that target this same endpoint.
        match wire::decode(&bytes) {
            Ok((msg, _)) => sink.deliver(from, msg),
            Err(err) => sink.decode_failure(from, err),
        }
    }
}

/// A mesh of [`LoopbackTransport`] endpoints in one process.
#[derive(Clone)]
pub struct LoopbackMesh {
    fabric: Arc<Fabric>,
}

impl std::fmt::Debug for LoopbackMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackMesh")
            .field("nodes", &self.fabric.nodes)
            .field("plan", &self.fabric.plan)
            .finish()
    }
}

impl LoopbackMesh {
    /// A fault-free mesh of `nodes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self::with_faults(nodes, FaultPlan::default())
    }

    /// A mesh whose links inject the given seeded faults.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or the plan's rates sum past 1000 permille.
    #[must_use]
    pub fn with_faults(nodes: usize, plan: FaultPlan) -> Self {
        assert!(nodes > 0, "a mesh needs at least one endpoint");
        assert!(
            plan.total() <= 1000,
            "fault rates sum to {} permille (> 1000)",
            plan.total()
        );
        let links = (0..nodes * nodes)
            .map(|i| {
                Mutex::new(LinkState {
                    // Distinct stream per ordered link, stable under seed.
                    rng: SplitMix64::seed_from_u64(
                        plan.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                    ),
                    held: None,
                })
            })
            .collect();
        LoopbackMesh {
            fabric: Arc::new(Fabric {
                nodes,
                plan,
                slots: (0..nodes)
                    .map(|_| Slot {
                        sink: Mutex::new(SinkSlot::Pending(Vec::new())),
                        dead: AtomicBool::new(false),
                    })
                    .collect(),
                links,
                drops: AtomicU64::new(0),
                dups: AtomicU64::new(0),
                delays: AtomicU64::new(0),
                reorders: AtomicU64::new(0),
            }),
        }
    }

    /// The endpoint for `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn endpoint(&self, rank: usize) -> LoopbackTransport {
        assert!(rank < self.fabric.nodes, "rank {rank} out of range");
        LoopbackTransport {
            fabric: Arc::clone(&self.fabric),
            rank,
        }
    }

    /// All `nodes` endpoints, in rank order.
    #[must_use]
    pub fn endpoints(&self) -> Vec<LoopbackTransport> {
        (0..self.fabric.nodes).map(|r| self.endpoint(r)).collect()
    }

    /// Injected-fault counts so far.
    #[must_use]
    pub fn fault_counts(&self) -> FaultCounts {
        FaultCounts {
            drops: self.fabric.drops.load(Ordering::Relaxed),
            dups: self.fabric.dups.load(Ordering::Relaxed),
            delays: self.fabric.delays.load(Ordering::Relaxed),
            reorders: self.fabric.reorders.load(Ordering::Relaxed),
        }
    }

    /// Simulates the abrupt death of `rank`: its sink is detached, frames
    /// held on its links are discarded, and every other live endpoint
    /// observes a non-graceful `link_down` — exactly what the socket
    /// transports report when a peer's connection closes without a `Bye`.
    pub fn kill(&self, rank: usize) {
        assert!(rank < self.fabric.nodes, "rank {rank} out of range");
        if self.fabric.slots[rank].dead.swap(true, Ordering::AcqRel) {
            return;
        }
        *self.fabric.slots[rank].sink.lock().expect("sink lock") = SinkSlot::Gone;
        for i in 0..self.fabric.nodes {
            self.fabric.links[rank * self.fabric.nodes + i]
                .lock()
                .expect("link lock")
                .held = None;
        }
        for peer in 0..self.fabric.nodes {
            if peer != rank {
                if let Some(sink) = self.fabric.sink_of(peer) {
                    sink.link_down(rank, false);
                }
            }
        }
    }

    /// Pushes raw bytes across a link, bypassing fault injection — the
    /// hardening hook for feeding mangled frames to the decode boundary.
    pub fn inject_raw(&self, from: usize, to: usize, bytes: &[u8]) {
        assert!(
            from < self.fabric.nodes && to < self.fabric.nodes,
            "link {from}->{to} out of range"
        );
        self.fabric.deliver_bytes(from, to, bytes.to_vec());
    }

    /// Delivers every held (delayed) frame immediately.
    pub fn flush(&self) {
        for from in 0..self.fabric.nodes {
            for to in 0..self.fabric.nodes {
                let held = self.fabric.links[from * self.fabric.nodes + to]
                    .lock()
                    .expect("link lock")
                    .held
                    .take();
                if let Some(bytes) = held {
                    self.fabric.deliver_bytes(from, to, bytes);
                }
            }
        }
    }
}

/// One rank's handle onto a [`LoopbackMesh`].
#[derive(Clone)]
pub struct LoopbackTransport {
    fabric: Arc<Fabric>,
    rank: usize,
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackTransport")
            .field("rank", &self.rank)
            .field("nodes", &self.fabric.nodes)
            .finish()
    }
}

impl Transport for LoopbackTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nodes(&self) -> usize {
        self.fabric.nodes
    }

    fn send(&self, to: usize, msg: &Message) -> Result<(), NetError> {
        let f = &*self.fabric;
        assert!(to < f.nodes, "rank {to} out of range");
        if f.slots[self.rank].dead.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        if f.slots[to].dead.load(Ordering::Acquire) {
            return Err(NetError::PeerDown { peer: to });
        }
        let bytes = msg.encode();
        // Decide the fault outcome under the link lock, deliver after.
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(2);
        {
            let mut link = f.links[self.rank * f.nodes + to].lock().expect("link lock");
            let roll = if f.plan.total() == 0 {
                1000
            } else {
                link.rng.below(1000) as u32
            };
            let p = &f.plan;
            let d = u32::from(p.drop_permille);
            let du = d + u32::from(p.dup_permille);
            let de = du + u32::from(p.delay_permille);
            let re = de + u32::from(p.reorder_permille);
            if roll < d {
                f.drops.fetch_add(1, Ordering::Relaxed);
            } else if roll < du {
                f.dups.fetch_add(1, Ordering::Relaxed);
                if let Some(held) = link.held.take() {
                    out.push(held);
                }
                out.push(bytes.clone());
                out.push(bytes);
            } else if roll < de {
                f.delays.fetch_add(1, Ordering::Relaxed);
                if let Some(held) = link.held.take() {
                    out.push(held);
                }
                link.held = Some(bytes);
            } else if roll < re {
                if let Some(held) = link.held.take() {
                    f.reorders.fetch_add(1, Ordering::Relaxed);
                    out.push(bytes);
                    out.push(held);
                } else {
                    f.delays.fetch_add(1, Ordering::Relaxed);
                    link.held = Some(bytes);
                }
            } else {
                if let Some(held) = link.held.take() {
                    out.push(held);
                }
                out.push(bytes);
            }
        }
        for frame in out {
            f.deliver_bytes(self.rank, to, frame);
        }
        Ok(())
    }

    fn start(&self, sink: Arc<dyn FrameSink>) {
        let queued = {
            let mut slot = self.fabric.slots[self.rank].sink.lock().expect("sink lock");
            let queued = match &mut *slot {
                SinkSlot::Pending(queue) => std::mem::take(queue),
                _ => Vec::new(),
            };
            *slot = SinkSlot::Attached(Arc::downgrade(&sink));
            queued
        };
        for (from, bytes) in queued {
            match wire::decode(&bytes) {
                Ok((msg, _)) => sink.deliver(from, msg),
                Err(err) => sink.decode_failure(from, err),
            }
        }
    }

    fn shutdown(&self) {
        let f = &*self.fabric;
        if f.slots[self.rank].dead.swap(true, Ordering::AcqRel) {
            return;
        }
        // Flush frames this endpoint already sent but the fabric held.
        for to in 0..f.nodes {
            let held = f.links[self.rank * f.nodes + to]
                .lock()
                .expect("link lock")
                .held
                .take();
            if let Some(bytes) = held {
                f.deliver_bytes(self.rank, to, bytes);
            }
        }
        *f.slots[self.rank].sink.lock().expect("sink lock") = SinkSlot::Gone;
        for peer in 0..f.nodes {
            if peer != self.rank {
                if let Some(sink) = f.sink_of(peer) {
                    sink.link_down(self.rank, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[derive(Default)]
    struct Recorder {
        frames: StdMutex<Vec<(usize, Message)>>,
        downs: StdMutex<Vec<(usize, bool)>>,
        decode_errors: AtomicU64,
    }

    impl FrameSink for Recorder {
        fn deliver(&self, from: usize, msg: Message) {
            self.frames.lock().unwrap().push((from, msg));
        }
        fn decode_failure(&self, _from: usize, _err: crate::wire::DecodeError) {
            self.decode_errors.fetch_add(1, Ordering::Relaxed);
        }
        fn link_down(&self, peer: usize, graceful: bool) {
            self.downs.lock().unwrap().push((peer, graceful));
        }
    }

    fn sig(episode: u64, round: u32) -> Message {
        Message::Signal { episode, round }
    }

    #[test]
    fn frames_sent_before_start_flush_in_order() {
        let mesh = LoopbackMesh::new(2);
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        a.send(1, &sig(0, 0)).unwrap();
        a.send(1, &sig(0, 1)).unwrap();
        let rec = Arc::new(Recorder::default());
        b.start(rec.clone());
        assert_eq!(
            *rec.frames.lock().unwrap(),
            vec![(0, sig(0, 0)), (0, sig(0, 1))]
        );
        a.send(1, &sig(1, 0)).unwrap();
        assert_eq!(rec.frames.lock().unwrap().len(), 3);
    }

    #[test]
    fn kill_reports_non_graceful_shutdown_reports_graceful() {
        let mesh = LoopbackMesh::new(3);
        let recs: Vec<Arc<Recorder>> = (0..3).map(|_| Arc::new(Recorder::default())).collect();
        for (r, rec) in recs.iter().enumerate() {
            mesh.endpoint(r).start(rec.clone());
        }
        mesh.kill(2);
        assert_eq!(*recs[0].downs.lock().unwrap(), vec![(2, false)]);
        assert_eq!(*recs[1].downs.lock().unwrap(), vec![(2, false)]);
        assert!(matches!(
            mesh.endpoint(0).send(2, &sig(0, 0)),
            Err(NetError::PeerDown { peer: 2 })
        ));
        mesh.endpoint(1).shutdown();
        assert_eq!(*recs[0].downs.lock().unwrap(), vec![(2, false), (1, true)]);
    }

    #[test]
    fn seeded_faults_replay_exactly() {
        let plan = FaultPlan {
            seed: 42,
            drop_permille: 200,
            dup_permille: 200,
            delay_permille: 100,
            reorder_permille: 100,
        };
        let run = |plan: FaultPlan| {
            let mesh = LoopbackMesh::with_faults(2, plan);
            let rec = Arc::new(Recorder::default());
            mesh.endpoint(1).start(rec.clone());
            let a = mesh.endpoint(0);
            for e in 0..200u64 {
                a.send(1, &sig(e, 0)).unwrap();
            }
            mesh.flush();
            let delivered: Vec<_> = rec.frames.lock().unwrap().clone();
            (mesh.fault_counts(), delivered)
        };
        let (c1, d1) = run(plan);
        let (c2, d2) = run(plan);
        assert_eq!(c1, c2);
        assert_eq!(d1, d2);
        assert!(c1.drops > 0 && c1.dups > 0 && c1.delays > 0);
        // Conservation: every sent frame was dropped, delivered, or
        // delivered twice.
        assert_eq!(200 + c1.dups - c1.drops, d1.len() as u64);
    }

    #[test]
    fn raw_injection_hits_the_decode_boundary() {
        let mesh = LoopbackMesh::new(2);
        let rec = Arc::new(Recorder::default());
        mesh.endpoint(1).start(rec.clone());
        mesh.inject_raw(0, 1, &[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]);
        assert_eq!(rec.decode_errors.load(Ordering::Relaxed), 1);
        assert!(rec.frames.lock().unwrap().is_empty());
    }
}
