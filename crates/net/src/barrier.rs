//! The message-passing dissemination barrier over a [`Transport`].
//!
//! [`NetBarrier`] implements the [`SplitBarrier`] contract across a mesh
//! of `nodes` endpoints (processes, or threads over the loopback
//! transport), each hosting `locals` local participants. Nothing in the
//! split-phase contract requires shared memory: arrival is a *signal*,
//! release is a *wait*, and the fuzzy region between them is exactly the
//! slack that hides a network round-trip instead of a cache miss.
//!
//! # Protocol
//!
//! Per episode `e`, an endpoint first aggregates its `locals` local
//! arrivals (a shared-memory counter), then runs `⌈log₂ nodes⌉`
//! dissemination rounds: in round `r` it sends `Signal { e, r }` to rank
//! `(rank + 2^r) mod nodes` and waits for the mirror-image signal from
//! `(rank − 2^r) mod nodes`. All protocol state is **monotone** — per-round
//! `seen`/`sent` words hold `episode + 1` and only advance via `fetch_max`
//! — so duplicated, reordered, and re-transmitted frames are harmless by
//! construction, and any thread (a waiter, an `is_complete` probe, a
//! transport reader delivering a frame) can *drive* the protocol forward
//! idempotently. That drive-from-anywhere property is what lets the
//! [`fuzzy_barrier::AsyncBarrier`] frontend run unmodified on top: its
//! polls call [`SplitBarrier::is_complete`], which pumps outbound rounds.
//!
//! # Failure model
//!
//! * **Lost frames** are recovered receiver-side: a waiter whose round
//!   stalls past [`NetConfig::round_timeout`] re-sends its own claimed
//!   rounds and `Nack`s the round's source, which re-transmits.
//! * **Peer death** — a non-graceful `link_down`, a send failure, or
//!   [`NetConfig::resend_limit`] exhausted round recoveries — poisons the
//!   local endpoint and broadcasts a `Poison` frame, so every survivor's
//!   wait returns [`BarrierError::Poisoned`] instead of wedging.
//! * **Deadlines**: `wait_deadline` reuses the overshoot-clamped deadline
//!   arithmetic of `fuzzy_barrier::spin` (the outer deadline and the
//!   per-round receive budget are combined with `nearest_deadline`), and
//!   expiry surfaces as [`BarrierError::Timeout`] exactly like the
//!   in-memory backends.

use crate::error::NetError;
use crate::transport::{FrameSink, Transport};
use crate::wire::{DecodeError, Message};
use fuzzy_barrier::spin::{nearest_deadline, SpinReport};
use fuzzy_barrier::stats::BarrierStats;
use fuzzy_barrier::sync::Atomic;
use fuzzy_barrier::{
    ArrivalToken, BarrierError, Deadline, NetSnapshot, NetStats, OnTimeout, RealSync, SplitBarrier,
    StallPolicy, StatsSnapshot, SyncOps, TelemetrySnapshot, WaitOutcome, WaitPolicy,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Construction-time configuration for a [`NetBarrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Local participants hosted by this endpoint (dense ids `0..locals`).
    pub locals: usize,
    /// Stall policy for local waits.
    pub policy: StallPolicy,
    /// Receive budget per dissemination round before the recovery path
    /// (retransmit own rounds, nack the stalled source) runs. `None`
    /// disables recovery: waits block until completion, poison, or their
    /// own deadline.
    pub round_timeout: Option<Duration>,
    /// Round recoveries tolerated before the stalled round's source is
    /// declared dead and the barrier poisons.
    pub resend_limit: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            locals: 1,
            policy: StallPolicy::yielding(),
            round_timeout: Some(Duration::from_millis(200)),
            resend_limit: 25,
        }
    }
}

impl NetConfig {
    /// The default configuration: one local participant.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of local participants.
    #[must_use]
    pub fn locals(mut self, locals: usize) -> Self {
        self.locals = locals;
        self
    }

    /// Sets the local stall policy.
    #[must_use]
    pub fn policy(mut self, policy: StallPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets (or with `None`, disables) the per-round receive budget.
    #[must_use]
    pub fn round_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Sets the recovery budget before a stalled source is declared dead.
    #[must_use]
    pub fn resend_limit(mut self, limit: u32) -> Self {
        self.resend_limit = limit;
        self
    }
}

/// Sentinel in the dead-peer word: no peer recorded (stored value is
/// `peer + 1`).
const NO_DEAD_PEER: usize = 0;

/// A [`SplitBarrier`] whose episodes are completed by message passing
/// across a [`Transport`] mesh. See the module docs for the protocol and
/// failure model.
#[derive(Debug)]
pub struct NetBarrier<S: SyncOps = RealSync> {
    transport: Arc<dyn Transport>,
    rank: usize,
    nodes: usize,
    locals: usize,
    rounds: u32,
    policy: StallPolicy,
    round_timeout: Option<Duration>,
    resend_limit: u32,
    /// Per local participant: episodes arrived (the next token's episode).
    member_episode: Vec<S::AtomicU64>,
    /// Total local arrivals ever; the endpoint has entered episode `e`
    /// once this reaches `locals * (e + 1)`. Monotone, so it needs no
    /// per-episode reset.
    local_count: S::AtomicU64,
    /// Per round: `episode + 1` of the highest inbound signal (fetch_max).
    seen: Vec<S::AtomicU64>,
    /// Per round: `episode + 1` up to which our signal is claimed sent.
    sent: Vec<S::AtomicU64>,
    /// Episodes completed at this endpoint.
    completed: S::AtomicU64,
    /// Nonzero once poisoned; doubles as the broadcast-once guard.
    poisoned: S::AtomicU32,
    /// `peer + 1` of a peer declared dead ([`NO_DEAD_PEER`] = none).
    dead_peer: S::AtomicUsize,
    stats: BarrierStats,
    net: NetStats,
}

impl NetBarrier<RealSync> {
    /// Builds the barrier over `transport` and starts frame delivery.
    ///
    /// # Panics
    ///
    /// Panics if `config.locals == 0`.
    #[must_use]
    pub fn start(transport: Arc<dyn Transport>, config: NetConfig) -> Arc<Self> {
        Self::start_in(transport, config)
    }
}

impl<S: SyncOps> NetBarrier<S> {
    /// [`NetBarrier::start`] over an explicit [`SyncOps`] domain (the
    /// `fuzzy-check` model checker substitutes its instrumented domain
    /// here).
    ///
    /// # Panics
    ///
    /// Panics if `config.locals == 0`.
    #[must_use]
    pub fn start_in(transport: Arc<dyn Transport>, config: NetConfig) -> Arc<Self> {
        assert!(config.locals > 0, "an endpoint needs at least one local");
        let rank = transport.rank();
        let nodes = transport.nodes();
        let rounds = if nodes <= 1 {
            0
        } else {
            usize::BITS - (nodes - 1).leading_zeros()
        };
        let barrier = Arc::new(NetBarrier {
            transport,
            rank,
            nodes,
            locals: config.locals,
            rounds,
            policy: config.policy,
            round_timeout: config.round_timeout,
            resend_limit: config.resend_limit,
            member_episode: (0..config.locals).map(|_| S::AtomicU64::new(0)).collect(),
            local_count: S::AtomicU64::new(0),
            seen: (0..rounds).map(|_| S::AtomicU64::new(0)).collect(),
            sent: (0..rounds).map(|_| S::AtomicU64::new(0)).collect(),
            completed: S::AtomicU64::new(0),
            poisoned: S::AtomicU32::new(0),
            dead_peer: S::AtomicUsize::new(NO_DEAD_PEER),
            stats: BarrierStats::with_participants(config.locals),
            net: NetStats::new(nodes),
        });
        let sink: Arc<dyn FrameSink> = Arc::clone(&barrier) as Arc<dyn FrameSink>;
        barrier.transport.start(sink);
        barrier
    }

    /// This endpoint's mesh rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of mesh endpoints.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Transport telemetry: per-peer frame counts, retries, decode errors.
    #[must_use]
    pub fn net_stats(&self) -> NetSnapshot {
        self.net.snapshot()
    }

    /// The peer this endpoint declared dead, if any.
    #[must_use]
    pub fn dead_peer(&self) -> Option<usize> {
        let v = self.dead_peer.load(Ordering::Acquire);
        (v != NO_DEAD_PEER).then(|| v - 1)
    }

    /// Says goodbye and stops frame delivery. After this the barrier can
    /// complete no further episodes.
    pub fn shutdown(&self) {
        self.transport.shutdown();
    }

    fn out_partner(&self, round: u32) -> usize {
        (self.rank + (1usize << round)) % self.nodes
    }

    fn in_partner(&self, round: u32) -> usize {
        let step = (1usize << round) % self.nodes;
        (self.rank + self.nodes - step) % self.nodes
    }

    fn locally_entered(&self, goal: u64) -> bool {
        self.local_count.load(Ordering::Acquire) >= self.locals as u64 * goal
    }

    fn is_poisoned_now(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Non-blocking protocol pump: sends every round that is due for the
    /// lowest incomplete episode and advances completion. Idempotent and
    /// callable from any thread — waiters, probes, and transport readers
    /// all drive.
    fn drive(&self) {
        loop {
            let goal = self.completed.load(Ordering::Acquire) + 1;
            if !self.locally_entered(goal) {
                return;
            }
            let mut due = 0;
            while due < self.rounds {
                if due > 0 && self.seen[due as usize - 1].load(Ordering::Acquire) < goal {
                    break;
                }
                self.send_round(goal, due);
                due += 1;
            }
            // Release needs every round's inbound signal — the transitive
            // all-arrived proof runs through this endpoint's own waits,
            // so the final round's signal alone is not sufficient.
            let released = due == self.rounds
                && (self.rounds == 0
                    || self.seen[self.rounds as usize - 1].load(Ordering::Acquire) >= goal);
            if !released {
                return;
            }
            if self.completed.fetch_max(goal, Ordering::AcqRel) < goal {
                self.stats.record_episode();
                // The next episode's arrivals may already be in; keep
                // pumping until nothing more is due.
                continue;
            }
            return;
        }
    }

    /// Sends round `round` of the episode with goal word `goal` exactly
    /// once (the `sent` fetch_max is the claim).
    fn send_round(&self, goal: u64, round: u32) {
        // Cheap pre-check before the RMW claim: `drive` re-walks every due
        // round on each pump, and polling paths (`is_complete` loops)
        // would otherwise hammer a no-op `fetch_max` per probe.
        if self.sent[round as usize].load(Ordering::Acquire) >= goal {
            return;
        }
        if self.sent[round as usize].fetch_max(goal, Ordering::AcqRel) >= goal {
            return;
        }
        let to = self.out_partner(round);
        self.transmit(
            to,
            Message::Signal {
                episode: goal - 1,
                round,
            },
        );
    }

    fn transmit(&self, to: usize, msg: Message) {
        match self.transport.send(to, &msg) {
            Ok(()) => self.net.record_send(to),
            Err(err) => self.on_send_failure(to, &err),
        }
    }

    fn on_send_failure(&self, to: usize, err: &NetError) {
        let peer = err.peer().unwrap_or(to);
        self.mark_peer_dead(peer);
    }

    /// Declares `peer` dead: survivors poison and release instead of
    /// wedging on signals that will never come.
    fn mark_peer_dead(&self, peer: usize) {
        self.dead_peer.fetch_max(peer + 1, Ordering::AcqRel);
        self.poison_and_broadcast();
    }

    /// Poisons locally and (on the first transition only) tells every
    /// peer, so one endpoint's fault releases the whole mesh.
    fn poison_and_broadcast(&self) {
        if self.poisoned.fetch_max(1, Ordering::AcqRel) != 0 {
            return;
        }
        self.stats.record_poisoning();
        self.net.record_poison_frame();
        let episode = self.completed.load(Ordering::Acquire);
        for peer in 0..self.nodes {
            if peer != self.rank {
                // Best effort: an unreachable peer is already released by
                // its own link-down observation.
                if self
                    .transport
                    .send(peer, &Message::Poison { episode })
                    .is_ok()
                {
                    self.net.record_send(peer);
                }
            }
        }
    }

    /// The lowest round still missing its inbound signal for `goal`.
    fn first_unseen_round(&self, goal: u64) -> Option<u32> {
        (0..self.rounds).find(|&r| self.seen[r as usize].load(Ordering::Acquire) < goal)
    }

    /// Round-timeout recovery: re-send every claimed round of the stalled
    /// episode (our signal may have been dropped) and nack the source of
    /// the first missing inbound round (its signal may have been).
    fn retransmit(&self, goal: u64) {
        let episode = goal - 1;
        for round in 0..self.rounds {
            if self.sent[round as usize].load(Ordering::Acquire) < goal {
                break;
            }
            let to = self.out_partner(round);
            if self
                .transport
                .send(to, &Message::Signal { episode, round })
                .is_ok()
            {
                self.net.record_retry(to);
            } else {
                self.mark_peer_dead(to);
                return;
            }
        }
        if let Some(round) = self.first_unseen_round(goal) {
            let source = self.in_partner(round);
            if self
                .transport
                .send(source, &Message::Nack { episode, round })
                .is_ok()
            {
                self.net.record_nack();
                self.net.record_send(source);
            } else {
                self.mark_peer_dead(source);
            }
        }
    }

    fn wait_core(
        &self,
        token: &ArrivalToken,
        deadline: Deadline,
        policy: StallPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let episode = token.episode();
        let goal = episode + 1;
        let outer = deadline.instant();
        let mut total = SpinReport::default();
        let mut recoveries = 0u32;
        loop {
            self.drive();
            if self.completed.load(Ordering::Acquire) >= goal {
                let outcome = WaitOutcome::from_report(episode, total);
                self.stats.record_wait(token.participant(), &outcome);
                return Ok(outcome);
            }
            if self.is_poisoned_now() {
                return Err(BarrierError::Poisoned { episode });
            }
            let round_budget = self.round_timeout.map(|t| Instant::now() + t);
            let slice = nearest_deadline(outer, round_budget);
            let report = S::wait_until_budget(policy, slice, || {
                self.completed.load(Ordering::Acquire) >= goal || self.is_poisoned_now()
            });
            total.probes += report.probes;
            total.waited += report.waited;
            total.descheduled |= report.descheduled;
            if !report.timed_out {
                continue; // the predicate held; resolve at the top
            }
            if outer.is_some_and(|d| Instant::now() >= d) {
                total.timed_out = true;
                self.stats.record_timeout(token.participant(), &total);
                return Err(BarrierError::Timeout { episode });
            }
            // A round budget expired. Recovery only applies when we are
            // stalled on the *network*; a slow local barrier region is
            // not a fault.
            if !self.locally_entered(goal) {
                continue;
            }
            recoveries += 1;
            if recoveries > self.resend_limit {
                match self.first_unseen_round(goal) {
                    Some(round) => self.mark_peer_dead(self.in_partner(round)),
                    None => self.poison_and_broadcast(),
                }
                continue; // resolves as Poisoned (or completion) above
            }
            self.retransmit(goal);
        }
    }
}

impl<S: SyncOps> SplitBarrier for NetBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.locals,
            "participant id {id} out of range for {} locals",
            self.locals
        );
        let episode = self.member_episode[id].fetch_add(1, Ordering::AcqRel);
        self.stats.record_arrival(id);
        self.local_count.fetch_add(1, Ordering::AcqRel);
        self.drive();
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.drive();
        self.completed.load(Ordering::Acquire) > token.episode()
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        match self.wait_core(&token, Deadline::never(), self.policy) {
            Ok(outcome) => outcome,
            Err(e) => panic!("NetBarrier::wait failed: {e} (use wait_deadline to recover)"),
        }
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.wait_core(&token, deadline, self.policy)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let stall = policy.backoff.unwrap_or(self.policy);
        let result = self.wait_core(&token, policy.arm(), stall);
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison_and_broadcast();
        }
        result
    }

    fn poison(&self) {
        self.poison_and_broadcast();
    }

    fn clear_poison(&self) {
        self.poisoned.store(0, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.is_poisoned_now()
    }

    fn participants(&self) -> usize {
        self.locals
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

impl<S: SyncOps> FrameSink for NetBarrier<S> {
    fn deliver(&self, from: usize, msg: Message) {
        self.net.record_recv(from);
        match msg {
            Message::Signal { episode, round } => {
                if (round as usize) < self.seen.len() {
                    self.seen[round as usize].fetch_max(episode + 1, Ordering::AcqRel);
                    self.drive();
                }
                // An out-of-range round is a peer bug, not ours: ignore.
            }
            Message::Nack { episode, round } => {
                // The sender is missing our `round` signal; re-send it if
                // we have in fact claimed it.
                if (round as usize) < self.sent.len()
                    && self.sent[round as usize].load(Ordering::Acquire) > episode
                    && self.out_partner(round) == from
                    && self
                        .transport
                        .send(from, &Message::Signal { episode, round })
                        .is_ok()
                {
                    self.net.record_retry(from);
                }
            }
            Message::Poison { .. } => {
                self.net.record_poison_frame();
                // Local only: the origin already told everyone.
                if self.poisoned.fetch_max(1, Ordering::AcqRel) == 0 {
                    self.stats.record_poisoning();
                }
            }
            Message::Hello { .. } | Message::Bye => {}
        }
    }

    fn decode_failure(&self, _from: usize, _err: DecodeError) {
        self.net.record_decode_error();
    }

    fn link_down(&self, peer: usize, graceful: bool) {
        if !graceful {
            self.mark_peer_dead(peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackMesh;

    fn mesh_barriers(nodes: usize, config: NetConfig) -> (LoopbackMesh, Vec<Arc<NetBarrier>>) {
        let mesh = LoopbackMesh::new(nodes);
        let barriers = mesh
            .endpoints()
            .into_iter()
            .map(|t| NetBarrier::start(Arc::new(t), config))
            .collect();
        (mesh, barriers)
    }

    #[test]
    fn single_node_is_a_local_barrier() {
        let (_mesh, bs) = mesh_barriers(1, NetConfig::new());
        let b = &bs[0];
        for e in 0..5 {
            let t = b.arrive(0);
            assert_eq!(t.episode(), e);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
        assert_eq!(b.stats().episodes, 5);
    }

    #[test]
    fn two_nodes_complete_episodes_in_lockstep() {
        let (_mesh, bs) = mesh_barriers(2, NetConfig::new());
        std::thread::scope(|s| {
            for b in &bs {
                let b = Arc::clone(b);
                s.spawn(move || {
                    for e in 0..100u64 {
                        let t = b.arrive(0);
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        for b in &bs {
            assert_eq!(b.stats().episodes, 100);
        }
    }

    #[test]
    fn skew_is_absorbed_by_the_fuzzy_region() {
        // Rank 0 races ahead through its arrivals; rank 1's region is
        // slow. Episodes must still agree and pipelining must not let
        // rank 0 run more than one episode ahead (it can't: it waits).
        let (_mesh, bs) = mesh_barriers(2, NetConfig::new());
        std::thread::scope(|s| {
            let fast = Arc::clone(&bs[0]);
            let slow = Arc::clone(&bs[1]);
            s.spawn(move || {
                for e in 0..20u64 {
                    let t = fast.arrive(0);
                    assert_eq!(fast.wait(t).episode, e);
                }
            });
            s.spawn(move || {
                for e in 0..20u64 {
                    let t = slow.arrive(0);
                    std::thread::sleep(Duration::from_micros(200));
                    assert_eq!(slow.wait(t).episode, e);
                }
            });
        });
    }

    #[test]
    fn five_nodes_multi_round_dissemination() {
        let (_mesh, bs) = mesh_barriers(5, NetConfig::new());
        assert_eq!(bs[0].rounds, 3);
        std::thread::scope(|s| {
            for b in &bs {
                let b = Arc::clone(b);
                s.spawn(move || {
                    for e in 0..50u64 {
                        let t = b.arrive(0);
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        let snap = bs[0].net_stats();
        assert!(snap.frames_sent >= 150, "3 rounds x 50 episodes");
        assert_eq!(snap.decode_errors, 0);
    }

    #[test]
    fn local_aggregation_spans_multiple_participants() {
        // Node 0 hosts three local participants, node 1 hosts one; an
        // episode needs all four.
        let mesh = LoopbackMesh::new(2);
        let many = NetBarrier::start(Arc::new(mesh.endpoint(0)), NetConfig::new().locals(3));
        let one = NetBarrier::start(Arc::new(mesh.endpoint(1)), NetConfig::new());
        std::thread::scope(|s| {
            {
                let one = Arc::clone(&one);
                s.spawn(move || {
                    for _ in 0..10u64 {
                        let t = one.arrive(0);
                        one.wait(t);
                    }
                });
            }
            for id in 0..3 {
                let many = Arc::clone(&many);
                s.spawn(move || {
                    for e in 0..10u64 {
                        let t = many.arrive(id);
                        assert_eq!(many.wait(t).episode, e);
                    }
                });
            }
        });
        assert_eq!(many.stats().episodes, 10);
        assert_eq!(many.stats().arrivals, 30);
    }

    #[test]
    fn wait_deadline_times_out_without_peers() {
        let (_mesh, bs) = mesh_barriers(2, NetConfig::new());
        let t = bs[0].arrive(0);
        let err = bs[0]
            .wait_deadline(t, Deadline::after(Duration::from_millis(30)))
            .unwrap_err();
        assert_eq!(err, BarrierError::Timeout { episode: 0 });
        assert_eq!(bs[0].stats().timeouts, 1);
    }

    #[test]
    fn poison_crosses_the_wire() {
        let (_mesh, bs) = mesh_barriers(2, NetConfig::new());
        let t = bs[0].arrive(0);
        bs[1].poison();
        let err = bs[0]
            .wait_deadline(t, Deadline::after(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, BarrierError::Poisoned { episode: 0 });
        assert!(bs[0].is_poisoned());
        assert!(bs[0].net_stats().poison_frames >= 1);
    }

    #[test]
    fn on_timeout_poison_releases_the_peer() {
        let (_mesh, bs) = mesh_barriers(3, NetConfig::new());
        // Ranks 0 and 1 arrive; rank 2 never does. Rank 0 times out with
        // OnTimeout::Poison, which must release rank 1 as Poisoned.
        let t0 = bs[0].arrive(0);
        let t1 = bs[1].arrive(0);
        let policy = WaitPolicy::new()
            .deadline(Duration::from_millis(30))
            .on_timeout(OnTimeout::Poison);
        assert_eq!(
            bs[0].wait_with(t0, &policy),
            Err(BarrierError::Timeout { episode: 0 })
        );
        let err = bs[1]
            .wait_deadline(t1, Deadline::after(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, BarrierError::Poisoned { episode: 0 });
    }

    #[test]
    fn dead_peer_poisons_survivors_not_wedges() {
        let (mesh, bs) = mesh_barriers(3, NetConfig::new());
        let t0 = bs[0].arrive(0);
        mesh.kill(2);
        let err = bs[0]
            .wait_deadline(t0, Deadline::after(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, BarrierError::Poisoned { episode: 0 });
        assert_eq!(bs[0].dead_peer(), Some(2));
    }

    #[test]
    fn seeded_frame_faults_are_survived_by_recovery() {
        use crate::loopback::FaultPlan;
        let plan = FaultPlan {
            seed: 7,
            drop_permille: 60,
            dup_permille: 60,
            delay_permille: 60,
            reorder_permille: 60,
        };
        let mesh = LoopbackMesh::with_faults(4, plan);
        let config = NetConfig::new()
            .round_timeout(Some(Duration::from_millis(20)))
            .resend_limit(500);
        let bs: Vec<Arc<NetBarrier>> = mesh
            .endpoints()
            .into_iter()
            .map(|t| NetBarrier::start(Arc::new(t), config))
            .collect();
        std::thread::scope(|s| {
            for b in &bs {
                let b = Arc::clone(b);
                s.spawn(move || {
                    for e in 0..40u64 {
                        let t = b.arrive(0);
                        let outcome = b
                            .wait_deadline(t, Deadline::after(Duration::from_secs(20)))
                            .expect("faulty links must be recovered, not fatal");
                        assert_eq!(outcome.episode, e);
                    }
                });
            }
        });
        let counts = mesh.fault_counts();
        assert!(counts.drops > 0, "the plan must actually have dropped");
        let recovered: u64 = bs.iter().map(|b| b.net_stats().retries).sum();
        assert!(recovered > 0, "drops must have forced retransmissions");
    }

    #[test]
    fn async_frontend_runs_unmodified_over_the_mesh() {
        use fuzzy_barrier::AsyncBarrier;
        let (_mesh, bs) = mesh_barriers(2, NetConfig::new());
        let asy = Arc::new(AsyncBarrier::new(Arc::clone(&bs[0])));
        std::thread::scope(|s| {
            let peer = Arc::clone(&bs[1]);
            s.spawn(move || {
                for _ in 0..10u64 {
                    let t = peer.arrive(0);
                    peer.wait(t);
                }
            });
            s.spawn(move || {
                for e in 0..10u64 {
                    let future = asy.arrive_async(0);
                    let outcome = futures_block_on(future).expect("episode must complete");
                    assert_eq!(outcome.episode, e);
                }
            });
        });
    }

    /// Minimal single-future block_on: polls with a thread-parking waker.
    fn futures_block_on<F: std::future::Future>(future: F) -> F::Output {
        use std::pin::pin;
        use std::sync::mpsc;
        use std::task::{Context, Poll, Wake, Waker};
        struct Notify(mpsc::Sender<()>);
        impl Wake for Notify {
            fn wake(self: Arc<Self>) {
                let _ = self.0.send(());
            }
        }
        let (tx, rx) = mpsc::channel();
        let waker = Waker::from(Arc::new(Notify(tx)));
        let mut cx = Context::from_waker(&waker);
        let mut future = pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    // Re-poll on wake or after a short nap: the net
                    // barrier is cooperative, so polls also drive it.
                    let _ = rx.recv_timeout(Duration::from_millis(5));
                }
            }
        }
    }
}
