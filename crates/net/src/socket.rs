//! Socket transports: Unix-domain sockets and TCP over `std::net`.
//!
//! Both flavors share one implementation over a small stream enum; the
//! only differences are addressing (filesystem paths vs socket addresses)
//! and `TCP_NODELAY` (signals are tiny and latency-critical, so Nagle is
//! disabled).
//!
//! # Mesh formation
//!
//! Every rank binds its listener **first**, then connects to all lower
//! ranks (with capped exponential [`Backoff`], because a peer process may
//! not have bound yet), then accepts the `nodes − 1 − rank` connections
//! from higher ranks. Connect-side dependencies point only at listeners,
//! which exist before any rank blocks, and accepted connections queue in
//! the kernel backlog — so formation cannot deadlock regardless of
//! process start order.
//!
//! Each connection starts with a `Hello { rank, nodes }` frame. A
//! connection whose hello is garbage, inconsistent, or duplicated is
//! dropped and accepting continues: a stranger spraying bytes at a
//! listener can waste one backlog slot, never wedge or corrupt the mesh.
//!
//! # Delivery
//!
//! [`Transport::start`] spawns one reader thread per link. Readers block
//! in short (`READ_SLICE`) timeout slices so they can observe shutdown,
//! read exactly one validated header and then exactly the declared
//! payload (a corrupt length can never force an unbounded read), and push
//! decoded messages into the [`FrameSink`]. A clean `Bye` reports
//! `link_down(peer, graceful = true)`; EOF or an I/O/decode error without
//! one reports a non-graceful link-down, which the barrier layer treats
//! as a peer death.

use crate::error::NetError;
use crate::transport::{Backoff, FrameSink, Transport};
use crate::wire::{self, Message, HEADER_LEN};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a reader blocks in one `read` before re-checking shutdown.
const READ_SLICE: Duration = Duration::from_millis(50);
/// How long mesh formation waits for peers to connect and say hello.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(20);
/// How many malformed connections formation tolerates before giving up.
const MAX_BAD_HANDSHAKES: usize = 64;

/// The socket file for `rank` inside a mesh directory.
#[must_use]
pub fn unix_socket_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("fuzzy-net-{rank}.sock"))
}

#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => {
                let s = l.accept()?.0;
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
        })
    }
}

struct Link {
    writer: Mutex<Stream>,
    /// The read half, taken by `start` when the reader thread spawns.
    reader: Mutex<Option<Stream>>,
}

struct Inner {
    rank: usize,
    nodes: usize,
    links: Vec<Option<Link>>,
    sink: Mutex<Option<Weak<dyn FrameSink>>>,
    /// Shared with reader threads (they must not keep `Inner` — and with
    /// it the writer sockets — alive).
    shutdown: Arc<AtomicBool>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Our own listener's socket file, removed at shutdown (UDS only).
    own_path: Option<PathBuf>,
}

/// A socket-backed mesh endpoint (Unix-domain or TCP).
pub struct SocketTransport {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("rank", &self.inner.rank)
            .field("nodes", &self.inner.nodes)
            .finish()
    }
}

impl SocketTransport {
    /// Forms a Unix-domain-socket mesh endpoint. Every process of the mesh
    /// must call this with the same `dir` and `nodes`; the call blocks
    /// until the full mesh is connected (bounded by the backoff budget and
    /// `HANDSHAKE_TIMEOUT`).
    pub fn unix(rank: usize, nodes: usize, dir: &Path) -> Result<Self, NetError> {
        Self::unix_with(rank, nodes, dir, Backoff::default())
    }

    /// [`SocketTransport::unix`] with an explicit connect backoff.
    pub fn unix_with(
        rank: usize,
        nodes: usize,
        dir: &Path,
        backoff: Backoff,
    ) -> Result<Self, NetError> {
        check_rank(rank, nodes)?;
        let own = unix_socket_path(dir, rank);
        // A stale file from a crashed previous run would make bind fail.
        let _ = std::fs::remove_file(&own);
        let listener = UnixListener::bind(&own).map_err(setup_err)?;
        let connect = |peer: usize| -> io::Result<Stream> {
            Ok(Stream::Unix(UnixStream::connect(unix_socket_path(
                dir, peer,
            ))?))
        };
        Self::form(
            rank,
            nodes,
            Listener::Unix(listener),
            Some(own),
            connect,
            backoff,
        )
    }

    /// Forms a TCP mesh endpoint. `addrs[i]` is the listen address of rank
    /// `i`; the mesh size is `addrs.len()`.
    pub fn tcp(rank: usize, addrs: &[SocketAddr]) -> Result<Self, NetError> {
        Self::tcp_with(rank, addrs, Backoff::default())
    }

    /// [`SocketTransport::tcp`] with an explicit connect backoff.
    pub fn tcp_with(rank: usize, addrs: &[SocketAddr], backoff: Backoff) -> Result<Self, NetError> {
        let nodes = addrs.len();
        check_rank(rank, nodes)?;
        let listener = TcpListener::bind(addrs[rank]).map_err(setup_err)?;
        let addrs = addrs.to_vec();
        let connect = move |peer: usize| -> io::Result<Stream> {
            let s = TcpStream::connect(addrs[peer])?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        };
        Self::form(rank, nodes, Listener::Tcp(listener), None, connect, backoff)
    }

    fn form(
        rank: usize,
        nodes: usize,
        listener: Listener,
        own_path: Option<PathBuf>,
        connect: impl Fn(usize) -> io::Result<Stream>,
        backoff: Backoff,
    ) -> Result<Self, NetError> {
        let mut links: Vec<Option<Link>> = (0..nodes).map(|_| None).collect();
        let hello = Message::Hello {
            rank: rank as u32,
            nodes: nodes as u32,
        };
        // Connect to every lower rank; their listeners may not exist yet.
        for (peer, slot) in links.iter_mut().enumerate().take(rank) {
            let mut stream = backoff.retry(|| connect(peer)).map_err(|e| NetError::Io {
                peer: Some(peer),
                source: e,
            })?;
            stream
                .write_all(&hello.encode())
                .map_err(|e| NetError::Io {
                    peer: Some(peer),
                    source: e,
                })?;
            *slot = Some(link_from(stream).map_err(setup_err)?);
        }
        // Accept from every higher rank; malformed connections are dropped
        // and accepting continues.
        listener.set_nonblocking(true).map_err(setup_err)?;
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let mut expected: usize = nodes - 1 - rank;
        let mut bad = 0usize;
        while expected > 0 {
            let mut stream = match listener.accept() {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Handshake {
                            detail: format!("timed out waiting for {expected} peer(s)"),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => return Err(setup_err(e)),
            };
            match read_hello(&mut stream) {
                Ok((peer_rank, peer_nodes))
                    if peer_nodes == nodes
                        && peer_rank > rank
                        && peer_rank < nodes
                        && links[peer_rank].is_none() =>
                {
                    links[peer_rank] = Some(link_from(stream).map_err(setup_err)?);
                    expected -= 1;
                }
                _ => {
                    // Garbage, a misconfigured peer, or a duplicate: drop
                    // the connection, keep the mesh intact.
                    stream.shutdown_both();
                    bad += 1;
                    if bad > MAX_BAD_HANDSHAKES {
                        return Err(NetError::Handshake {
                            detail: format!("{bad} malformed connections"),
                        });
                    }
                }
            }
        }
        Ok(SocketTransport {
            inner: Arc::new(Inner {
                rank,
                nodes,
                links,
                sink: Mutex::new(None),
                shutdown: Arc::new(AtomicBool::new(false)),
                readers: Mutex::new(Vec::new()),
                own_path,
            }),
        })
    }
}

fn check_rank(rank: usize, nodes: usize) -> Result<(), NetError> {
    if nodes == 0 || rank >= nodes {
        return Err(NetError::Handshake {
            detail: format!("rank {rank} of {nodes}"),
        });
    }
    Ok(())
}

fn setup_err(source: io::Error) -> NetError {
    NetError::Io { peer: None, source }
}

/// Splits a handshaken stream into a link (cloned writer + reader halves),
/// arming the reader's shutdown-poll timeout.
fn link_from(stream: Stream) -> io::Result<Link> {
    stream.set_read_timeout(Some(READ_SLICE))?;
    let writer = stream.try_clone()?;
    Ok(Link {
        writer: Mutex::new(writer),
        reader: Mutex::new(Some(stream)),
    })
}

/// Reads and validates the handshake frame, under a read timeout so a
/// silent connection cannot stall mesh formation for long.
fn read_hello(stream: &mut Stream) -> Result<(usize, usize), NetError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(setup_err)?;
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).map_err(setup_err)?;
    let (kind, len) = wire::decode_header(&header)?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(setup_err)?;
    match wire::decode_payload(kind, &payload)? {
        Message::Hello { rank, nodes } => Ok((rank as usize, nodes as usize)),
        other => Err(NetError::Handshake {
            detail: format!("expected hello, got {other:?}"),
        }),
    }
}

enum ReadStatus {
    Full,
    Eof,
    Shutdown,
}

/// Fills `buf` across timeout slices, polling `stop` between reads so a
/// blocked reader observes shutdown within one `READ_SLICE`.
fn read_full(stream: &mut Stream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<ReadStatus> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Acquire) {
            return Ok(ReadStatus::Shutdown);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(ReadStatus::Eof),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadStatus::Full)
}

/// One link's reader loop: frame boundary → decode → sink, until EOF,
/// `Bye`, an error, or shutdown.
fn reader_loop(mut stream: Stream, peer: usize, sink: Weak<dyn FrameSink>, stop: Arc<AtomicBool>) {
    let fail = |graceful: bool| {
        if let Some(s) = sink.upgrade() {
            s.link_down(peer, graceful);
        }
    };
    loop {
        let mut header = [0u8; HEADER_LEN];
        match read_full(&mut stream, &mut header, &stop) {
            Ok(ReadStatus::Full) => {}
            Ok(ReadStatus::Eof) => return fail(false),
            Ok(ReadStatus::Shutdown) => return,
            Err(_) => return fail(false),
        }
        let (kind, len) = match wire::decode_header(&header) {
            Ok(v) => v,
            Err(e) => {
                // Framing is lost; the connection is unrecoverable.
                if let Some(s) = sink.upgrade() {
                    s.decode_failure(peer, e);
                }
                stream.shutdown_both();
                return fail(false);
            }
        };
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, &stop) {
            Ok(ReadStatus::Full) => {}
            Ok(ReadStatus::Eof) => return fail(false),
            Ok(ReadStatus::Shutdown) => return,
            Err(_) => return fail(false),
        }
        match wire::decode_payload(kind, &payload) {
            Ok(Message::Bye) => return fail(true),
            Ok(msg) => match sink.upgrade() {
                Some(s) => s.deliver(peer, msg),
                None => return,
            },
            Err(e) => {
                if let Some(s) = sink.upgrade() {
                    s.decode_failure(peer, e);
                }
                stream.shutdown_both();
                return fail(false);
            }
        }
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.inner.rank
    }

    fn nodes(&self) -> usize {
        self.inner.nodes
    }

    fn send(&self, to: usize, msg: &Message) -> Result<(), NetError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        let link = self
            .inner
            .links
            .get(to)
            .and_then(Option::as_ref)
            .ok_or(NetError::PeerDown { peer: to })?;
        let mut writer = link.writer.lock().expect("writer lock");
        writer
            .write_all(&msg.encode())
            .map_err(|e| NetError::io(to, e))
    }

    fn start(&self, sink: Arc<dyn FrameSink>) {
        let weak = Arc::downgrade(&sink);
        *self.inner.sink.lock().expect("sink lock") = Some(weak.clone());
        let mut readers = self.inner.readers.lock().expect("readers lock");
        for (peer, link) in self.inner.links.iter().enumerate() {
            let Some(link) = link else { continue };
            let Some(stream) = link.reader.lock().expect("reader lock").take() else {
                continue;
            };
            let weak = weak.clone();
            let stop = Arc::clone(&self.inner.shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("fuzzy-net-rx-{}-{peer}", self.inner.rank))
                .spawn(move || reader_loop(stream, peer, weak, stop))
                .expect("spawn reader");
            readers.push(handle);
        }
    }

    fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for link in self.inner.links.iter().flatten() {
            let mut writer = link.writer.lock().expect("writer lock");
            let _ = writer.write_all(&Message::Bye.encode());
            writer.shutdown_both();
        }
        let handles: Vec<_> = self
            .inner
            .readers
            .lock()
            .expect("readers lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.inner.own_path {
            let _ = std::fs::remove_file(path);
        }
        *self.inner.sink.lock().expect("sink lock") = None;
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Last handle out turns off the lights; reader threads hold only
        // the sink weakly and the stop flag, not `Inner`.
        if Arc::strong_count(&self.inner) == 1 {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::DecodeError;
    use std::sync::Mutex as StdMutex;

    #[derive(Default)]
    struct Recorder {
        frames: StdMutex<Vec<(usize, Message)>>,
        downs: StdMutex<Vec<(usize, bool)>>,
        decode_errors: StdMutex<Vec<(usize, DecodeError)>>,
    }

    impl FrameSink for Recorder {
        fn deliver(&self, from: usize, msg: Message) {
            self.frames.lock().unwrap().push((from, msg));
        }
        fn decode_failure(&self, from: usize, err: DecodeError) {
            self.decode_errors.lock().unwrap().push((from, err));
        }
        fn link_down(&self, peer: usize, graceful: bool) {
            self.downs.lock().unwrap().push((peer, graceful));
        }
    }

    fn wait_for<T>(probe: impl Fn() -> Option<T>) -> T {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(v) = probe() {
                return v;
            }
            assert!(Instant::now() < deadline, "probe timed out");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn unix_pair_exchanges_signals_and_says_goodbye() {
        let dir = std::env::temp_dir().join(format!("fuzzy-net-ut-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let b = std::thread::spawn({
            let dir = dir.clone();
            move || SocketTransport::unix(1, 2, &dir).unwrap()
        });
        let a = SocketTransport::unix(0, 2, &dir).unwrap();
        let b = b.join().unwrap();

        let ra = Arc::new(Recorder::default());
        let rb = Arc::new(Recorder::default());
        a.start(ra.clone());
        b.start(rb.clone());

        a.send(
            1,
            &Message::Signal {
                episode: 3,
                round: 0,
            },
        )
        .unwrap();
        b.send(0, &Message::Poison { episode: 3 }).unwrap();

        wait_for(|| (!rb.frames.lock().unwrap().is_empty()).then_some(()));
        wait_for(|| (!ra.frames.lock().unwrap().is_empty()).then_some(()));
        assert_eq!(
            rb.frames.lock().unwrap()[0],
            (
                0,
                Message::Signal {
                    episode: 3,
                    round: 0
                }
            )
        );
        assert_eq!(
            ra.frames.lock().unwrap()[0],
            (1, Message::Poison { episode: 3 })
        );

        b.shutdown();
        // a's reader sees the Bye: graceful link-down, not a peer death.
        let downs = wait_for(|| {
            let d = ra.downs.lock().unwrap();
            (!d.is_empty()).then(|| d.clone())
        });
        assert_eq!(downs, vec![(1, true)]);
        a.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
