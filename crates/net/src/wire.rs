//! The versioned wire format shared by every transport.
//!
//! Frames are length-prefixed and fixed-header:
//!
//! ```text
//! +------+---------+------+-------+-------------+----------------+
//! | 0xFB | version | kind | flags | len u32 LE  | payload (len)  |
//! +------+---------+------+-------+-------------+----------------+
//! ```
//!
//! The magic byte makes a desynchronized stream fail fast instead of
//! misparsing; the version byte lets a future format bump be rejected
//! explicitly ([`DecodeError::BadVersion`]) rather than silently
//! misinterpreted; `len` is bounded by [`MAX_PAYLOAD`] so a corrupt length
//! can never drive an allocation or an unbounded read. Every decode
//! failure is a value of [`DecodeError`] — transports surface it, they
//! never panic on remote bytes.
//!
//! The protocol itself needs only five message kinds: a `Hello` handshake
//! that binds a connection to a mesh rank, the dissemination `Signal`
//! (episode × round — the entire payload of the fuzzy barrier protocol),
//! `Poison` for fault propagation, `Nack` for receiver-driven
//! retransmission, and `Bye` for a graceful goodbye so peer *death* (a
//! closed connection with no `Bye`) is distinguishable from peer
//! *departure*.

use std::error::Error;
use std::fmt;

/// First byte of every frame.
pub const MAGIC: u8 = 0xFB;
/// Current wire-format version.
pub const VERSION: u8 = 0x01;
/// Fixed header size in bytes: magic, version, kind, flags, `len` (u32 LE).
pub const HEADER_LEN: usize = 8;
/// Upper bound on a frame payload. Every protocol payload is ≤ 16 bytes;
/// the slack leaves room for format growth while keeping a corrupt length
/// harmless.
pub const MAX_PAYLOAD: usize = 256;

/// A protocol message, the unit every [`crate::Transport`] sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Handshake: binds this connection to the sender's mesh rank and
    /// asserts the mesh size, so a misconfigured peer is rejected at
    /// connect time instead of corrupting the dissemination pattern.
    Hello {
        /// The sender's mesh rank.
        rank: u32,
        /// The mesh size the sender was configured with.
        nodes: u32,
    },
    /// Dissemination signal: the sender has reached `round` of `episode`.
    Signal {
        /// The barrier episode (0-based).
        episode: u64,
        /// The dissemination round within the episode.
        round: u32,
    },
    /// The sender's endpoint is poisoned; release waiters with an error.
    Poison {
        /// The episode in flight when the poison originated.
        episode: u64,
    },
    /// Receiver-driven retransmission request: the sender is still missing
    /// the `round` signal of `episode` from this connection's peer.
    Nack {
        /// The episode the sender is stalled on.
        episode: u64,
        /// The round whose signal is missing.
        round: u32,
    },
    /// Graceful goodbye: the sender is leaving and will close the
    /// connection; the close must not be treated as a peer death.
    Bye,
}

/// Frame kind bytes (one per [`Message`] variant).
mod kind {
    pub const HELLO: u8 = 1;
    pub const SIGNAL: u8 = 2;
    pub const POISON: u8 = 3;
    pub const NACK: u8 = 4;
    pub const BYE: u8 = 5;
}

impl Message {
    /// The frame kind byte for this message.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => kind::HELLO,
            Message::Signal { .. } => kind::SIGNAL,
            Message::Poison { .. } => kind::POISON,
            Message::Nack { .. } => kind::NACK,
            Message::Bye => kind::BYE,
        }
    }

    /// Encodes the message as one complete frame (header + payload).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16);
        match *self {
            Message::Hello { rank, nodes } => {
                payload.extend_from_slice(&rank.to_le_bytes());
                payload.extend_from_slice(&nodes.to_le_bytes());
            }
            Message::Signal { episode, round } | Message::Nack { episode, round } => {
                payload.extend_from_slice(&episode.to_le_bytes());
                payload.extend_from_slice(&round.to_le_bytes());
            }
            Message::Poison { episode } => {
                payload.extend_from_slice(&episode.to_le_bytes());
            }
            Message::Bye => {}
        }
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.push(MAGIC);
        frame.push(VERSION);
        frame.push(self.kind());
        frame.push(0); // flags, reserved
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .unwrap_or(u32::MAX)
                .to_le_bytes(),
        );
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Why a frame failed to decode. Remote bytes can be arbitrary; every
/// failure mode is a value, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The first byte was not [`MAGIC`] — the stream is desynchronized or
    /// the peer speaks a different protocol.
    BadMagic(u8),
    /// The version byte names a format this build does not understand.
    BadVersion(u8),
    /// The kind byte names no known message.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
    /// The buffer ended before the declared frame did.
    Truncated {
        /// Bytes the frame declared.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload length does not match the message kind's layout.
    BadPayload {
        /// The frame kind.
        kind: u8,
        /// The declared payload length.
        len: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Oversized(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD} byte cap")
            }
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            DecodeError::BadPayload { kind, len } => {
                write!(f, "kind {kind} cannot have a {len} byte payload")
            }
        }
    }
}

impl Error for DecodeError {}

/// Validates a frame header and returns `(kind, payload_len)`.
///
/// Stream transports read exactly [`HEADER_LEN`] bytes, validate them
/// here, then read exactly `payload_len` more — a corrupt header can never
/// cause an unbounded read.
pub fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), DecodeError> {
    if header[0] != MAGIC {
        return Err(DecodeError::BadMagic(header[0]));
    }
    if header[1] != VERSION {
        return Err(DecodeError::BadVersion(header[1]));
    }
    let k = header[2];
    if !(kind::HELLO..=kind::BYE).contains(&k) {
        return Err(DecodeError::UnknownKind(k));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(DecodeError::Oversized(len));
    }
    Ok((k, len))
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes a payload whose header already validated as `kind`.
pub fn decode_payload(kind_byte: u8, payload: &[u8]) -> Result<Message, DecodeError> {
    let bad = || DecodeError::BadPayload {
        kind: kind_byte,
        len: payload.len(),
    };
    match kind_byte {
        kind::HELLO => {
            if payload.len() != 8 {
                return Err(bad());
            }
            Ok(Message::Hello {
                rank: le_u32(&payload[0..4]),
                nodes: le_u32(&payload[4..8]),
            })
        }
        kind::SIGNAL | kind::NACK => {
            if payload.len() != 12 {
                return Err(bad());
            }
            let episode = le_u64(&payload[0..8]);
            let round = le_u32(&payload[8..12]);
            Ok(if kind_byte == kind::SIGNAL {
                Message::Signal { episode, round }
            } else {
                Message::Nack { episode, round }
            })
        }
        kind::POISON => {
            if payload.len() != 8 {
                return Err(bad());
            }
            Ok(Message::Poison {
                episode: le_u64(&payload[0..8]),
            })
        }
        kind::BYE => {
            if !payload.is_empty() {
                return Err(bad());
            }
            Ok(Message::Bye)
        }
        other => Err(DecodeError::UnknownKind(other)),
    }
}

/// Decodes one complete frame from the front of `buf`, returning the
/// message and the number of bytes consumed. Datagram-shaped callers (the
/// loopback transport, tests) use this; stream transports use
/// [`decode_header`] + [`decode_payload`] so they can size the second read.
pub fn decode(buf: &[u8]) -> Result<(Message, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let (k, len) = decode_header(&header)?;
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Err(DecodeError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let msg = decode_payload(k, &buf[HEADER_LEN..total])?;
    Ok((msg, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Message; 5] = [
        Message::Hello { rank: 3, nodes: 8 },
        Message::Signal {
            episode: 71,
            round: 2,
        },
        Message::Poison { episode: 9 },
        Message::Nack {
            episode: 1,
            round: 0,
        },
        Message::Bye,
    ];

    #[test]
    fn every_message_roundtrips() {
        for msg in ALL {
            let bytes = msg.encode();
            let (decoded, used) = decode(&bytes).expect("roundtrip");
            assert_eq!(decoded, msg);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut bytes = Message::Bye.encode();
        let bye_len = bytes.len();
        bytes.extend_from_slice(&Message::Poison { episode: 4 }.encode());
        let (first, used) = decode(&bytes).unwrap();
        assert_eq!(first, Message::Bye);
        assert_eq!(used, bye_len);
        let (second, _) = decode(&bytes[used..]).unwrap();
        assert_eq!(second, Message::Poison { episode: 4 });
    }

    #[test]
    fn header_failures_are_explicit() {
        let good = Message::Bye.encode();
        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert_eq!(decode(&bad_magic), Err(DecodeError::BadMagic(0x00)));

        let mut bad_version = good.clone();
        bad_version[1] = 9;
        assert_eq!(decode(&bad_version), Err(DecodeError::BadVersion(9)));

        let mut bad_kind = good.clone();
        bad_kind[2] = 200;
        assert_eq!(decode(&bad_kind), Err(DecodeError::UnknownKind(200)));

        let mut oversized = good.clone();
        oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&oversized),
            Err(DecodeError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn truncation_reports_the_shortfall() {
        let bytes = Message::Signal {
            episode: 5,
            round: 1,
        }
        .encode();
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(DecodeError::Truncated { needed, got }) => {
                    assert_eq!(got, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn payload_length_mismatch_is_bad_payload() {
        // A Signal header with a Poison-sized (8 byte) payload.
        let mut frame = vec![MAGIC, VERSION, 2, 0];
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            decode(&frame),
            Err(DecodeError::BadPayload { kind: 2, len: 8 })
        );
    }
}
