//! Transport-level errors and their mapping onto the barrier contract.

use crate::wire::DecodeError;
use fuzzy_barrier::BarrierError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors surfaced by a [`crate::Transport`].
///
/// Protocol-level faults (timeout, poison) stay in [`BarrierError`]; this
/// type covers the layer below — sockets, framing, mesh setup. Where a
/// fault is attributable to a peer, [`NetError::peer`] names it, and
/// [`NetError::to_barrier`] maps it onto
/// [`BarrierError::PeerDown`] so transport faults degrade into the same
/// poison-and-release story the in-memory backends use.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// An I/O error on the link to `peer` (or during setup when the peer
    /// is not yet known).
    Io {
        /// The mesh rank of the peer, when attributable.
        peer: Option<usize>,
        /// The underlying error.
        source: io::Error,
    },
    /// A frame from `peer` failed to decode.
    Decode {
        /// The mesh rank of the sender, when attributable.
        peer: Option<usize>,
        /// The decode failure.
        source: DecodeError,
    },
    /// The link to `peer` is down: connect retries were exhausted or the
    /// connection closed without a `Bye`.
    PeerDown {
        /// The mesh rank of the unreachable peer.
        peer: usize,
    },
    /// The transport has been shut down; no further frames can be sent.
    Closed,
    /// A handshake or configuration mismatch: the peer presented a rank or
    /// mesh size inconsistent with this endpoint's configuration.
    Handshake {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl NetError {
    /// Convenience constructor for an I/O error on a known link.
    #[must_use]
    pub fn io(peer: usize, source: io::Error) -> Self {
        NetError::Io {
            peer: Some(peer),
            source,
        }
    }

    /// The peer this error is attributable to, if any.
    #[must_use]
    pub fn peer(&self) -> Option<usize> {
        match self {
            NetError::Io { peer, .. } | NetError::Decode { peer, .. } => *peer,
            NetError::PeerDown { peer } => Some(*peer),
            NetError::Closed | NetError::Handshake { .. } => None,
        }
    }

    /// Maps this transport fault onto the barrier contract:
    /// peer-attributable faults become [`BarrierError::PeerDown`], the
    /// rest report as a poisoned episode (the caller poisons the barrier
    /// when it surfaces one of these mid-episode).
    #[must_use]
    pub fn to_barrier(&self, episode: u64) -> BarrierError {
        match self.peer() {
            Some(peer) => BarrierError::PeerDown { peer },
            None => BarrierError::Poisoned { episode },
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io {
                peer: Some(p),
                source,
            } => write!(f, "i/o error on link to peer {p}: {source}"),
            NetError::Io { peer: None, source } => {
                write!(f, "i/o error during mesh setup: {source}")
            }
            NetError::Decode {
                peer: Some(p),
                source,
            } => write!(f, "bad frame from peer {p}: {source}"),
            NetError::Decode { peer: None, source } => write!(f, "bad frame: {source}"),
            NetError::PeerDown { peer } => write!(f, "peer {peer} is down or unreachable"),
            NetError::Closed => write!(f, "transport is shut down"),
            NetError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<DecodeError> for NetError {
    fn from(source: DecodeError) -> Self {
        NetError::Decode { peer: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_attribution_flows_to_barrier_error() {
        let e = NetError::io(4, io::Error::new(io::ErrorKind::BrokenPipe, "gone"));
        assert_eq!(e.peer(), Some(4));
        assert_eq!(e.to_barrier(7), BarrierError::PeerDown { peer: 4 });
        let c = NetError::Closed;
        assert_eq!(c.peer(), None);
        assert_eq!(c.to_barrier(7), BarrierError::Poisoned { episode: 7 });
    }

    #[test]
    fn display_names_the_layer() {
        let e = NetError::from(DecodeError::BadMagic(0x13));
        assert!(e.to_string().contains("bad frame"));
        assert!(e.source().is_some());
        let h = NetError::Handshake {
            detail: "rank 9 of 4".into(),
        };
        assert!(h.to_string().contains("handshake"));
    }
}
