//! Socket-transport integration: real Unix-domain and TCP meshes running
//! [`NetBarrier`] episodes, including the acceptance scenario — a peer
//! dying mid-episode (connection closed with no `Bye`) poisons every
//! survivor within the deadline instead of wedging them.

use fuzzy_barrier::{BarrierError, Deadline, SplitBarrier};
use fuzzy_net::{unix_socket_path, Message, NetBarrier, NetConfig, SocketTransport, Transport};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fuzzy-net-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Forms an n-node socket mesh concurrently (formation blocks until every
/// pairwise link exists, so all transports must be built in parallel).
fn form<F>(n: usize, build: F) -> Vec<SocketTransport>
where
    F: Fn(usize) -> SocketTransport + Sync,
{
    let mut out: Vec<Option<SocketTransport>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let build = &build;
                s.spawn(move || build(r))
            })
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().unwrap());
        }
    });
    out.into_iter().map(Option::unwrap).collect()
}

fn run_episodes(barriers: &[Arc<NetBarrier>], episodes: u64) {
    std::thread::scope(|s| {
        for b in barriers {
            let b = Arc::clone(b);
            s.spawn(move || {
                for e in 0..episodes {
                    let token = b.arrive(0);
                    let outcome = b
                        .wait_deadline(token, Deadline::after(Duration::from_secs(20)))
                        .expect("socket mesh episode");
                    assert_eq!(outcome.episode, e);
                }
            });
        }
    });
}

#[test]
fn unix_mesh_runs_episodes_across_four_processes_worth_of_endpoints() {
    let dir = temp_dir("uds-mesh");
    let transports = form(4, |r| SocketTransport::unix(r, 4, &dir).unwrap());
    let barriers: Vec<Arc<NetBarrier>> = transports
        .into_iter()
        .map(|t| NetBarrier::start(Arc::new(t) as Arc<dyn Transport>, NetConfig::new()))
        .collect();
    run_episodes(&barriers, 25);
    for b in &barriers {
        assert_eq!(b.stats().episodes, 25);
        assert!(b.net_stats().frames_sent >= 50, "2 rounds x 25 episodes");
        assert_eq!(b.net_stats().decode_errors, 0);
        b.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_mesh_runs_episodes() {
    let probes: Vec<_> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<_> = probes.iter().map(|p| p.local_addr().unwrap()).collect();
    drop(probes);
    let transports = form(3, |r| SocketTransport::tcp(r, &addrs).unwrap());
    let barriers: Vec<Arc<NetBarrier>> = transports
        .into_iter()
        .map(|t| NetBarrier::start(Arc::new(t) as Arc<dyn Transport>, NetConfig::new()))
        .collect();
    run_episodes(&barriers, 25);
    for b in &barriers {
        assert_eq!(b.stats().episodes, 25);
        b.shutdown();
    }
}

#[test]
fn graceful_departure_is_not_a_death() {
    // A two-node mesh completes an episode; one side then shuts down
    // cleanly (sends Bye). The survivor must NOT be poisoned by the close.
    let dir = temp_dir("uds-bye");
    let transports = form(2, |r| SocketTransport::unix(r, 2, &dir).unwrap());
    let mut it = transports.into_iter();
    let b0 = NetBarrier::start(
        Arc::new(it.next().unwrap()) as Arc<dyn Transport>,
        NetConfig::new(),
    );
    let b1 = NetBarrier::start(
        Arc::new(it.next().unwrap()) as Arc<dyn Transport>,
        NetConfig::new(),
    );
    std::thread::scope(|s| {
        let b1 = Arc::clone(&b1);
        s.spawn(move || {
            let t = b1.arrive(0);
            b1.wait_deadline(t, Deadline::after(Duration::from_secs(10)))
                .unwrap();
            b1.shutdown();
        });
        let t = b0.arrive(0);
        b0.wait_deadline(t, Deadline::after(Duration::from_secs(10)))
            .unwrap();
    });
    // Give the Bye time to land, then check the survivor's health.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !b0.is_poisoned(),
        "a Bye close must not poison the survivor"
    );
    assert_eq!(b0.dead_peer(), None);
    b0.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario over real sockets: rank 2 is a raw endpoint we
/// control byte-for-byte. It handshakes, plays episode 0 honestly, then
/// dies mid-episode-1 — closes both connections without a `Bye`. Both
/// survivors must observe `Poisoned` within the deadline, not hang.
#[test]
fn peer_death_mid_episode_poisons_all_survivors_within_deadline() {
    let dir = temp_dir("uds-death");
    // Ranks 0 and 1 are real transports; rank 2 dials in as raw streams.
    let mut fake_links = Vec::new();
    let (t0, t1) = std::thread::scope(|s| {
        let h0 = s.spawn(|| SocketTransport::unix(0, 3, &dir).unwrap());
        let h1 = s.spawn(|| SocketTransport::unix(1, 3, &dir).unwrap());

        // The fake rank 2: connect to both listeners, handshake, then send
        // exactly the episode-0 signals the dissemination pattern expects
        // from rank 2 (round 0 to rank 0, round 1 to rank 1).
        let dial = |to: usize| {
            let path = unix_socket_path(&dir, to);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                match std::os::unix::net::UnixStream::connect(&path) {
                    Ok(s) => return s,
                    Err(_) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => panic!("rank {to} listener never appeared: {e}"),
                }
            }
        };
        let mut to0 = dial(0);
        let mut to1 = dial(1);
        to0.write_all(&Message::Hello { rank: 2, nodes: 3 }.encode())
            .unwrap();
        to1.write_all(&Message::Hello { rank: 2, nodes: 3 }.encode())
            .unwrap();
        to0.write_all(
            &Message::Signal {
                episode: 0,
                round: 0,
            }
            .encode(),
        )
        .unwrap();
        to1.write_all(
            &Message::Signal {
                episode: 0,
                round: 1,
            }
            .encode(),
        )
        .unwrap();
        // Keep the streams alive past this scope: the death must happen
        // strictly AFTER episode 0 completes.
        fake_links.push(to0);
        fake_links.push(to1);
        (h0.join().unwrap(), h1.join().unwrap())
    });

    let survivors = [
        NetBarrier::start(Arc::new(t0) as Arc<dyn Transport>, NetConfig::new()),
        NetBarrier::start(Arc::new(t1) as Arc<dyn Transport>, NetConfig::new()),
    ];

    // Episode 0 completes: the fake's signals are buffered in the sockets.
    std::thread::scope(|s| {
        for b in &survivors {
            let b = Arc::clone(b);
            s.spawn(move || {
                let t = b.arrive(0);
                let outcome = b
                    .wait_deadline(t, Deadline::after(Duration::from_secs(10)))
                    .expect("episode 0 must complete before the death");
                assert_eq!(outcome.episode, 0);
            });
        }
    });

    // Rank 2 dies: both connections close with no Bye on the wire.
    drop(fake_links);

    // Episode 1: every survivor's wait must resolve to an error well
    // before the outer deadline — never hang.
    std::thread::scope(|s| {
        for b in &survivors {
            let b = Arc::clone(b);
            s.spawn(move || {
                let t = b.arrive(0);
                let err = b
                    .wait_deadline(t, Deadline::after(Duration::from_secs(15)))
                    .expect_err("a dead peer must fail the wait");
                assert!(
                    matches!(
                        err,
                        BarrierError::Poisoned { .. } | BarrierError::PeerDown { .. }
                    ),
                    "unexpected error {err:?}"
                );
                assert!(b.is_poisoned(), "survivor must be poisoned, not wedged");
            });
        }
    });
    for b in &survivors {
        b.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
