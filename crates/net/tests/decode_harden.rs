//! Frame-decoder hardening: arbitrary bytes must produce clean
//! [`DecodeError`]s — never a panic, never a hang, never a mis-parse that
//! corrupts a live mesh — on every transport's decode boundary.

use fuzzy_barrier::{Deadline, SplitBarrier};
use fuzzy_net::wire::{self, HEADER_LEN, MAX_PAYLOAD};
use fuzzy_net::{
    DecodeError, LoopbackMesh, Message, NetBarrier, NetConfig, SocketTransport, Transport,
};
use fuzzy_util::SplitMix64;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn valid_frames() -> Vec<Vec<u8>> {
    vec![
        Message::Hello { rank: 1, nodes: 4 }.encode(),
        Message::Signal {
            episode: 12,
            round: 1,
        }
        .encode(),
        Message::Poison { episode: 3 }.encode(),
        Message::Nack {
            episode: 0,
            round: 2,
        }
        .encode(),
        Message::Bye.encode(),
    ]
}

/// Seeded mangling loop over the shared codec: every transport reads
/// frames through `wire::decode`/`decode_header`, so this is the single
/// chokepoint all of them inherit.
#[test]
fn seeded_mangling_never_panics_and_classifies() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC0DE);
    let frames = valid_frames();
    let mut truncated = 0u32;
    let mut rejected = 0u32;
    let mut survived = 0u32;
    for _ in 0..20_000 {
        let mut bytes = frames[rng.below(frames.len())].clone();
        match rng.below(4) {
            // Truncate anywhere, including mid-header.
            0 => bytes.truncate(rng.below(bytes.len() + 1)),
            // Flip a random byte.
            1 => {
                let i = rng.below(bytes.len());
                bytes[i] ^= (rng.next_u64() % 255 + 1) as u8;
            }
            // Rewrite the length field entirely.
            2 => {
                let len = (rng.next_u64() as u32).to_le_bytes();
                bytes[4..8].copy_from_slice(&len);
            }
            // Replace with pure noise.
            _ => {
                let n = rng.below(64);
                bytes = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            }
        }
        match wire::decode(&bytes) {
            Ok((_, used)) => {
                assert!(used <= bytes.len());
                survived += 1;
            }
            Err(DecodeError::Truncated { needed, got }) => {
                assert_eq!(got, bytes.len());
                assert!(needed > got);
                truncated += 1;
            }
            Err(DecodeError::Oversized(len)) => {
                assert!(len > MAX_PAYLOAD);
                rejected += 1;
            }
            Err(
                DecodeError::BadMagic(_)
                | DecodeError::BadVersion(_)
                | DecodeError::UnknownKind(_)
                | DecodeError::BadPayload { .. },
            ) => rejected += 1,
            Err(other) => panic!("unclassified decode error {other:?}"),
        }
    }
    // The loop must actually exercise all three regimes.
    assert!(truncated > 100, "truncated {truncated}");
    assert!(rejected > 1000, "rejected {rejected}");
    assert!(survived > 100, "survived {survived}");
}

#[test]
fn oversized_length_cannot_drive_allocation() {
    // A header declaring a huge payload is rejected at the header, before
    // any payload buffer exists.
    let mut frame = vec![wire::MAGIC, wire::VERSION, 2, 0];
    frame.extend_from_slice(&(u32::MAX).to_le_bytes());
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&frame[..HEADER_LEN]);
    assert_eq!(
        wire::decode_header(&header),
        Err(DecodeError::Oversized(u32::MAX as usize))
    );
}

/// Loopback decode boundary: mangled raw frames are counted and dropped;
/// the barrier protocol on the same links is unaffected.
#[test]
fn loopback_survives_mangled_frames_mid_episode() {
    let mesh = LoopbackMesh::new(2);
    let barriers: Vec<Arc<NetBarrier>> = mesh
        .endpoints()
        .into_iter()
        .map(|t| NetBarrier::start(Arc::new(t), NetConfig::new()))
        .collect();
    let mut rng = SplitMix64::seed_from_u64(99);
    std::thread::scope(|s| {
        for b in &barriers {
            let b = Arc::clone(b);
            s.spawn(move || {
                for e in 0..50u64 {
                    let t = b.arrive(0);
                    let o = b
                        .wait_deadline(t, Deadline::after(Duration::from_secs(10)))
                        .expect("mangled noise must not break the protocol");
                    assert_eq!(o.episode, e);
                }
            });
        }
        // Spray garbage at both endpoints while they synchronize.
        for _ in 0..500 {
            let n = rng.below(24);
            let junk: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            mesh.inject_raw(0, 1, &junk);
            mesh.inject_raw(1, 0, &junk);
        }
    });
    for b in &barriers {
        assert_eq!(b.stats().episodes, 50);
        assert!(
            b.net_stats().decode_errors > 0,
            "the junk must have hit the decode boundary"
        );
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fuzzy-net-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A stranger spraying garbage at a Unix listener during mesh formation
/// is dropped; the real peers still connect and complete an episode.
#[test]
fn unix_mesh_forms_through_garbage_connections() {
    let dir = temp_dir("harden-uds");
    let rank0 = std::thread::spawn({
        let dir = dir.clone();
        move || SocketTransport::unix(0, 2, &dir).unwrap()
    });
    // Wait for rank 0's listener, then hit it with garbage connections:
    // raw noise, a truncated hello, and a hello claiming an absurd rank.
    let path = fuzzy_net::unix_socket_path(&dir, 0);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let connect = || loop {
        match std::os::unix::net::UnixStream::connect(&path) {
            Ok(s) => return s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("listener never appeared: {e}"),
        }
    };
    {
        let mut s = connect();
        s.write_all(&[0xBA, 0xAD, 0xF0, 0x0D, 1, 2, 3, 4, 5, 6])
            .unwrap();
    }
    {
        let mut s = connect();
        s.write_all(&Message::Hello { rank: 1, nodes: 2 }.encode()[..5])
            .unwrap();
        // Dropped here: mid-hello hangup.
    }
    {
        let mut s = connect();
        s.write_all(&Message::Hello { rank: 9, nodes: 2 }.encode())
            .unwrap();
    }
    // The genuine rank 1 connects last and must still be accepted.
    let t1 = SocketTransport::unix(1, 2, &dir).unwrap();
    let t0 = rank0.join().unwrap();
    let b0 = NetBarrier::start(Arc::new(t0) as Arc<dyn Transport>, NetConfig::new());
    let b1 = NetBarrier::start(Arc::new(t1) as Arc<dyn Transport>, NetConfig::new());
    std::thread::scope(|s| {
        let b1 = Arc::clone(&b1);
        s.spawn(move || {
            let t = b1.arrive(0);
            b1.wait_deadline(t, Deadline::after(Duration::from_secs(10)))
                .expect("mesh must have formed through the garbage");
        });
        let t = b0.arrive(0);
        b0.wait_deadline(t, Deadline::after(Duration::from_secs(10)))
            .expect("mesh must have formed through the garbage");
    });
    b0.shutdown();
    b1.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same hardening for the TCP listener.
#[test]
fn tcp_mesh_forms_through_garbage_connections() {
    // Reserve two ports by binding, reading the addresses, and rebinding
    // inside the transports (test-local race, acceptable).
    let probe0 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let probe1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addrs = [probe0.local_addr().unwrap(), probe1.local_addr().unwrap()];
    drop((probe0, probe1));
    let rank0 = std::thread::spawn(move || SocketTransport::tcp(0, &addrs).unwrap());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let connect = || loop {
        match std::net::TcpStream::connect(addrs[0]) {
            Ok(s) => return s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("listener never appeared: {e}"),
        }
    };
    {
        let mut s = connect();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    }
    {
        let mut s = connect();
        s.write_all(&Message::Hello { rank: 1, nodes: 77 }.encode())
            .unwrap();
    }
    let t1 = SocketTransport::tcp(1, &addrs).unwrap();
    let t0 = rank0.join().unwrap();
    let b0 = NetBarrier::start(Arc::new(t0) as Arc<dyn Transport>, NetConfig::new());
    let b1 = NetBarrier::start(Arc::new(t1) as Arc<dyn Transport>, NetConfig::new());
    std::thread::scope(|s| {
        let b1 = Arc::clone(&b1);
        s.spawn(move || {
            let t = b1.arrive(0);
            b1.wait_deadline(t, Deadline::after(Duration::from_secs(10)))
                .expect("mesh must have formed through the garbage");
        });
        let t = b0.arrive(0);
        b0.wait_deadline(t, Deadline::after(Duration::from_secs(10)))
            .expect("mesh must have formed through the garbage");
    });
    b0.shutdown();
    b1.shutdown();
}
