//! Cache-line padding to keep independently written hot words from
//! false-sharing a line — the software analogue of giving each processor's
//! barrier flag its own memory module, which is what makes the
//! dissemination barrier genuinely hot-spot free.

use std::ops::{Deref, DerefMut};

/// Aligns (and therefore pads) `T` to a 128-byte boundary.
///
/// 128 bytes covers both the common 64-byte line and the 128-byte
/// prefetch-pair granularity of modern x86 and Apple cores, matching the
/// alignment `crossbeam_utils::CachePadded` picks on those targets.
///
/// # Examples
///
/// ```
/// use fuzzy_util::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slot = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&slot), 128);
/// assert_eq!(slot.load(std::sync::atomic::Ordering::Relaxed), 0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(p.into_inner(), 6);
    }

    #[test]
    fn adjacent_elements_never_share_a_line() {
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }
}
