//! A minimal JSON value and writer.
//!
//! The telemetry layer exports machine-readable snapshots (`--stats-json`)
//! without pulling in `serde`; this module is the entire serialization
//! stack: build a [`Json`] tree, call [`Json::to_string_pretty`]. Object
//! keys keep insertion order so exported files diff cleanly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites `key` in an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented serialization, ending without a trailing newline.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        // Integral values (the overwhelmingly common case for counters)
        // print without a fractional part.
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::Num(f64::from(x))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.5).to_string_compact(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Str("hi".into()).to_string_compact(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).to_string_compact(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(
            Json::Str("\u{1}".into()).to_string_compact(),
            "\"\\u0001\""
        );
    }

    #[test]
    fn objects_keep_insertion_order_and_overwrite() {
        let j = Json::obj()
            .field("b", 1u64)
            .field("a", 2u64)
            .field("b", 3u64);
        assert_eq!(j.to_string_compact(), r#"{"b":3,"a":2}"#);
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn arrays_and_pretty_printing() {
        let j = Json::obj()
            .field("xs", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]));
        assert_eq!(j.to_string_compact(), r#"{"xs":[1,2,3],"empty":[]}"#);
        let pretty = j.to_string_pretty();
        assert!(pretty.contains("\n  \"xs\": [\n    1,"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn big_u64_counters_round_trip_closely() {
        // u64::MAX is not representable exactly in f64; it must still
        // serialize as a number, not panic.
        let s = Json::Num(u64::MAX as f64).to_string_compact();
        assert!(s.parse::<f64>().is_ok());
    }
}
