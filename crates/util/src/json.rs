//! A minimal JSON value, writer, and parser.
//!
//! The telemetry layer exports machine-readable snapshots (`--stats-json`)
//! without pulling in `serde`; this module is the entire serialization
//! stack: build a [`Json`] tree, call [`Json::to_string_pretty`], read one
//! back with [`Json::parse`]. Object keys keep insertion order so exported
//! files diff cleanly.

use std::fmt::Write as _;

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Adds/overwrites `key` in an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is a number that is
    /// exactly an `i64` (round-trips losslessly through the `f64`
    /// representation).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            #[allow(clippy::cast_possible_truncation)]
            Json::Num(x) if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) => Some(*x as i64),
            _ => None,
        }
    }

    /// Parses a JSON document (the value plus surrounding whitespace; any
    /// trailing garbage is an error). Accepts everything the writer emits
    /// and standard JSON beyond it (nested escapes, `\uXXXX`, exponents).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after value"));
        }
        Ok(value)
    }

    /// Compact single-line serialization.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented serialization, ending without a trailing newline.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        // Integral values (the overwhelmingly common case for counters)
        // print without a fractional part.
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap for the recursive-descent parser; telemetry files are
/// a few levels deep, so this only guards against stack-smashing inputs.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes in one slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped at ASCII
                // delimiters, so the run is a valid str slice.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.error("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))?);
            }
            other => {
                return Err(self.error(format!("unknown escape \\{}", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.error("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("malformed number {text:?}")))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::Num(f64::from(x))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.5).to_string_compact(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Str("hi".into()).to_string_compact(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).to_string_compact(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(Json::Str("\u{1}".into()).to_string_compact(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order_and_overwrite() {
        let j = Json::obj()
            .field("b", 1u64)
            .field("a", 2u64)
            .field("b", 3u64);
        assert_eq!(j.to_string_compact(), r#"{"b":3,"a":2}"#);
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn arrays_and_pretty_printing() {
        let j = Json::obj()
            .field("xs", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]));
        assert_eq!(j.to_string_compact(), r#"{"xs":[1,2,3],"empty":[]}"#);
        let pretty = j.to_string_pretty();
        assert!(pretty.contains("\n  \"xs\": [\n    1,"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let original = Json::obj()
            .field("experiment", "encore")
            .field("ok", true)
            .field("nothing", Json::Null)
            .field("pi", 3.25f64)
            .field("counts", vec![0u64, 17, 94000])
            .field(
                "nested",
                Json::obj()
                    .field("text", "line\nbreak \"quoted\" \\slash")
                    .field("empty_arr", Json::Arr(vec![]))
                    .field("empty_obj", Json::obj()),
            );
        for text in [original.to_string_compact(), original.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), original);
        }
    }

    #[test]
    fn parser_accepts_standard_json_forms() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("1E2").unwrap(), Json::Num(100.0));
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert_eq!(
            Json::parse("[1, [2, {\"k\": [3]}]]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0), Json::obj().field("k", vec![3u64]),]),
            ])
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad escape \\q\"",
            "\"lone \\ud800 surrogate\"",
            "1 2",
            "nan",
            "--1",
            "1.",
            "1e",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.offset <= bad.len());
        }
    }

    #[test]
    fn parse_errors_carry_useful_offsets() {
        let err = Json::parse(r#"{"a": 1, "b": oops}"#).unwrap_err();
        assert_eq!(err.offset, 14);
        assert_eq!(format!("{err}"), format!("{} at byte 14", err.message));
    }

    #[test]
    fn big_u64_counters_round_trip_closely() {
        // u64::MAX is not representable exactly in f64; it must still
        // serialize as a number, not panic.
        let s = Json::Num(u64::MAX as f64).to_string_compact();
        assert!(s.parse::<f64>().is_ok());
    }
}
