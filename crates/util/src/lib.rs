//! # fuzzy-util
//!
//! Small, dependency-free building blocks shared by every crate in the
//! fuzzy-barrier workspace. The build environment is offline, so the few
//! external utilities the workspace used to pull in (`crossbeam`'s
//! `CachePadded`, `rand`'s seedable RNG) live here as minimal local
//! implementations, alongside the JSON value type backing the unified
//! telemetry export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod pad;
pub mod rng;

pub use json::{Json, JsonParseError};
pub use pad::CachePadded;
pub use rng::SplitMix64;
