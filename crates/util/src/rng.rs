//! A small, seedable, reproducible PRNG.
//!
//! The workloads and cache-miss models need *deterministic per-seed*
//! pseudo-randomness, not cryptographic quality. SplitMix64 (Steele,
//! Lea & Flood 2014) is the standard tiny generator for that job: one
//! 64-bit word of state, full period, passes BigCrush when used as here.

/// SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use fuzzy_util::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(42);
/// let mut b = SplitMix64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// Uses Lemire-style rejection-free widening multiply; the modulo bias
    /// over a 64-bit stream is far below anything the workload models can
    /// observe, and determinism per seed is preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let bound = span + 1;
        let hi128 = ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64;
        lo + hi128
    }

    /// Uniform `usize` in `[0, n)`. Returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            usize::try_from(self.range_u64(0, n as u64 - 1)).unwrap_or(0)
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_inclusive_and_covers_endpoints() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.range_u64(5, 8);
            assert!((5..=8).contains(&x));
            seen_lo |= x == 5;
            seen_hi |= x == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(r.range_u64(4, 4), 4);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::seed_from_u64(2);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[(r.next_f64() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
