//! Micro-benchmarks for the fuzzy-barrier suite.
//!
//! The host is single-core (see DESIGN.md), so these measure
//! single-participant protocol costs, simulator throughput and compiler
//! pipeline latency rather than contended multi-thread scaling — the
//! contended comparisons live in the simulator experiments
//! (`exp_hotspot_scaling`, `exp_encore`).
//!
//! Formerly a criterion harness; the build environment is offline, so a
//! small self-timing loop (`bench`) reports median-of-batches ns/iter.

use fuzzy_barrier::{
    CentralBarrier, CountingBarrier, DisseminationBarrier, ProcMask, SplitBarrier, TreeBarrier,
};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over several batches and prints the median ns/iter.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Warm-up, then pick a batch size targeting ~2ms per batch.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 2 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{name:<44} {median:>12.1} ns/iter   ({iters} iters/batch)");
}

/// Cost of one arrive+wait episode per backend (single participant: the
/// uncontended fast path every design should make cheap).
fn bench_backends() {
    let backends: Vec<(&str, Box<dyn SplitBarrier>)> = vec![
        ("central", Box::new(CentralBarrier::new(1))),
        ("counting", Box::new(CountingBarrier::new(1))),
        ("dissemination", Box::new(DisseminationBarrier::new(1))),
        ("tree", Box::new(TreeBarrier::new(1))),
    ];
    for (name, b) in &backends {
        bench(&format!("episode_uncontended/{name}"), || {
            let t = b.arrive(0);
            black_box(b.wait(t));
        });
    }
}

/// Split-phase with a region of useful work vs point synchronization:
/// the protocol overhead should stay constant as the region grows.
fn bench_region_overlap() {
    for region in [0u64, 32, 256] {
        let b = CentralBarrier::new(1);
        bench(&format!("arrive_region_wait/{region}"), || {
            let t = b.arrive(0);
            let mut acc = 0u64;
            for i in 0..region {
                acc = acc.wrapping_add(i);
            }
            black_box(acc);
            black_box(b.wait(t));
        });
    }
}

/// Mask operations used on every subset-barrier arrival.
fn bench_masks() {
    let mask: ProcMask = (0..64).step_by(3).collect();
    bench("mask_rank_of", || {
        black_box(mask.rank_of(black_box(33)));
    });
}

/// Simulator throughput: a two-processor barrier-per-iteration loop.
fn bench_simulator() {
    use fuzzy_sim::assembler::assemble_program;
    use fuzzy_sim::machine::{Machine, MachineConfig};
    let src = "\
.stream
    li r1, 0
    li r2, 64
loop:
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
.stream
    li r1, 0
    li r2, 64
loop:
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
";
    let program = assemble_program(src).expect("assembles");
    bench("sim_64_synchronized_iterations", || {
        let mut m = Machine::new(program.clone(), MachineConfig::default()).expect("loads");
        black_box(m.run(1_000_000).expect("runs"));
    });
}

/// Compiler pipeline latency: Poisson body from AST to reordered regions.
fn bench_compiler() {
    use fuzzy_compiler::ast::*;
    use fuzzy_compiler::{deps, lower, reorder};
    let nest = {
        let k = VarId(0);
        let i = VarId(1);
        let j = VarId(2);
        let p = ArrayId(0);
        let acc = |di: i64, dj: i64| {
            Expr::Access(ArrayAccess::new(
                p,
                vec![Subscript::var(i, di), Subscript::var(j, dj)],
            ))
        };
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "P".into(),
                dims: vec![4, 4],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 20,
            private_vars: vec![i, j],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
                value: Expr::div_const(
                    Expr::add(
                        Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
                        acc(-1, 0),
                    ),
                    4,
                ),
            })],
            var_names: vec!["k".into(), "i".into(), "j".into()],
        }
    };
    bench("compile_poisson_to_regions", || {
        let info = deps::analyze(black_box(&nest));
        let body = lower::lower_body(&nest, &info.marked_for_carried());
        black_box(reorder::reorder(&body));
    });
}

/// Scheduling policies: full dispatch sequence for 10k iterations.
fn bench_schedulers() {
    use fuzzy_sched::self_sched::{
        chunk_sequence, FixedChunk, GuidedSelfScheduling, SelfScheduling,
    };
    bench("dispatch_10k_iters/self", || {
        black_box(chunk_sequence(10_000, 8, &SelfScheduling));
    });
    bench("dispatch_10k_iters/chunk64", || {
        black_box(chunk_sequence(10_000, 8, &FixedChunk(64)));
    });
    bench("dispatch_10k_iters/gss", || {
        black_box(chunk_sequence(10_000, 8, &GuidedSelfScheduling));
    });
}

fn main() {
    bench_backends();
    bench_region_overlap();
    bench_masks();
    bench_simulator();
    bench_compiler();
    bench_schedulers();
}
