//! Criterion micro-benchmarks for the fuzzy-barrier suite.
//!
//! The host is single-core (see DESIGN.md), so these measure
//! single-participant protocol costs, simulator throughput and compiler
//! pipeline latency rather than contended multi-thread scaling — the
//! contended comparisons live in the simulator experiments
//! (`exp_hotspot_scaling`, `exp_encore`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_barrier::{
    CentralBarrier, CountingBarrier, DisseminationBarrier, ProcMask, SplitBarrier, TreeBarrier,
};
use std::hint::black_box;

/// Cost of one arrive+wait episode per backend (single participant: the
/// uncontended fast path every design should make cheap).
fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("episode_uncontended");
    let backends: Vec<(&str, Box<dyn SplitBarrier>)> = vec![
        ("central", Box::new(CentralBarrier::new(1))),
        ("counting", Box::new(CountingBarrier::new(1))),
        ("dissemination", Box::new(DisseminationBarrier::new(1))),
        ("tree", Box::new(TreeBarrier::new(1))),
    ];
    for (name, b) in &backends {
        g.bench_with_input(BenchmarkId::from_parameter(name), b, |bench, b| {
            bench.iter(|| {
                let t = b.arrive(0);
                black_box(b.wait(t));
            });
        });
    }
    g.finish();
}

/// Split-phase with a region of useful work vs point synchronization:
/// the protocol overhead should stay constant as the region grows.
fn bench_region_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("arrive_region_wait");
    for region in [0u64, 32, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(region), &region, |bench, &r| {
            let b = CentralBarrier::new(1);
            bench.iter(|| {
                let t = b.arrive(0);
                let mut acc = 0u64;
                for i in 0..r {
                    acc = acc.wrapping_add(i);
                }
                black_box(acc);
                black_box(b.wait(t));
            });
        });
    }
    g.finish();
}

/// Mask operations used on every subset-barrier arrival.
fn bench_masks(c: &mut Criterion) {
    c.bench_function("mask_rank_of", |bench| {
        let mask: ProcMask = (0..64).step_by(3).collect();
        bench.iter(|| black_box(mask.rank_of(black_box(33))));
    });
}

/// Simulator throughput: a two-processor barrier-per-iteration loop.
fn bench_simulator(c: &mut Criterion) {
    use fuzzy_sim::assembler::assemble_program;
    use fuzzy_sim::machine::{Machine, MachineConfig};
    let src = "\
.stream
    li r1, 0
    li r2, 64
loop:
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
.stream
    li r1, 0
    li r2, 64
loop:
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
";
    let program = assemble_program(src).expect("assembles");
    c.bench_function("sim_64_synchronized_iterations", |bench| {
        bench.iter(|| {
            let mut m =
                Machine::new(program.clone(), MachineConfig::default()).expect("loads");
            black_box(m.run(1_000_000).expect("runs"));
        });
    });
}

/// Compiler pipeline latency: Poisson body from AST to reordered regions.
fn bench_compiler(c: &mut Criterion) {
    use fuzzy_compiler::ast::*;
    use fuzzy_compiler::{deps, lower, reorder};
    let nest = {
        let k = VarId(0);
        let i = VarId(1);
        let j = VarId(2);
        let p = ArrayId(0);
        let acc = |di: i64, dj: i64| {
            Expr::Access(ArrayAccess::new(
                p,
                vec![Subscript::var(i, di), Subscript::var(j, dj)],
            ))
        };
        LoopNest {
            arrays: vec![ArrayDecl {
                name: "P".into(),
                dims: vec![4, 4],
                base: 0,
            }],
            seq_var: k,
            seq_lo: 1,
            seq_hi: 20,
            private_vars: vec![i, j],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(
                    p,
                    vec![Subscript::var(i, 0), Subscript::var(j, 0)],
                ),
                value: Expr::div_const(
                    Expr::add(
                        Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
                        acc(-1, 0),
                    ),
                    4,
                ),
            })],
            var_names: vec!["k".into(), "i".into(), "j".into()],
        }
    };
    c.bench_function("compile_poisson_to_regions", |bench| {
        bench.iter(|| {
            let info = deps::analyze(black_box(&nest));
            let body = lower::lower_body(&nest, &info.marked_for_carried());
            black_box(reorder::reorder(&body))
        });
    });
}

/// Scheduling policies: full dispatch sequence for 10k iterations.
fn bench_schedulers(c: &mut Criterion) {
    use fuzzy_sched::self_sched::{
        chunk_sequence, FixedChunk, GuidedSelfScheduling, SelfScheduling,
    };
    let mut g = c.benchmark_group("dispatch_10k_iters");
    g.bench_function("self", |b| {
        b.iter(|| black_box(chunk_sequence(10_000, 8, &SelfScheduling)))
    });
    g.bench_function("chunk64", |b| {
        b.iter(|| black_box(chunk_sequence(10_000, 8, &FixedChunk(64))))
    });
    g.bench_function("gss", |b| {
        b.iter(|| black_box(chunk_sequence(10_000, 8, &GuidedSelfScheduling)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_backends,
    bench_region_overlap,
    bench_masks,
    bench_simulator,
    bench_compiler,
    bench_schedulers
);
criterion_main!(benches);
