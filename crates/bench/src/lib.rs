//! # fuzzy-bench
//!
//! Experiment harness regenerating every figure and the Sec.-8 measurement
//! of Gupta's fuzzy-barrier paper. Each binary in `src/bin/` reproduces
//! one artifact (see `DESIGN.md`'s experiment index); this library holds
//! the shared table/CSV formatting and timing utilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Duration;

/// A simple aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<S: Display, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:>w$}"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("{}", "=".repeat(72));
}

/// Formats a duration as microseconds with two decimals.
#[must_use]
pub fn micros(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Ratio `a / b`, formatted as e.g. `12.3x`; `inf` when `b` is zero.
#[must_use]
pub fn speedup(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

/// Median of a sample (consumes and sorts it). Returns zero duration for
/// an empty sample.
#[must_use]
pub fn median(mut samples: Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    fn csv_is_plain() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn helpers() {
        assert_eq!(micros(Duration::from_micros(1500)), "1500.00");
        assert_eq!(speedup(30.0, 3.0), "10.0x");
        assert_eq!(speedup(1.0, 0.0), "inf");
        assert_eq!(
            median(vec![
                Duration::from_secs(3),
                Duration::from_secs(1),
                Duration::from_secs(2)
            ]),
            Duration::from_secs(2)
        );
        assert_eq!(median(vec![]), Duration::ZERO);
    }
}
