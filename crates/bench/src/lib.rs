//! # fuzzy-bench
//!
//! Experiment harness regenerating every figure and the Sec.-8 measurement
//! of Gupta's fuzzy-barrier paper. Each binary in `src/bin/` reproduces
//! one artifact (see `DESIGN.md`'s experiment index); this library holds
//! the shared table/CSV formatting and timing utilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schema;

use fuzzy_barrier::{HistogramSnapshot, StallHistogram, TelemetrySnapshot};
use fuzzy_sim::MachineStats;
use fuzzy_util::Json;
use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A simple aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<S: Display, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:>w$}"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON array of row objects keyed by header.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    let mut obj = Json::obj();
                    for (h, cell) in self.headers.iter().zip(row) {
                        // Numeric cells export as numbers so downstream
                        // tooling need not re-parse strings.
                        let value = match cell.parse::<f64>() {
                            Ok(x) if x.is_finite() => Json::Num(x),
                            _ => Json::Str(cell.clone()),
                        };
                        obj = obj.field(h, value);
                    }
                    obj
                })
                .collect(),
        )
    }
}

/// Converts a 64-bucket power-of-two histogram into JSON: only non-empty
/// buckets are listed, each with its inclusive `[lo, hi]` value range in
/// `unit` (`"ns"` for the thread library, `"cycles"` for the simulator).
#[must_use]
pub fn histogram_json(buckets: &[u64], unit: &str) -> Json {
    let entries: Vec<Json> = buckets
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(i, &count)| {
            let (lo, hi) = StallHistogram::bucket_bounds(i);
            Json::obj()
                .field("bucket", i)
                .field("lo", lo)
                .field("hi", hi)
                .field("count", count)
        })
        .collect();
    Json::obj()
        .field("unit", unit)
        .field("total", buckets.iter().sum::<u64>())
        .field("buckets", Json::Arr(entries))
}

/// Converts a barrier [`TelemetrySnapshot`] (thread library, nanoseconds)
/// into the JSON schema documented in README.md's Telemetry section.
#[must_use]
pub fn telemetry_json(t: &TelemetrySnapshot) -> Json {
    let hist: &HistogramSnapshot = &t.stall_hist;
    Json::obj()
        .field("episodes", t.base.episodes)
        .field("arrivals", t.base.arrivals)
        .field("waits", t.base.waits)
        .field("stalls", t.base.stalls)
        .field("deschedules", t.base.deschedules)
        .field("probes", t.base.probes)
        .field("timeouts", t.base.timeouts)
        .field("evictions", t.base.evictions)
        .field("poisonings", t.base.poisonings)
        .field("stall_ns", t.base.stall_time.as_nanos() as u64)
        .field("stall_hist", histogram_json(&hist.buckets, "ns"))
        .field(
            "spread",
            Json::obj()
                .field("episodes", t.spread.episodes)
                .field("total_ns", t.spread.total.as_nanos() as u64)
                .field("max_ns", t.spread.max.as_nanos() as u64)
                .field("last_ns", t.spread.last.as_nanos() as u64)
                .field("mean_ns", t.spread.mean().as_nanos() as u64),
        )
        .field(
            "per_participant",
            Json::Arr(
                t.per_participant
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .field("arrivals", p.arrivals)
                            .field("waits", p.waits)
                            .field("stalls", p.stalls)
                            .field("stall_ns", p.stall_time.as_nanos() as u64)
                            .field("probes", p.probes)
                    })
                    .collect(),
            ),
        )
}

/// Converts simulator [`MachineStats`] (cycle domain) into the same JSON
/// shape, with `"cycles"` as the histogram unit. Delegates to
/// [`MachineStats::to_json`] so `fsim` (which cannot depend on this
/// crate) and the `exp_*` binaries share one schema.
#[must_use]
pub fn sim_stats_json(s: &MachineStats) -> Json {
    s.to_json()
}

/// Extracts the `--stats-json <path>` (or `--stats-json=<path>`) argument
/// from an argument iterator. Returns `None` when absent.
pub fn stats_json_arg<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--stats-json" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--stats-json=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Convenience: `stats_json_arg` over the process's own arguments.
#[must_use]
pub fn stats_json_arg_from_env() -> Option<PathBuf> {
    stats_json_arg(std::env::args().skip(1))
}

/// Accumulates the machine-readable output of one experiment run and
/// writes it to the `--stats-json` path, if one was given.
///
/// Every `exp_*` binary builds one of these from its environment; when the
/// flag is absent all recording calls are cheap no-ops, so the human
/// output is unchanged.
#[derive(Debug)]
pub struct StatsExport {
    experiment: String,
    sections: Vec<(String, Json)>,
    path: Option<PathBuf>,
}

impl StatsExport {
    /// Creates an export sink for `experiment`, reading `--stats-json`
    /// from the process arguments.
    #[must_use]
    pub fn from_env(experiment: &str) -> Self {
        Self::to_path(experiment, stats_json_arg_from_env())
    }

    /// Creates an export sink writing to an explicit path (`None`
    /// disables recording entirely).
    #[must_use]
    pub fn to_path(experiment: &str, path: Option<PathBuf>) -> Self {
        StatsExport {
            experiment: experiment.to_string(),
            sections: Vec::new(),
            path,
        }
    }

    /// Whether a `--stats-json` path was supplied.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Records a named JSON section (no-op when disabled).
    pub fn section(&mut self, name: &str, json: Json) {
        if self.path.is_some() {
            self.sections.push((name.to_string(), json));
        }
    }

    /// Records a table as a named section of row objects.
    pub fn table(&mut self, name: &str, t: &Table) {
        if self.path.is_some() {
            self.section(name, t.to_json());
        }
    }

    /// Writes the accumulated document, if a path was supplied.
    ///
    /// An experiment explicitly asked to export stats must not silently
    /// drop them, so an unwritable path (including an empty
    /// `--stats-json=`) terminates the process with a diagnostic rather
    /// than letting the run look successful.
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        let mut doc = Json::obj().field("experiment", self.experiment.as_str());
        for (name, json) in self.sections {
            doc = doc.field(&name, json);
        }
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("stats export: cannot write `{}`: {e}", path.display());
            std::process::exit(1);
        }
        println!("stats written to {}", path.display());
    }
}

/// Writes a JSON document to `path` (pretty-printed, trailing newline),
/// creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_json(path: &Path, json: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = json.to_string_pretty();
    text.push('\n');
    std::fs::write(path, text)
}

/// Prints an experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("{}", "=".repeat(72));
}

/// Formats a duration as microseconds with two decimals.
#[must_use]
pub fn micros(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Ratio `a / b`, formatted as e.g. `12.3x`; `inf` when `b` is zero.
#[must_use]
pub fn speedup(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

/// Median of a sample (consumes and sorts it). Returns zero duration for
/// an empty sample.
#[must_use]
pub fn median(mut samples: Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    fn csv_is_plain() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn table_to_json_types_cells() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1.5"]);
        let j = t.to_json();
        let row = &j.as_arr().unwrap()[0];
        assert_eq!(row.get("name"), Some(&Json::Str("alpha".into())));
        assert_eq!(row.get("value").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn histogram_json_lists_only_nonempty_buckets() {
        let mut buckets = [0u64; 64];
        buckets[0] = 2;
        buckets[5] = 1;
        let j = histogram_json(&buckets, "cycles");
        assert_eq!(j.get("unit"), Some(&Json::Str("cycles".into())));
        assert_eq!(j.get("total").and_then(Json::as_f64), Some(3.0));
        let entries = j.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].get("lo").and_then(Json::as_f64), Some(32.0));
        assert_eq!(entries[1].get("hi").and_then(Json::as_f64), Some(63.0));
    }

    #[test]
    fn telemetry_json_has_schema_fields() {
        use fuzzy_barrier::{CentralBarrier, SplitBarrier};
        let b = CentralBarrier::new(2);
        std::thread::scope(|s| {
            for id in 0..2 {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..3 {
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
        let j = telemetry_json(&b.telemetry());
        assert_eq!(j.get("episodes").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("arrivals").and_then(Json::as_f64), Some(6.0));
        assert!(j.get("stall_hist").is_some());
        assert!(j.get("spread").unwrap().get("mean_ns").is_some());
        assert_eq!(j.get("per_participant").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn stats_json_arg_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            stats_json_arg(args(&["--stats-json", "out.json"])),
            Some(PathBuf::from("out.json"))
        );
        assert_eq!(
            stats_json_arg(args(&["x", "--stats-json=a/b.json"])),
            Some(PathBuf::from("a/b.json"))
        );
        assert_eq!(stats_json_arg(args(&["--stats-json"])), None);
        assert_eq!(stats_json_arg(args(&["--other"])), None);
    }

    #[test]
    fn stats_export_writes_named_sections() {
        let dir = std::env::temp_dir().join("fuzzy_bench_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("stats.json");
        let mut export = StatsExport::to_path("demo", Some(path.clone()));
        assert!(export.enabled());
        let mut t = Table::new(["x"]);
        t.row(["7"]);
        export.table("sweep", &t);
        export.section("extra", Json::obj().field("k", 1u64));
        export.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"demo\""));
        assert!(text.contains("\"sweep\""));
        assert!(text.contains("\"extra\""));
        let _ = std::fs::remove_dir_all(&dir);

        // Disabled sink records nothing and writes nothing.
        let mut off = StatsExport::to_path("demo", None);
        assert!(!off.enabled());
        off.section("s", Json::Null);
        off.finish();
    }

    #[test]
    fn write_json_creates_parents() {
        let dir = std::env::temp_dir().join("fuzzy_bench_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/stats.json");
        write_json(&path, &Json::obj().field("ok", true)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"ok\": true"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn helpers() {
        assert_eq!(micros(Duration::from_micros(1500)), "1500.00");
        assert_eq!(speedup(30.0, 3.0), "10.0x");
        assert_eq!(speedup(1.0, 0.0), "inf");
        assert_eq!(
            median(vec![
                Duration::from_secs(3),
                Duration::from_secs(1),
                Duration::from_secs(2)
            ]),
            Duration::from_secs(2)
        );
        assert_eq!(median(vec![]), Duration::ZERO);
    }
}
