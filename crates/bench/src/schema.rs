//! Structural schema validation for `--stats-json` exports.
//!
//! A [`Shape`] describes the key set and value types a telemetry file must
//! have; [`validate`] walks a parsed [`Json`] tree against it and collects
//! every mismatch with a JSON-pointer-style path. CI's bench-smoke stage
//! uses [`encore_shape`] to pin the `exp_encore` export format, so a field
//! rename or type drift fails the build instead of silently breaking
//! downstream plotting scripts.

use fuzzy_util::Json;

/// A structural type for one JSON value.
#[derive(Debug, Clone)]
pub enum Shape {
    /// Any string.
    Str,
    /// Any number (the writer never emits non-finite values).
    Num,
    /// `true` or `false`.
    Bool,
    /// An array with at least `min_len` elements, each matching `elem`.
    Arr {
        /// Shape every element must match.
        elem: Box<Shape>,
        /// Minimum element count (0 = may be empty).
        min_len: usize,
    },
    /// An object with exactly these keys (any order), each value matching
    /// its shape. Missing and unexpected keys are both errors.
    Obj(Vec<(&'static str, Shape)>),
}

/// Shorthand for a non-empty array of `elem`.
#[must_use]
pub fn arr_of(elem: Shape) -> Shape {
    Shape::Arr {
        elem: Box::new(elem),
        min_len: 1,
    }
}

/// Shorthand for an object shape from `(key, shape)` pairs.
#[must_use]
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Shape)>) -> Shape {
    Shape::Obj(fields.into_iter().collect())
}

/// Validates `value` against `shape`, returning every mismatch as a
/// `path: problem` line. An empty vector means the document conforms.
#[must_use]
pub fn validate(value: &Json, shape: &Shape) -> Vec<String> {
    let mut errors = Vec::new();
    walk(value, shape, "$", &mut errors);
    errors
}

fn type_name(value: &Json) -> &'static str {
    match value {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn walk(value: &Json, shape: &Shape, path: &str, errors: &mut Vec<String>) {
    match (shape, value) {
        (Shape::Str, Json::Str(_)) | (Shape::Num, Json::Num(_)) | (Shape::Bool, Json::Bool(_)) => {}
        (Shape::Arr { elem, min_len }, Json::Arr(items)) => {
            if items.len() < *min_len {
                errors.push(format!(
                    "{path}: expected at least {min_len} element(s), got {}",
                    items.len()
                ));
            }
            for (i, item) in items.iter().enumerate() {
                walk(item, elem, &format!("{path}[{i}]"), errors);
            }
        }
        (Shape::Obj(fields), Json::Obj(actual)) => {
            for (key, field_shape) in fields {
                match value.get(key) {
                    Some(v) => walk(v, field_shape, &format!("{path}.{key}"), errors),
                    None => errors.push(format!("{path}: missing key {key:?}")),
                }
            }
            for (key, _) in actual {
                if !fields.iter().any(|(k, _)| k == key) {
                    errors.push(format!("{path}: unexpected key {key:?}"));
                }
            }
        }
        (expected, actual) => {
            let want = match expected {
                Shape::Str => "string",
                Shape::Num => "number",
                Shape::Bool => "bool",
                Shape::Arr { .. } => "array",
                Shape::Obj(_) => "object",
            };
            errors.push(format!(
                "{path}: expected {want}, got {}",
                type_name(actual)
            ));
        }
    }
}

/// One bucket row of a stall histogram export.
fn hist_bucket() -> Shape {
    obj([
        ("bucket", Shape::Num),
        ("lo", Shape::Num),
        ("hi", Shape::Num),
        ("count", Shape::Num),
    ])
}

/// A `stall_hist` section: unit label, total count, bucket rows. Buckets
/// may be empty (a run can finish without a single recorded stall).
fn stall_hist() -> Shape {
    obj([
        ("unit", Shape::Str),
        ("total", Shape::Num),
        (
            "buckets",
            Shape::Arr {
                elem: Box::new(hist_bucket()),
                min_len: 0,
            },
        ),
    ])
}

/// An interarrival-spread section with the given field names (the
/// software path reports nanoseconds, the simulated machine cycles).
fn spread(count_key: &'static str, keys: [&'static str; 4]) -> Shape {
    let [total, max, last, mean] = keys;
    obj([
        (count_key, Shape::Num),
        (total, Shape::Num),
        (max, Shape::Num),
        (last, Shape::Num),
        (mean, Shape::Num),
    ])
}

/// Per-backend telemetry block as exported by `telemetry_json`.
fn backend_telemetry() -> Shape {
    obj([
        ("episodes", Shape::Num),
        ("arrivals", Shape::Num),
        ("waits", Shape::Num),
        ("stalls", Shape::Num),
        ("deschedules", Shape::Num),
        ("probes", Shape::Num),
        ("timeouts", Shape::Num),
        ("evictions", Shape::Num),
        ("poisonings", Shape::Num),
        ("stall_ns", Shape::Num),
        ("stall_hist", stall_hist()),
        (
            "spread",
            spread("episodes", ["total_ns", "max_ns", "last_ns", "mean_ns"]),
        ),
        (
            "per_participant",
            arr_of(obj([
                ("arrivals", Shape::Num),
                ("waits", Shape::Num),
                ("stalls", Shape::Num),
                ("stall_ns", Shape::Num),
                ("probes", Shape::Num),
            ])),
        ),
    ])
}

/// The full `exp_encore --stats-json` document shape.
#[must_use]
pub fn encore_shape() -> Shape {
    let soft_row = obj([
        ("region (% of body)", Shape::Str),
        ("total cycles", Shape::Num),
        ("spin probes/proc/barrier", Shape::Num),
        ("ctx switches", Shape::Num),
        ("sync cost/barrier (cycles)", Shape::Num),
    ]);
    let machine = obj([
        ("cycles", Shape::Num),
        ("sync_events", Shape::Num),
        ("stall_hist", stall_hist()),
        (
            "spread",
            spread(
                "events",
                ["total_cycles", "max_cycles", "last_cycles", "mean_cycles"],
            ),
        ),
        (
            "procs",
            arr_of(obj([
                ("instructions", Shape::Num),
                ("stall_cycles", Shape::Num),
                ("stall_events", Shape::Num),
                ("busy_cycles", Shape::Num),
                ("barrier_entries", Shape::Num),
                ("syncs", Shape::Num),
            ])),
        ),
    ]);
    let hw_row = obj([
        ("region_pct", Shape::Num),
        ("total_stall_cycles", Shape::Num),
        ("machine", machine),
    ]);
    obj([
        ("experiment", Shape::Str),
        ("soft_sweep", arr_of(soft_row)),
        ("hw_sweep", arr_of(hw_row)),
        (
            "backends",
            obj([
                ("central", backend_telemetry()),
                ("counting", backend_telemetry()),
                ("dissemination", backend_telemetry()),
                ("tree", backend_telemetry()),
            ]),
        ),
    ])
}

/// The full `exp_backend_faceoff --stats-json` document shape.
#[must_use]
pub fn backend_faceoff_shape() -> Shape {
    let sweep_row = obj([
        ("backend", Shape::Str),
        ("shard_size", Shape::Num),
        ("procs", Shape::Num),
        ("episodes", Shape::Num),
        ("probes_per_episode", Shape::Num),
        ("stalls", Shape::Num),
        ("stall_ns", Shape::Num),
        ("spread_mean_ns", Shape::Num),
        ("elapsed_ms", Shape::Num),
    ]);
    obj([
        ("experiment", Shape::Str),
        (
            "config",
            obj([
                ("episodes", Shape::Num),
                ("region_units", Shape::Num),
                ("quick", Shape::Bool),
            ]),
        ),
        ("sweep", arr_of(sweep_row)),
        (
            "verdict",
            obj([
                (
                    "asserted_at",
                    Shape::Arr {
                        elem: Box::new(Shape::Num),
                        min_len: 0,
                    },
                ),
                ("hier_beats_counting", Shape::Bool),
                ("hier_beats_central", Shape::Bool),
            ]),
        ),
    ])
}

/// Summary block shared by the single-run sections of the fault-recovery
/// export.
fn fault_run_summary() -> Shape {
    obj([
        ("evictions", Shape::Num),
        ("sync_events", Shape::Num),
        ("cycles", Shape::Num),
        ("outcome", Shape::Str),
    ])
}

/// The full `exp_fault_recovery --stats-json` document shape.
#[must_use]
pub fn fault_recovery_shape() -> Shape {
    let sweep_row = obj([
        ("budget", Shape::Num),
        ("fired_at", Shape::Num),
        ("recovery_cycles", Shape::Num),
        ("evictions", Shape::Num),
        ("survivor_syncs_min", Shape::Num),
        ("victim_syncs", Shape::Num),
        ("cycles", Shape::Num),
        ("outcome", Shape::Str),
    ]);
    obj([
        ("experiment", Shape::Str),
        ("stall_sweep", arr_of(sweep_row)),
        ("transient_delay", fault_run_summary()),
        ("stutter", fault_run_summary()),
    ])
}

/// The full `exp_async_scale --stats-json` document shape.
#[must_use]
pub fn async_scale_shape() -> Shape {
    let sweep_row = obj([
        ("tasks", Shape::Num),
        ("workers", Shape::Num),
        ("episodes", Shape::Num),
        ("arrivals", Shape::Num),
        ("parked", Shape::Num),
        ("resumed", Shape::Num),
        ("steals", Shape::Num),
        ("polls", Shape::Num),
        ("wakes", Shape::Num),
        ("drains", Shape::Num),
        ("polls_per_arrival", Shape::Num),
        ("elapsed_ms", Shape::Num),
    ]);
    obj([
        ("experiment", Shape::Str),
        (
            "config",
            obj([
                ("episodes", Shape::Num),
                ("region_units", Shape::Num),
                ("quick", Shape::Bool),
                ("liveness_seeds", Shape::Num),
            ]),
        ),
        ("sweep", arr_of(sweep_row)),
        (
            "verdict",
            obj([
                ("deadlock_free_seeds", Shape::Num),
                ("parked_equals_resumed", Shape::Bool),
            ]),
        ),
    ])
}

/// The full `exp_net_scale --stats-json` document shape.
#[must_use]
pub fn net_scale_shape() -> Shape {
    let sweep_row = obj([
        ("nodes", Shape::Num),
        ("region_us", Shape::Num),
        ("episodes", Shape::Num),
        ("frames_sent", Shape::Num),
        ("frames_received", Shape::Num),
        ("retries", Shape::Num),
        ("nacks", Shape::Num),
        ("frames_per_arrival", Shape::Num),
        ("elapsed_ms", Shape::Num),
    ]);
    let multiproc_row = obj([
        ("seed", Shape::Num),
        ("nodes", Shape::Num),
        ("episodes", Shape::Num),
        ("released", Shape::Num),
        ("elapsed_ms", Shape::Num),
    ]);
    obj([
        ("experiment", Shape::Str),
        (
            "config",
            obj([
                ("episodes", Shape::Num),
                ("quick", Shape::Bool),
                ("multiproc_nodes", Shape::Num),
                ("multiproc_seeds", Shape::Num),
                ("multiproc_episodes", Shape::Num),
            ]),
        ),
        ("sweep", arr_of(sweep_row)),
        ("multiproc", arr_of(multiproc_row)),
        (
            "verdict",
            obj([
                ("wedge_free_seeds", Shape::Num),
                ("all_released", Shape::Bool),
                ("zero_retries", Shape::Bool),
            ]),
        ),
    ])
}

/// The full `exp_chaos_churn --stats-json` document shape. One row per
/// (backend, mode) chaos run; `recovery` is the post-event epoch-recovery
/// latency histogram in the standard `stall_hist` format.
#[must_use]
pub fn chaos_churn_shape() -> Shape {
    let run = obj([
        ("backend", Shape::Str),
        ("mode", Shape::Str),
        (
            "events",
            obj([
                ("joins", Shape::Num),
                ("leaves", Shape::Num),
                ("crashes", Shape::Num),
                ("delays", Shape::Num),
                ("spurious", Shape::Num),
                ("total", Shape::Num),
            ]),
        ),
        ("episodes", Shape::Num),
        ("final_epoch", Shape::Num),
        ("final_members", Shape::Num),
        ("agreement", Shape::Bool),
        ("spurious_hits", Shape::Num),
        ("elapsed_ms", Shape::Num),
        ("recovery", stall_hist()),
    ]);
    obj([
        ("experiment", Shape::Str),
        (
            "config",
            obj([
                ("seed", Shape::Num),
                ("events_per_run", Shape::Num),
                ("quick", Shape::Bool),
            ]),
        ),
        ("runs", arr_of(run)),
        (
            "verdict",
            obj([
                ("runs", Shape::Num),
                ("total_events", Shape::Num),
                ("all_agreed", Shape::Bool),
            ]),
        ),
    ])
}

/// The `fuzz --stats-json` campaign summary shape (see
/// `fuzzy_fuzz::campaign::CampaignStats::to_json`). `repros` may be empty
/// — a clean campaign is the expected steady state.
#[must_use]
pub fn fuzz_campaign_shape() -> Shape {
    let repro = obj([("name", Shape::Str), ("divergences", arr_of(Shape::Str))]);
    obj([
        ("schema", Shape::Str),
        ("seed", Shape::Num),
        ("iters", Shape::Num),
        ("rejected_nests", Shape::Num),
        ("near_invalid_ok", Shape::Num),
        ("near_invalid_bad", Shape::Num),
        ("divergent_cases", Shape::Num),
        (
            "repros",
            Shape::Arr {
                elem: Box::new(repro),
                min_len: 0,
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj()
            .field("name", "x")
            .field("xs", vec![1u64, 2])
            .field("flag", true)
    }

    fn sample_shape() -> Shape {
        obj([
            ("name", Shape::Str),
            ("xs", arr_of(Shape::Num)),
            ("flag", Shape::Bool),
        ])
    }

    #[test]
    fn conforming_document_validates() {
        assert_eq!(validate(&sample(), &sample_shape()), Vec::<String>::new());
    }

    #[test]
    fn missing_extra_and_mistyped_keys_all_report() {
        let doc = Json::obj()
            .field("name", 7u64)
            .field("stray", Json::Null)
            .field("flag", true);
        let errors = validate(&doc, &sample_shape());
        assert!(errors
            .iter()
            .any(|e| e.contains("$.name") && e.contains("expected string")));
        assert!(errors.iter().any(|e| e.contains("missing key \"xs\"")));
        assert!(errors
            .iter()
            .any(|e| e.contains("unexpected key \"stray\"")));
    }

    #[test]
    fn array_paths_point_at_the_bad_element() {
        let doc = Json::obj()
            .field("name", "x")
            .field(
                "xs",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".into())]),
            )
            .field("flag", true);
        let errors = validate(&doc, &sample_shape());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].starts_with("$.xs[1]:"), "{}", errors[0]);
    }

    #[test]
    fn empty_array_fails_min_len() {
        let doc = Json::obj()
            .field("name", "x")
            .field("xs", Json::Arr(vec![]))
            .field("flag", true);
        let errors = validate(&doc, &sample_shape());
        assert!(errors[0].contains("at least 1 element"), "{}", errors[0]);
    }

    #[test]
    fn checked_in_faceoff_export_conforms() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_faceoff.json"
        ))
        .expect("BENCH_faceoff.json present in repo root");
        let doc = Json::parse(&text).expect("reference export parses");
        assert_eq!(
            validate(&doc, &backend_faceoff_shape()),
            Vec::<String>::new()
        );
        // The baseline must have been generated from the *default* sweep
        // with its verdict asserted — a quick run is not a valid baseline.
        assert_eq!(
            doc.get("config").unwrap().get("quick"),
            Some(&Json::Bool(false))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("hier_beats_counting"),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("hier_beats_central"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn checked_in_async_export_conforms() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_async.json"
        ))
        .expect("BENCH_async.json present in repo root");
        let doc = Json::parse(&text).expect("reference export parses");
        assert_eq!(validate(&doc, &async_scale_shape()), Vec::<String>::new());
        // The baseline must come from the *default* sweep with all five
        // liveness seeds completed — a quick run is not a valid baseline.
        assert_eq!(
            doc.get("config").unwrap().get("quick"),
            Some(&Json::Bool(false))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("deadlock_free_seeds"),
            Some(&Json::Num(5.0))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("parked_equals_resumed"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn checked_in_net_export_conforms() {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json"))
                .expect("BENCH_net.json present in repo root");
        let doc = Json::parse(&text).expect("reference export parses");
        assert_eq!(validate(&doc, &net_scale_shape()), Vec::<String>::new());
        // The baseline must come from the *default* sweep with all five
        // multi-process seeds wedge-free — a quick run is not a valid
        // baseline.
        assert_eq!(
            doc.get("config").unwrap().get("quick"),
            Some(&Json::Bool(false))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("wedge_free_seeds"),
            Some(&Json::Num(5.0))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("all_released"),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            doc.get("verdict").unwrap().get("zero_retries"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn checked_in_encore_export_conforms() {
        // The committed reference export must always match the schema; if
        // an exporter change shifts the format, regenerate the file and
        // update `encore_shape` together.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_encore.json"
        ))
        .expect("BENCH_encore.json present in repo root");
        let doc = Json::parse(&text).expect("reference export parses");
        assert_eq!(validate(&doc, &encore_shape()), Vec::<String>::new());
    }
}
