//! Experiment E7 — Figs. 8–10: lexically forward dependences.
//!
//! The Fig. 9 recurrence `a[j][i] = a[j-1][i-1] + i*j` is unrolled once:
//! within an unrolled iteration, S₂ reads what S₁ wrote on a *different
//! processor* (a lexically forward dependence → barrier #1), and across
//! iterations the writes feed the next reads (loop-carried → barrier #2).
//! Exactly as in Fig. 10, the code therefore contains "two distinct
//! barrier regions, one of which extends across loop iterations and the
//! other is entirely included in a single iteration".
//!
//! The experiment compiles both a point-barrier version and the fuzzy
//! reordered version, runs them under cache-miss drift, verifies the
//! computed array against a host reference, and compares stall cycles.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::codegen::{emit_regions, VarMap};
use fuzzy_compiler::deps;
use fuzzy_compiler::lower::lower_assign_at;
use fuzzy_compiler::region::RegionSplit;
use fuzzy_compiler::reorder::reorder;
use fuzzy_compiler::tac::TacBody;
use fuzzy_compiler::transform::unroll::unroll_seq;
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};

const PROCS: usize = 4;
const ROWS: usize = 12; // j runs 1..=9 stepping 2 after unrolling
const COLS: usize = 6; // i runs 1..=4 plus halo

fn fig9() -> LoopNest {
    let j = VarId(0);
    let i = VarId(1);
    let a = ArrayId(0);
    LoopNest {
        arrays: vec![ArrayDecl {
            name: "a".into(),
            dims: vec![ROWS, COLS],
            base: 0,
        }],
        seq_var: j,
        seq_lo: 1,
        seq_hi: 8,
        private_vars: vec![i],
        body: vec![Stmt::Assign(Assign {
            target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
            value: Expr::add(
                Expr::Access(ArrayAccess::new(
                    a,
                    vec![Subscript::var(j, -1), Subscript::var(i, -1)],
                )),
                Expr::mul(Expr::Var(i), Expr::Var(j)),
            ),
        })],
        var_names: vec!["j".into(), "i".into()],
    }
}

/// Host reference for the unrolled semantics: per outer step (j, j+1),
/// all processors run S1 (row j), synchronize, then S2 (row j+1),
/// synchronize.
fn reference() -> Vec<i64> {
    let mut a = vec![0i64; ROWS * COLS];
    let mut j = 1i64;
    while j <= 8 {
        for step in 0..2i64 {
            let row = j + step;
            let prev = a.clone();
            for i in 1..=PROCS as i64 {
                a[(row * COLS as i64 + i) as usize] =
                    prev[((row - 1) * COLS as i64 + (i - 1)) as usize] + i * row;
            }
        }
        j += 2;
    }
    a
}

const R_J: u8 = 1;
const R_I: u8 = 2;
const R_JHI: u8 = 7;

fn vars() -> VarMap {
    let mut v = VarMap::new();
    v.assign(VarId(0), R_J);
    v.assign(VarId(1), R_I);
    v
}

/// Builds one processor's stream. `fuzzy` selects reordered fuzzy regions
/// vs point barriers (single-nop barrier regions).
fn stream(proc: usize, s1: &TacBody, s2: &TacBody, fuzzy: bool) -> Stream {
    let spill = (1 << 14) + proc as i64 * 128;
    let split = |body: &TacBody| -> RegionSplit {
        if fuzzy {
            reorder(body)
        } else {
            // Point: everything in the non-barrier region, barrier is a nop.
            RegionSplit {
                prefix: Vec::new(),
                non_barrier: body.instrs.clone(),
                suffix: Vec::new(),
            }
        }
    };
    let sp1 = split(s1);
    let sp2 = split(s2);
    let mut b = StreamBuilder::new();
    b.fuzzy(Instr::Li { rd: R_J, imm: 1 });
    b.fuzzy(Instr::Li { rd: R_JHI, imm: 8 });
    b.fuzzy(Instr::Li {
        rd: R_I,
        imm: proc as i64 + 1,
    });
    b.label("L1");
    // S1 with barrier #1 (lexically forward) after it.
    emit_regions(
        &mut b,
        &[
            (&sp1.prefix, true),
            (&sp1.non_barrier, false),
            (&sp1.suffix, true),
        ],
        &vars(),
        spill,
    )
    .expect("codegen");
    if !fuzzy || (sp1.suffix.is_empty() && sp1.prefix.is_empty()) {
        // Point barrier, or a reordered split that left no barrier-region
        // instructions around S1: insert the null region.
        b.fuzzy(Instr::Nop);
    }
    // S2 with barrier #2 (loop carried) spanning the back edge.
    emit_regions(
        &mut b,
        &[
            (&sp2.prefix, true),
            (&sp2.non_barrier, false),
            (&sp2.suffix, true),
        ],
        &vars(),
        spill + 48,
    )
    .expect("codegen");
    if !fuzzy {
        b.fuzzy(Instr::Nop);
    }
    b.fuzzy(Instr::Addi {
        rd: R_J,
        rs: R_J,
        imm: 2,
    });
    b.fuzzy_branch(Cond::Le, R_J, R_JHI, "L1");
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

fn run(fuzzy: bool, s1: &TacBody, s2: &TacBody) -> (u64, u64, Vec<i64>) {
    let streams: Vec<Stream> = (0..PROCS).map(|p| stream(p, s1, s2, fuzzy)).collect();
    let mut m = MachineBuilder::new(Program::new(streams))
        .miss_rate(0.3)
        .miss_penalty(25)
        .seed(23)
        .build()
        .expect("loads");
    let out = m.run(100_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    let values = (0..ROWS * COLS).map(|w| m.memory().peek(w)).collect();
    (
        m.stats().total_stall_cycles(),
        m.stats().sync_events,
        values,
    )
}

fn main() {
    let mut export = StatsExport::from_env("lexforward");
    banner(
        "E7: lexically forward dependences, two barriers per iteration",
        "Figs. 8-10 of Gupta, ASPLOS 1989",
    );

    // Unroll Fig. 9 once; analyze the unrolled body.
    let unrolled = unroll_seq(&fig9(), 2);
    let info = deps::analyze(&unrolled.nest);
    let lexforward: Vec<_> = info.lex_forward().cloned().collect();
    println!(
        "\nunrolled body has {} dependences; lexically forward: {}",
        info.deps.len(),
        lexforward.len()
    );
    assert!(
        lexforward.iter().any(|d| d.cross_processor),
        "the Fig. 9 unrolled body must expose a cross-processor \
         lexically forward dependence"
    );

    // All cross-processor dependence endpoints are marked.
    let marked = info.marked_accesses(info.deps.iter().filter(|d| d.cross_processor));
    let assigns = deps::flatten(&unrolled.nest.body);
    let s1 = lower_assign_at(&unrolled.nest, assigns[0], 0, &marked, 1);
    let s2 = lower_assign_at(&unrolled.nest, assigns[1], 1, &marked, s1.next_temp);

    let rs1 = reorder(&s1);
    let rs2 = reorder(&s2);
    println!(
        "barrier regions after reordering: S1 {} + S2 {} instructions \
         (non-barrier: {} + {})\n",
        rs1.barrier_len(),
        rs2.barrier_len(),
        rs1.non_barrier_len(),
        rs2.non_barrier_len()
    );

    let expected = reference();
    let mut t = Table::new(["version", "stall cycles", "sync events", "values correct"]);
    let (stall_pt, sync_pt, vals_pt) = run(false, &s1, &s2);
    t.row([
        "point barriers".to_string(),
        stall_pt.to_string(),
        sync_pt.to_string(),
        (vals_pt == expected).to_string(),
    ]);
    let (stall_fz, sync_fz, vals_fz) = run(true, &s1, &s2);
    t.row([
        "fuzzy (Fig 10)".to_string(),
        stall_fz.to_string(),
        sync_fz.to_string(),
        (vals_fz == expected).to_string(),
    ]);
    println!("{}", t.render());
    export.table("results", &t);
    assert_eq!(
        vals_pt, expected,
        "point version must compute the recurrence"
    );
    assert_eq!(
        vals_fz, expected,
        "fuzzy version must compute the recurrence"
    );
    assert!(
        stall_fz < stall_pt,
        "fuzzy regions should absorb drift ({stall_fz} vs {stall_pt})"
    );
    println!(
        "Reading: both versions compute the same array; the Fig. 10 layout's\n\
         barrier regions absorb the cache-miss drift that the point barriers\n\
         convert into stalls."
    );
    export.finish();
}
