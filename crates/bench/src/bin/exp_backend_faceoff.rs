//! Experiment E15 — backend face-off: topology-aware hierarchy vs the
//! flat barriers.
//!
//! The paper's Sec. 1 frames the software design space as "linear or
//! logarithmic cost in the number of processors". This experiment sweeps
//! every split-phase backend over the processor count and measures what
//! that cost actually looks like on a real (oversubscribed) thread
//! library: mean stall probes per episode, total stall time and arrival
//! spread. The [`fuzzy_barrier::HierBarrier`] rows run with the adaptive
//! stall policy (its default), so the sweep doubles as an end-to-end test
//! of EWMA-driven spin-budget sizing: on a saturated machine the adaptive
//! policy collapses its spin budget and the hierarchy's sharded arrival
//! words keep the remaining probes off any single hot line.
//!
//! Invariant asserted on the default sweep (and recorded in the export):
//! at every `N >= 16` the best hierarchical configuration spends strictly
//! fewer probes per episode than both `CentralBarrier` and
//! `CountingBarrier`.
//!
//! ```text
//! exp_backend_faceoff [--quick] [--stats-json <path>]
//! exp_backend_faceoff --compare <fresh.json> --baseline <base.json>
//!                     [--tolerance <x>]
//! ```
//!
//! Compare mode re-reads two exports and fails (exit 1) if any fresh
//! `probes_per_episode` exceeds its baseline row by more than the
//! multiplicative tolerance (arrival spread is held to `4×` the
//! tolerance — wall-clock spread is far noisier than probe counts).

use fuzzy_barrier::{StallPolicy, TopLevel};
use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sched::static_sched::block;
use fuzzy_sched::{executor::Strategy, run_threaded_with, BarrierChoice, ThreadReport};
use fuzzy_util::Json;

const EPISODES: usize = 100;
const QUICK_EPISODES: usize = 40;
const ITER_COST: u64 = 8;
const REGION_UNITS: u64 = 4;
/// Probe-count slack added on top of the ratio check so near-zero
/// baselines (instant episodes) cannot fail on absolute noise.
const PROBE_SLACK: f64 = 1024.0;
/// Arrival-spread slack, nanoseconds.
const SPREAD_SLACK_NS: f64 = 200_000.0;

/// One backend configuration in the sweep.
struct Contender {
    label: &'static str,
    /// 0 for the flat backends.
    shard_size: usize,
    choice: BarrierChoice,
    policy: StallPolicy,
}

fn contenders() -> Vec<Contender> {
    let flat = StallPolicy::default();
    vec![
        Contender {
            label: "central",
            shard_size: 0,
            choice: BarrierChoice::Central,
            policy: flat,
        },
        Contender {
            label: "counting",
            shard_size: 0,
            choice: BarrierChoice::Counting,
            policy: flat,
        },
        Contender {
            label: "dissemination",
            shard_size: 0,
            choice: BarrierChoice::Dissemination,
            policy: flat,
        },
        Contender {
            label: "tree",
            shard_size: 0,
            choice: BarrierChoice::Tree { fan_in: 2 },
            policy: flat,
        },
        Contender {
            label: "hier/4",
            shard_size: 4,
            choice: BarrierChoice::Hier {
                shard_size: 4,
                top: TopLevel::Dissemination,
            },
            policy: StallPolicy::adaptive(),
        },
        Contender {
            label: "hier/8",
            shard_size: 8,
            choice: BarrierChoice::Hier {
                shard_size: 8,
                top: TopLevel::Tree,
            },
            policy: StallPolicy::adaptive(),
        },
    ]
}

struct Row {
    label: &'static str,
    shard_size: usize,
    procs: usize,
    episodes: u64,
    probes_per_episode: f64,
    stalls: u64,
    stall_ns: u64,
    spread_mean_ns: u64,
    elapsed_ms: f64,
}

fn measure(c: &Contender, procs: usize, episodes: usize) -> Row {
    // One block-assigned iteration of fixed cost per processor per outer
    // step: the work is balanced, so every stall the barrier reports is
    // synchronization cost, not load imbalance.
    let costs: Vec<Vec<u64>> = (0..episodes).map(|_| vec![ITER_COST; procs]).collect();
    let assign = move |_outer: usize| block(procs, procs);
    let report: ThreadReport = run_threaded_with(
        procs,
        &costs,
        &Strategy::Static(&assign),
        REGION_UNITS,
        c.policy,
        c.choice,
    );
    let t = &report.telemetry;
    let episodes = t.base.episodes.max(1);
    Row {
        label: c.label,
        shard_size: c.shard_size,
        procs,
        episodes: t.base.episodes,
        probes_per_episode: t.base.probes as f64 / episodes as f64,
        stalls: t.base.stalls,
        stall_ns: u64::try_from(t.base.stall_time.as_nanos()).unwrap_or(u64::MAX),
        spread_mean_ns: u64::try_from(t.spread.mean().as_nanos()).unwrap_or(u64::MAX),
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
    }
}

fn row_json(r: &Row) -> Json {
    Json::obj()
        .field("backend", r.label)
        .field("shard_size", r.shard_size)
        .field("procs", r.procs)
        .field("episodes", r.episodes)
        .field("probes_per_episode", r.probes_per_episode)
        .field("stalls", r.stalls)
        .field("stall_ns", r.stall_ns)
        .field("spread_mean_ns", r.spread_mean_ns)
        .field("elapsed_ms", r.elapsed_ms)
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_backend_faceoff [--quick] [--stats-json <path>]\n\
         \x20      exp_backend_faceoff --compare <fresh.json> --baseline <base.json>\n\
         \x20                          [--tolerance <x>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut compare: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = 8.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("exp_backend_faceoff: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--compare" => compare = Some(value("--compare")),
            "--baseline" => baseline = Some(value("--baseline")),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("exp_backend_faceoff: --tolerance wants a number");
                    usage();
                });
            }
            "--stats-json" => {
                let _ = value("--stats-json"); // consumed again by StatsExport
            }
            other if other.starts_with("--stats-json=") => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("exp_backend_faceoff: unknown argument {other:?}");
                usage();
            }
        }
    }

    if let Some(fresh) = compare {
        let Some(base) = baseline else {
            eprintln!("exp_backend_faceoff: --compare needs --baseline");
            usage();
        };
        std::process::exit(run_compare(&fresh, &base, tolerance));
    }
    if baseline.is_some() {
        eprintln!("exp_backend_faceoff: --baseline only makes sense with --compare");
        usage();
    }

    run_sweep(quick);
}

fn run_sweep(quick: bool) {
    let mut export = StatsExport::from_env("backend_faceoff");
    banner(
        "E15: backend face-off — hierarchical sharding + adaptive stalls",
        "Sec. 1 cost claims of Gupta, ASPLOS 1989",
    );
    let (ns, episodes): (&[usize], usize) = if quick {
        (&[2, 8, 16], QUICK_EPISODES)
    } else {
        (&[2, 4, 8, 16, 32], EPISODES)
    };
    println!(
        "\n{episodes} episodes per configuration, {} work units + {REGION_UNITS} region units\n\
         per processor per episode; hier rows use the adaptive stall policy.\n",
        ITER_COST
    );

    let mut t = Table::new([
        "backend",
        "procs",
        "probes/episode",
        "stalls",
        "stall ms",
        "spread mean us",
        "elapsed ms",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for &n in ns {
        for c in contenders() {
            let row = measure(&c, n, episodes);
            t.row([
                row.label.to_string(),
                row.procs.to_string(),
                format!("{:.1}", row.probes_per_episode),
                row.stalls.to_string(),
                format!("{:.2}", row.stall_ns as f64 / 1e6),
                format!("{:.1}", row.spread_mean_ns as f64 / 1e3),
                format!("{:.1}", row.elapsed_ms),
            ]);
            rows.push(row);
        }
    }
    println!("{}", t.render());

    // The tentpole claim: sharded arrivals + adaptive stalling beat both
    // single-hot-word designs once the group is large.
    let mut asserted_at: Vec<usize> = Vec::new();
    let mut beats_counting = true;
    let mut beats_central = true;
    for &n in ns.iter().filter(|&&n| n >= 16) {
        let probes = |label: &str| -> f64 {
            rows.iter()
                .filter(|r| r.procs == n && r.label == label)
                .map(|r| r.probes_per_episode)
                .next()
                .expect("swept backend present")
        };
        let best_hier = rows
            .iter()
            .filter(|r| r.procs == n && r.shard_size > 0)
            .map(|r| r.probes_per_episode)
            .fold(f64::INFINITY, f64::min);
        let counting = probes("counting");
        let central = probes("central");
        println!(
            "N={n}: best hier {best_hier:.1} probes/episode vs counting {counting:.1}, \
             central {central:.1}"
        );
        beats_counting &= best_hier < counting;
        beats_central &= best_hier < central;
        asserted_at.push(n);
    }
    assert!(
        beats_counting && beats_central,
        "hier must spend strictly fewer probes/episode than counting and central at N >= 16"
    );
    if !asserted_at.is_empty() {
        println!("\nhier < counting and hier < central at every swept N >= 16: OK");
    }

    export.section(
        "config",
        Json::obj()
            .field("episodes", episodes)
            .field("region_units", REGION_UNITS)
            .field("quick", quick),
    );
    export.section("sweep", Json::Arr(rows.iter().map(row_json).collect()));
    export.section(
        "verdict",
        Json::obj()
            .field(
                "asserted_at",
                Json::Arr(asserted_at.iter().map(|&n| Json::Num(n as f64)).collect()),
            )
            .field("hier_beats_counting", beats_counting)
            .field("hier_beats_central", beats_central),
    );
    export.finish();
}

// ---------------------------------------------------------------------------
// Compare mode (the perf gate)
// ---------------------------------------------------------------------------

fn load_sweep(path: &str) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let sweep = doc
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no `sweep` array"))?;
    Ok(sweep.to_vec())
}

fn row_key(row: &Json) -> Option<(String, u64)> {
    let backend = match row.get("backend") {
        Some(Json::Str(s)) => s.clone(),
        _ => return None,
    };
    let procs = row.get("procs").and_then(Json::as_f64)? as u64;
    Some((backend, procs))
}

fn metric(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

fn run_compare(fresh_path: &str, base_path: &str, tolerance: f64) -> i32 {
    let (fresh, base) = match (load_sweep(fresh_path), load_sweep(base_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for err in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("exp_backend_faceoff: {err}");
            }
            return 1;
        }
    };
    // (metric, multiplicative tolerance, absolute slack) — spread is held
    // to a looser bound because wall-clock interarrival times on a shared
    // box swing far more than probe counts do.
    let checks = [
        ("probes_per_episode", tolerance, PROBE_SLACK),
        ("spread_mean_ns", tolerance * 4.0, SPREAD_SLACK_NS),
    ];
    let mut failures = 0usize;
    let mut compared = 0usize;
    for fresh_row in &fresh {
        let Some(key) = row_key(fresh_row) else {
            eprintln!("exp_backend_faceoff: {fresh_path}: malformed sweep row");
            failures += 1;
            continue;
        };
        let Some(base_row) = base.iter().find(|r| row_key(r).as_ref() == Some(&key)) else {
            // The baseline is the full sweep; a quick fresh run must be a
            // subset of it.
            eprintln!(
                "exp_backend_faceoff: no baseline row for {}@{} — regenerate the baseline",
                key.0, key.1
            );
            failures += 1;
            continue;
        };
        compared += 1;
        for (name, tol, slack) in checks {
            let (Some(f), Some(b)) = (metric(fresh_row, name), metric(base_row, name)) else {
                eprintln!(
                    "exp_backend_faceoff: missing metric {name} for {}@{}",
                    key.0, key.1
                );
                failures += 1;
                continue;
            };
            let allowed = b * tol + slack;
            if f > allowed {
                eprintln!(
                    "REGRESSION {}@{} {name}: fresh {f:.1} > allowed {allowed:.1} \
                     (baseline {b:.1} x{tol:.1} + {slack:.0})",
                    key.0, key.1
                );
                failures += 1;
            }
        }
    }
    if compared == 0 {
        eprintln!("exp_backend_faceoff: nothing compared — empty sweep?");
        return 1;
    }
    if failures == 0 {
        println!(
            "exp_backend_faceoff: {compared} row(s) within tolerance x{tolerance:.1} of {base_path}"
        );
        0
    } else {
        eprintln!("exp_backend_faceoff: {failures} gate failure(s)");
        1
    }
}
