//! Experiment E8 — Fig. 11: static scheduling of parallel loops.
//!
//! Four inner iterations on three processors: someone must take two.
//! Three schedules are compared over 30 outer iterations:
//!
//! * (a) fixed block — the same processor always takes the extra
//!   iteration, the other two idle every outer iteration;
//! * (b) rotated block — the extra iteration takes turns, so work
//!   equalizes *over* outer iterations, but within each outer iteration
//!   a point barrier still idles two processors;
//! * (c) rotated + fuzzy — with barrier regions as large as one iteration
//!   of work (what unrolling + reordering achieves, Fig. 11(c)), the
//!   within-iteration imbalance is absorbed and idling vanishes.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_compiler::transform::unroll::divisibility_factor;
use fuzzy_sched::executor::simulate_static;
use fuzzy_sched::static_sched::{block, rotated_block};
use fuzzy_sched::workload::CostModel;

const PROCS: usize = 3;
const INNER: usize = 4;
const OUTER: usize = 30;
const COST: u64 = 100; // units per inner iteration

fn main() {
    let mut export = StatsExport::from_env("static_sched");
    banner(
        "E8: static scheduling — rotation, unrolling and fuzzy regions",
        "Fig. 11 of Gupta, ASPLOS 1989",
    );
    println!(
        "\n{INNER} inner iterations x {OUTER} outer iterations on {PROCS} processors, \
         {COST} units each.\nunroll factor to reach divisibility: {}\n",
        divisibility_factor(INNER, PROCS)
    );

    let costs = CostModel::Uniform { cost: COST }.costs(INNER, 0);

    let mut fixed_idle = 0u64;
    let mut rotated_idle = 0u64;
    let mut rotated_work: Vec<u64> = vec![0; PROCS];
    let mut fixed_work: Vec<u64> = vec![0; PROCS];
    let mut fuzzy_stall = 0u64;
    for outer in 0..OUTER {
        let fixed = simulate_static(&block(INNER, PROCS), &costs);
        fixed_idle += fixed.total_point_idle();
        for (p, &f) in fixed.finish.iter().enumerate() {
            fixed_work[p] += f;
        }
        let rot = simulate_static(&rotated_block(INNER, PROCS, outer), &costs);
        rotated_idle += rot.total_point_idle();
        for (p, &f) in rot.finish.iter().enumerate() {
            rotated_work[p] += f;
        }
        // Fig. 11(c): barrier regions large enough to hold ~one iteration
        // of reordered work per processor.
        fuzzy_stall += rot.total_fuzzy_stall(COST);
    }

    let mut t = Table::new([
        "schedule",
        "total idle (units)",
        "idle %",
        "per-proc total work",
    ]);
    let total_work = (INNER * OUTER) as u64 * COST;
    let pct = |idle: u64| format!("{:.1}%", 100.0 * idle as f64 / total_work as f64);
    t.row([
        "(a) fixed block".to_string(),
        fixed_idle.to_string(),
        pct(fixed_idle),
        format!("{fixed_work:?}"),
    ]);
    t.row([
        "(b) rotated".to_string(),
        rotated_idle.to_string(),
        pct(rotated_idle),
        format!("{rotated_work:?}"),
    ]);
    t.row([
        "(c) rotated + fuzzy".to_string(),
        fuzzy_stall.to_string(),
        pct(fuzzy_stall),
        format!("{rotated_work:?}"),
    ]);
    println!("{}", t.render());
    export.table("results", &t);

    assert_eq!(
        fixed_idle, rotated_idle,
        "rotation alone moves, not removes, idle"
    );
    assert!(
        fixed_work.iter().max() != fixed_work.iter().min(),
        "fixed block loads one processor more"
    );
    assert!(
        rotated_work.iter().all(|&w| w == rotated_work[0]),
        "rotation equalizes total work: {rotated_work:?}"
    );
    assert_eq!(
        fuzzy_stall, 0,
        "fuzzy regions eliminate the idling (Fig 11c)"
    );

    println!(
        "Reading: rotation equalizes *total* work (column 4) but a point\n\
         barrier still idles two processors each outer iteration; with\n\
         barrier regions of one iteration's work (via unrolling+reordering)\n\
         the idling disappears entirely — the paper's Fig. 11(c)."
    );
    export.finish();
}
