//! Experiment E9 — Fig. 12: run-time scheduling of loop iterations.
//!
//! The inner trip count is unknown at compile time, so iterations are
//! dispensed at run time. Compared policies: block-static (oracle trip
//! count), pure self-scheduling, fixed chunks, and Guided Self-Scheduling
//! — GSS "attempts to distribute the work among the processors so that
//! they complete execution at about the same time", minimizing idling at
//! the barrier between outer iterations.
//!
//! The fuzzy barrier composes with all of them: the multi-version loop
//! bodies of Fig. 12 give every processor barrier-region work, so the
//! residual finish-time skew is absorbed.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_compiler::transform::multiversion::{chunk_versions, LoopVersion};
use fuzzy_sched::executor::{simulate_dynamic, simulate_static};
use fuzzy_sched::self_sched::{
    ChunkPolicy, Factoring, FixedChunk, GuidedSelfScheduling, SelfScheduling, Trapezoid,
};
use fuzzy_sched::static_sched::block;
use fuzzy_sched::workload::CostModel;

const PROCS: usize = 4;
const ITERS: usize = 120;
const DISPATCH: u64 = 3; // cost of one trip through the scheduler
const REGION: u64 = 30; // fuzzy barrier-region work per processor

fn main() {
    let mut export = StatsExport::from_env("runtime_sched");
    banner(
        "E9: run-time scheduling — self-scheduling, chunking, GSS",
        "Fig. 12 of Gupta, ASPLOS 1989",
    );
    println!(
        "\n{ITERS} iterations, {PROCS} processors, dispatch cost {DISPATCH}, \
         linearly growing iteration costs (triangular workload).\n"
    );

    let costs = CostModel::Linear { base: 2, slope: 1 }.costs(ITERS, 17);

    let mut t = Table::new([
        "policy",
        "makespan",
        "dispatches",
        "point idle",
        "fuzzy stall (region=30)",
    ]);

    let static_run = simulate_static(&block(ITERS, PROCS), &costs);
    t.row([
        "static block".to_string(),
        static_run.makespan().to_string(),
        PROCS.to_string(),
        static_run.total_point_idle().to_string(),
        static_run.total_fuzzy_stall(REGION).to_string(),
    ]);

    let policies: Vec<Box<dyn ChunkPolicy>> = vec![
        Box::new(SelfScheduling),
        Box::new(FixedChunk(8)),
        Box::new(Factoring),
        Box::new(Trapezoid),
        Box::new(GuidedSelfScheduling),
    ];
    let mut gss_idle = u64::MAX;
    let mut ss_dispatches = 0usize;
    let mut gss_dispatches = 0usize;
    for policy in &policies {
        let run = simulate_dynamic(PROCS, &costs, &**policy, DISPATCH);
        if policy.name() == "gss" {
            gss_idle = run.total_point_idle();
            gss_dispatches = run.dispatches.iter().sum();
        }
        if policy.name() == "self" {
            ss_dispatches = run.dispatches.iter().sum();
        }
        t.row([
            policy.name().to_string(),
            run.makespan().to_string(),
            run.dispatches.iter().sum::<usize>().to_string(),
            run.total_point_idle().to_string(),
            run.total_fuzzy_stall(REGION).to_string(),
        ]);
    }
    println!("{}", t.render());
    export.table("policies", &t);

    assert!(
        gss_idle <= static_run.total_point_idle(),
        "GSS should idle no more than static block"
    );
    assert!(
        gss_dispatches < ss_dispatches,
        "GSS should dispatch far less often than pure self-scheduling"
    );

    // Fig. 12's four compiled versions, as selected for a processor that
    // received a chunk of k iterations.
    println!("--- multi-version loop selection (Fig. 12) ---\n");
    let mut t = Table::new(["chunk size", "versions chosen"]);
    for k in 1..=4usize {
        let versions: Vec<&str> = chunk_versions(k)
            .iter()
            .map(|v| match v {
                LoopVersion::BarrierBefore => "v1:barrier-before",
                LoopVersion::BarrierAfter => "v2:barrier-after",
                LoopVersion::NoBarrier => "v3:none",
                LoopVersion::BarrierBoth => "v4:both",
            })
            .collect();
        t.row([k.to_string(), versions.join(", ")]);
    }
    println!("{}", t.render());
    export.table("multi_version", &t);
    println!(
        "Reading: GSS approaches the minimum idle with a fraction of the\n\
         dispatches of pure self-scheduling, and the fuzzy barrier's region\n\
         work absorbs the residual skew (last column) for every policy.\n\
         The four versions reproduce the paper's run-time dispatch: first\n\
         iteration starts with a barrier region, last ends with one,\n\
         middles have none, singletons have both."
    );
    export.finish();
}
