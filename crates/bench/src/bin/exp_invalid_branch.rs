//! Experiment E2 — Fig. 2: the invalid branch.
//!
//! A branch that transfers control directly from barrier₁ into barrier₂
//! makes processor P₁ cross **both** barriers with a single
//! synchronization, deadlocking its partner at barrier₂. Three runs:
//!
//! 1. the static validator rejects the program (the paper: "the compiler
//!    should not generate code where control can be transferred directly
//!    from one barrier to another");
//! 2. with validation disabled, the machine deadlocks exactly as the
//!    paper predicts;
//! 3. giving the two barriers distinct **tags** (Sec. 5/6) removes the
//!    ambiguity: the paper notes "the above problem will not arise in an
//!    implementation which explicitly specifies unique identifiers for
//!    barriers in the code" — with tags, the mis-matched synchronization
//!    attempt is simply never satisfied and the bug is confined.

use fuzzy_bench::{banner, StatsExport};
use fuzzy_sim::assembler::assemble_program;
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_util::Json;

/// P0 takes the invalid branch from barrier 1 into barrier 2; P1
/// synchronizes at both barriers properly.
const INVALID: &str = "\
.stream
    li r1, 1
B:  nop            ; barrier 1
B:  j skip         ; INVALID: barrier -> barrier (skips UNSHADED)
    addi r1, r1, 1 ; non-barrier region between the barriers
skip:
B:  nop            ; barrier 2
    halt
.stream
    li r1, 1
B:  nop            ; barrier 1
    addi r1, r1, 1 ; non-barrier region
B:  nop            ; barrier 2
    halt
";

/// Same control flow, but each barrier gets its own tag and P0 announces
/// which barrier it is at; the two processors only match at equal tags.
const TAGGED: &str = "\
.stream
    li r1, 1
    settag 1
B:  nop            ; barrier 1 (tag 1)
B:  j skip
    addi r1, r1, 1
skip:
B:  settag 2       ; barrier 2 announces its identity
B:  nop
    halt
.stream
    li r1, 1
    settag 1
B:  nop            ; barrier 1 (tag 1)
    addi r1, r1, 1
    settag 2
B:  nop            ; barrier 2 (tag 2)
    halt
";

fn main() {
    let mut export = StatsExport::from_env("invalid_branch");
    banner("E2: the invalid branch", "Fig. 2 of Gupta, ASPLOS 1989");

    let program = assemble_program(INVALID).expect("assembles");

    // 1. Static validation.
    match MachineBuilder::new(program.clone()).build() {
        Err(e) => println!("validator: rejected as expected\n  -> {e}"),
        Ok(_) => println!("validator: UNEXPECTEDLY accepted the invalid program"),
    }

    // 2. Run anyway.
    let mut m = MachineBuilder::new(program)
        .validate(false)
        .build()
        .expect("load without validation");
    let out = m.run(100_000).expect("no memory faults");
    println!(
        "\nrunning it anyway: outcome after {} cycles = {:?}",
        out.cycles(),
        out
    );
    println!(
        "  P0 synchronized {} time(s) and halted: {}",
        m.proc_stats(0).syncs,
        m.procs()[0].halted
    );
    println!(
        "  P1 synchronized {} time(s) and halted: {}  (stalled {} cycles at barrier 2)",
        m.proc_stats(1).syncs,
        m.procs()[1].halted,
        m.proc_stats(1).stall_cycles
    );
    assert!(out.is_deadlock(), "the paper predicts deadlock");
    let deadlock_stats = m.stats();

    // 3. Tags disambiguate the barriers.
    let tagged = assemble_program(TAGGED).expect("assembles");
    let mut m = MachineBuilder::new(tagged)
        .validate(false)
        .build()
        .expect("load");
    let out = m.run(100_000).expect("no memory faults");
    if export.enabled() {
        export.section(
            "invalid_run",
            Json::obj()
                .field("deadlocked", true)
                .field("machine", fuzzy_bench::sim_stats_json(&deadlock_stats)),
        );
        export.section(
            "tagged_run",
            Json::obj()
                .field("deadlocked", false)
                .field("machine", fuzzy_bench::sim_stats_json(&m.stats())),
        );
    }
    export.finish();
    println!(
        "\nwith unique tags per barrier: outcome = {out:?} \
         (the bogus cross-barrier match can no longer fire;\n\
         P0 waits at tag-2 until P1 also reaches tag 2, so both barriers\n\
         keep their identity: P0 syncs {}x, P1 syncs {}x)",
        m.proc_stats(0).syncs,
        m.proc_stats(1).syncs,
    );
}
