//! `validate_stats` — checks a `--stats-json` export against its schema.
//!
//! ```text
//! validate_stats <file.json>
//!                [--schema encore|fault_recovery|backend_faceoff|fuzz_campaign|async_scale|net_scale|chaos_churn]
//! ```
//!
//! Parses the file with the in-tree JSON parser and validates key names
//! and value types against the expected export shape. Exit codes:
//! 0 = conforms, 1 = schema violations or unreadable/unparsable input,
//! 2 = usage error.

use fuzzy_bench::schema::{
    async_scale_shape, backend_faceoff_shape, chaos_churn_shape, encore_shape,
    fault_recovery_shape, fuzz_campaign_shape, net_scale_shape, validate, Shape,
};
use fuzzy_util::Json;

fn usage() -> ! {
    eprintln!(
        "usage: validate_stats <file.json> \
         [--schema encore|fault_recovery|backend_faceoff|fuzz_campaign|async_scale|net_scale|\
         chaos_churn]"
    );
    std::process::exit(2);
}

fn shape_for(name: &str) -> Option<Shape> {
    match name {
        "encore" => Some(encore_shape()),
        "fault_recovery" => Some(fault_recovery_shape()),
        "backend_faceoff" => Some(backend_faceoff_shape()),
        "fuzz_campaign" => Some(fuzz_campaign_shape()),
        "async_scale" => Some(async_scale_shape()),
        "net_scale" => Some(net_scale_shape()),
        "chaos_churn" => Some(chaos_churn_shape()),
        _ => None,
    }
}

fn main() {
    let mut file = None;
    let mut schema_name = "encore".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next() {
                Some(v) => schema_name = v,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("validate_stats: unknown flag {other:?}");
                usage();
            }
            path if file.is_none() => file = Some(path.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = file else { usage() };
    let Some(shape) = shape_for(&schema_name) else {
        eprintln!(
            "validate_stats: unknown schema {schema_name:?} \
             (have: encore, fault_recovery, backend_faceoff, fuzz_campaign, async_scale, \
             net_scale, chaos_churn)"
        );
        usage();
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("validate_stats: cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(err) => {
            eprintln!("validate_stats: {path}: malformed JSON: {err}");
            std::process::exit(1);
        }
    };
    let errors = validate(&doc, &shape);
    if errors.is_empty() {
        println!("validate_stats: {path} conforms to schema {schema_name:?}");
    } else {
        eprintln!(
            "validate_stats: {path} violates schema {schema_name:?} ({} problem(s)):",
            errors.len()
        );
        for error in &errors {
            eprintln!("  {error}");
        }
        std::process::exit(1);
    }
}
