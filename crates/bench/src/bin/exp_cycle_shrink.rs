//! Experiment E13 — cycle shrinking (the paper's reference \[5\]).
//!
//! Sec. 1: "Application of transformations such as cycle shrinking depend
//! heavily upon use of barriers. Availability of an efficient barrier
//! mechanism makes their application practical."
//!
//! A serial recurrence with carried dependence distance *d* = 3 is
//! transformed so that groups of 3 consecutive iterations run in parallel
//! on 3 processors, with a fuzzy barrier between groups. The experiment
//! verifies the transformed program computes exactly the serial result
//! and measures the speedup — which only exists because the per-group
//! barrier is nearly free.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::deps;
use fuzzy_compiler::driver::{compile_nest_with_marks, CompileOptions};
use fuzzy_compiler::transform::cycle_shrink::shrink;
use fuzzy_sim::builder::MachineBuilder;

const N: i64 = 60; // iterations (k = 3 .. 3+N-1)

/// `for k seq: a[k] = a[k-3] * 2 + k` — distance-3 recurrence.
fn nest() -> LoopNest {
    let k = VarId(0);
    let a = ArrayId(0);
    LoopNest {
        arrays: vec![ArrayDecl {
            name: "a".into(),
            dims: vec![128],
            base: 0,
        }],
        seq_var: k,
        seq_lo: 3,
        seq_hi: 3 + N - 1,
        private_vars: vec![],
        body: vec![Stmt::Assign(Assign {
            target: ArrayAccess::new(a, vec![Subscript::var(k, 0)]),
            value: Expr::add(
                Expr::mul(
                    Expr::Access(ArrayAccess::new(a, vec![Subscript::var(k, -3)])),
                    Expr::Const(2),
                ),
                Expr::Var(k),
            ),
        })],
        var_names: vec!["k".into()],
    }
}

fn reference() -> Vec<i64> {
    let mut a = vec![0i64; 128];
    a[0] = 5;
    a[1] = 7;
    a[2] = 11;
    for k in 3..(3 + N) as usize {
        a[k] = a[k - 3] * 2 + k as i64;
    }
    a
}

fn run(
    per_proc: &[Vec<(VarId, i64)>],
    opts: &CompileOptions,
    marked: &std::collections::BTreeSet<fuzzy_compiler::deps::AccessRef>,
) -> (u64, Vec<i64>) {
    let compiled = compile_nest_with_marks(&nest(), per_proc, marked, opts).expect("compiles");
    let mut m = MachineBuilder::new(compiled.program)
        .build()
        .expect("loads");
    m.memory_mut().poke(0, 5);
    m.memory_mut().poke(1, 7);
    m.memory_mut().poke(2, 11);
    let out = m.run(100_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    let values = (0..128).map(|w| m.memory().peek(w)).collect();
    (m.stats().cycles, values)
}

fn main() {
    let mut export = StatsExport::from_env("cycle_shrink");
    banner(
        "E13: cycle shrinking — parallel groups between fuzzy barriers",
        "Sec. 1 of Gupta, ASPLOS 1989 (transformation [5])",
    );

    let info = deps::analyze(&nest());
    let shrunk = shrink(&info).expect("the recurrence has distance 3");
    // N = 60 divides by 3; a ragged trip count would deadlock the final
    // group barrier (see `Shrunk::applies_to`).
    assert!(
        shrunk.applies_to(&nest()),
        "trip count must divide by group"
    );
    println!(
        "\ncarried dependence distance: {} -> groups of {} iterations run in parallel\n",
        shrunk.group_size, shrunk.group_size
    );

    // Serial: one processor, step 1 (no useful marks needed, but keep the
    // same marked set so both versions compile identical region shapes).
    let marked = shrunk.marked(&info);
    let k = VarId(0);
    let serial_inits = vec![vec![(k, 3i64)]];
    let (serial_cycles, serial_vals) = run(&serial_inits, &CompileOptions::default(), &marked);

    // Shrunk: group_size processors, step = group_size.
    let (shrunk_cycles, shrunk_vals) = run(
        &shrunk.per_proc_inits(&nest()),
        &shrunk.options(CompileOptions::default()),
        &marked,
    );

    let expected = reference();
    let mut t = Table::new(["version", "procs", "cycles", "matches serial reference"]);
    t.row([
        "serial".to_string(),
        "1".to_string(),
        serial_cycles.to_string(),
        (serial_vals == expected).to_string(),
    ]);
    t.row([
        "cycle-shrunk".to_string(),
        shrunk.group_size.to_string(),
        shrunk_cycles.to_string(),
        (shrunk_vals == expected).to_string(),
    ]);
    println!("{}", t.render());
    export.table("results", &t);
    assert_eq!(serial_vals, expected);
    assert_eq!(shrunk_vals, expected);
    assert!(
        (shrunk_cycles as f64) < serial_cycles as f64 / 1.8,
        "shrinking 3-wide should approach 3x ({serial_cycles} -> {shrunk_cycles})"
    );
    println!(
        "speedup: {:.2}x on {} processors\n",
        serial_cycles as f64 / shrunk_cycles as f64,
        shrunk.group_size
    );
    println!(
        "Reading: the distance-3 recurrence runs 3 iterations at a time in\n\
         parallel; the barrier between groups costs no instructions, which\n\
         is exactly what makes the transformation pay off."
    );
    export.finish();
}
