//! Experiment E6 — Fig. 7: if-statements in barrier regions.
//!
//! Each iteration runs S1 and then an if-statement whose branches do very
//! different amounts of work; the two processors take opposite branches
//! each iteration (alternating by parity), so their iteration lengths
//! differ but their *total* work is equal.
//!
//! * Fig. 7(b)(i): with a single-instruction barrier after the
//!   if-statement, the processor on the short path stalls every iteration.
//! * Fig. 7(b)(ii): with the **entire if-statement inside the barrier
//!   region**, "even if the two processors take different paths they may
//!   not have to stall".

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};

const ITERS: i64 = 50;
const S1_WORK: i64 = 10;
const LONG: i64 = 40;
const SHORT: i64 = 4;

/// Emits a busy loop of `iters` iterations using registers r10/r11.
fn busy(b: &mut StreamBuilder, iters: i64, barrier: bool, label: &str) {
    let op = |b: &mut StreamBuilder, i: Instr| {
        b.op(i, barrier);
    };
    op(b, Instr::Li { rd: 10, imm: 0 });
    op(b, Instr::Li { rd: 11, imm: iters });
    b.label(label);
    op(
        b,
        Instr::Addi {
            rd: 10,
            rs: 10,
            imm: 1,
        },
    );
    if barrier {
        b.fuzzy_branch(Cond::Lt, 10, 11, label);
    } else {
        b.plain_branch(Cond::Lt, 10, 11, label);
    }
}

/// One processor's stream. `proc` flips which parity takes the long
/// branch; `fuzzy_if` selects Fig. 7(b)(ii) (if-statement inside the
/// barrier region) vs (b)(i) (point barrier after it).
fn stream(proc: i64, fuzzy_if: bool) -> Stream {
    let mut b = StreamBuilder::new();
    b.plain(Instr::Li { rd: 1, imm: 0 }); // k
    b.plain(Instr::Li { rd: 2, imm: ITERS });
    b.label("loop");
    // S1: common work (non-barrier; it is the marked computation).
    busy(&mut b, S1_WORK, false, "s1");
    // cond = (k + proc) even ?
    let bit = |b: &mut StreamBuilder, barrier: bool| {
        let op = |b: &mut StreamBuilder, i: Instr| {
            b.op(i, barrier);
        };
        op(
            b,
            Instr::Addi {
                rd: 3,
                rs: 1,
                imm: proc,
            },
        );
        op(
            b,
            Instr::Divi {
                rd: 4,
                rs: 3,
                imm: 2,
            },
        );
        op(
            b,
            Instr::Muli {
                rd: 4,
                rs: 4,
                imm: 2,
            },
        );
    };
    bit(&mut b, fuzzy_if);
    if fuzzy_if {
        b.fuzzy_branch(Cond::Eq, 3, 4, "long");
    } else {
        b.plain_branch(Cond::Eq, 3, 4, "long");
    }
    // short branch (S3)
    busy(&mut b, SHORT, fuzzy_if, "s3");
    b.jump("join", fuzzy_if);
    b.label("long"); // S2
    busy(&mut b, LONG, fuzzy_if, "s2");
    b.label("join");
    if fuzzy_if {
        // The whole if-statement was the barrier region; close the
        // iteration with the loop control still inside it.
        b.fuzzy(Instr::Nop);
    } else {
        // Point barrier: a single-instruction barrier region.
        b.fuzzy(Instr::Nop);
    }
    b.fuzzy(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.fuzzy_branch(Cond::Lt, 1, 2, "loop");
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

fn run(fuzzy_if: bool) -> (u64, u64, u64) {
    let streams = vec![stream(0, fuzzy_if), stream(1, fuzzy_if)];
    let mut m = MachineBuilder::new(Program::new(streams))
        .build()
        .expect("loads");
    let out = m.run(10_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    let s = m.stats();
    (s.cycles, s.total_stall_cycles(), s.sync_events)
}

fn main() {
    let mut export = StatsExport::from_env("variable_streams");
    banner(
        "E6: variable-length streams — if-statements in barrier regions",
        "Fig. 7 of Gupta, ASPLOS 1989",
    );
    println!(
        "\n{ITERS} iterations; S1 = {S1_WORK} iter loop; branches: long = {LONG}, \
         short = {SHORT};\nprocessors take opposite branches each iteration.\n"
    );
    let mut t = Table::new([
        "barrier placement",
        "cycles",
        "stall cycles",
        "stalls/iteration",
        "syncs",
    ]);
    let (c1, s1, e1) = run(false);
    t.row([
        "point after if (Fig 7b-i)".to_string(),
        c1.to_string(),
        s1.to_string(),
        format!("{:.1}", s1 as f64 / ITERS as f64),
        e1.to_string(),
    ]);
    let (c2, s2, e2) = run(true);
    t.row([
        "if inside region (Fig 7b-ii)".to_string(),
        c2.to_string(),
        s2.to_string(),
        format!("{:.1}", s2 as f64 / ITERS as f64),
        e2.to_string(),
    ]);
    println!("{}", t.render());
    export.table("results", &t);
    println!(
        "Reading: with the if-statement inside the barrier region the two\n\
         processors' opposite-branch skew is absorbed; with a point barrier\n\
         the short-path processor stalls every iteration."
    );
    assert!(s2 < s1 / 4, "fuzzy if-statement should remove most stalls");
    export.finish();
}
