//! Experiment EF — fault injection and watchdog recovery.
//!
//! The paper's hardware waits forever: a processor whose ready line never
//! reaches the broadcast network stalls its partners indefinitely. This
//! experiment injects exactly that fault into the simulated machine and
//! measures the cost of the recovery mechanism layered on top — a
//! per-unit *watchdog register* that, after a configurable cycle budget of
//! ready-but-unsynchronized waiting, evicts the non-responsive partner
//! from every barrier mask (the Sec. 5 mask update applied to a failed
//! stream).
//!
//! Three runs:
//!
//! 1. **Stall sweep** — a processor's broadcast is severed mid-run; the
//!    survivors' watchdogs (budget swept over powers of two) must evict it
//!    and finish their remaining episodes. Recovery latency is the cycle
//!    count from watchdog expiry to the survivors' next synchronization.
//!    A larger budget tolerates more skew but stretches the outage.
//! 2. **Transient delay** — the same line heals before the (generous)
//!    budget runs out: no eviction may fire.
//! 3. **Stutter** — a flaky line drops most broadcasts; under a tight
//!    budget the watchdog treats it as dead. Deterministic per seed.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::program::{Program, StreamBuilder};
use fuzzy_sim::{BarrierUnit, FaultPlan, Instr, Machine, ReadyFault, RunOutcome};
use fuzzy_util::Json;

/// Participants per run.
const PROCS: usize = 4;
/// Barrier episodes each stream executes.
const EPISODES: i64 = 6;
/// The processor whose broadcast is faulted.
const VICTIM: usize = 3;
/// Cycle at which the fault switches on (mid-run: a couple of episodes in).
const ONSET: u64 = 20;

/// One stream: `EPISODES` iterations of a short work phase followed by a
/// two-instruction barrier region (lib-doc loop shape).
fn stream() -> fuzzy_sim::Stream {
    let mut b = StreamBuilder::new();
    b.plain(Instr::Li { rd: 1, imm: 0 });
    b.plain(Instr::Li {
        rd: 2,
        imm: EPISODES,
    });
    b.label("loop");
    b.plain(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.plain(Instr::Nop);
    b.fuzzy(Instr::Nop);
    b.fuzzy_branch(fuzzy_sim::Cond::Lt, 1, 2, "loop");
    b.plain(Instr::Halt);
    b.finish().expect("valid stream")
}

/// All-to-all units under tag 1, each with the given watchdog budget
/// (`None` = the paper's hardware, waiting forever).
fn units(budget: Option<u64>) -> Vec<BarrierUnit> {
    (0..PROCS)
        .map(|i| {
            let mask = ((1u64 << PROCS) - 1) & !(1u64 << i);
            let unit = BarrierUnit::new(mask, 1);
            match budget {
                Some(b) => unit.with_watchdog(b),
                None => unit,
            }
        })
        .collect()
}

fn machine(budget: Option<u64>, fault: ReadyFault) -> Machine {
    let program = Program::new((0..PROCS).map(|_| stream()).collect());
    let mut m = MachineBuilder::new(program)
        .units(units(budget))
        .build()
        .expect("valid program");
    m.inject_ready_fault(FaultPlan {
        victim: VICTIM,
        onset: ONSET,
        fault,
    });
    m
}

fn outcome_name(out: &RunOutcome) -> &'static str {
    match out {
        RunOutcome::Halted { .. } => "halted",
        RunOutcome::Deadlock { .. } => "deadlock",
        RunOutcome::CycleLimit { .. } => "cycle-limit",
    }
}

/// Summarizes one run as a JSON section: eviction count, sync events,
/// total cycles and how the run ended.
fn run_summary(m: &Machine, out: &RunOutcome) -> Json {
    Json::obj()
        .field("evictions", m.evictions().len())
        .field("sync_events", m.stats().sync_events)
        .field("cycles", out.cycles())
        .field("outcome", outcome_name(out))
}

fn main() {
    let mut export = StatsExport::from_env("fault_recovery");
    banner(
        "EF: ready-line faults and watchdog eviction",
        "the Sec. 5 mask update, applied to a failed stream",
    );

    // 1. Stall sweep: the victim dies; survivors must evict and finish.
    let mut table = Table::new([
        "watchdog budget",
        "evicted at",
        "recovery (cycles)",
        "survivor syncs",
        "victim syncs",
        "total cycles",
        "outcome",
    ]);
    let mut sweep_rows = Vec::new();
    for budget in [4u64, 8, 16, 32, 64] {
        let mut m = machine(Some(budget), ReadyFault::Stall);
        let out = m.run(100_000).expect("no memory faults");
        assert_eq!(
            m.evictions().len(),
            1,
            "budget {budget}: exactly the victim is evicted"
        );
        let ev = m.evictions()[0];
        assert_eq!(ev.victim, VICTIM);
        let recovery = ev
            .recovery_latency()
            .expect("survivors resynchronized after the eviction");
        let survivor_syncs = (0..PROCS)
            .filter(|&i| i != VICTIM)
            .map(|i| m.proc_stats(i).syncs)
            .min()
            .unwrap_or(0);
        assert_eq!(
            survivor_syncs, EPISODES as u64,
            "budget {budget}: survivors finish every episode"
        );
        let victim_syncs = m.proc_stats(VICTIM).syncs;
        table.row([
            budget.to_string(),
            ev.fired_at.to_string(),
            recovery.to_string(),
            survivor_syncs.to_string(),
            victim_syncs.to_string(),
            out.cycles().to_string(),
            outcome_name(&out).to_string(),
        ]);
        sweep_rows.push(
            Json::obj()
                .field("budget", budget)
                .field("fired_at", ev.fired_at)
                .field("recovery_cycles", recovery)
                .field("evictions", m.evictions().len())
                .field("survivor_syncs_min", survivor_syncs)
                .field("victim_syncs", victim_syncs)
                .field("cycles", out.cycles())
                .field("outcome", outcome_name(&out)),
        );
    }
    println!("\nstall at cycle {ONSET}, {PROCS} procs, {EPISODES} episodes:\n");
    println!("{}", table.render());

    // 2. A transient glitch under a generous budget: nobody is evicted.
    let mut m = machine(Some(200), ReadyFault::Delay { cycles: 30 });
    let out = m.run(100_000).expect("no memory faults");
    assert!(out.is_halted(), "delay heals, run completes: {out:?}");
    assert!(m.evictions().is_empty(), "no eviction for a healed glitch");
    println!(
        "transient delay (30 cycles, budget 200): {} evictions, \
         completed in {} cycles",
        m.evictions().len(),
        out.cycles()
    );
    let delay_summary = run_summary(&m, &out);

    // 3. A heavy stutter under a tight budget reads as a dead partner.
    let mut m = machine(Some(8), ReadyFault::Stutter { p: 0.9, seed: 11 });
    let out = m.run(100_000).expect("no memory faults");
    assert_eq!(
        m.evictions().len(),
        1,
        "deterministic seed: the flaky line is cut"
    );
    println!(
        "stutter (p=0.9, budget 8): victim evicted at cycle {}, \
         survivors ran to {:?}",
        m.evictions()[0].fired_at,
        out
    );
    let stutter_summary = run_summary(&m, &out);

    if export.enabled() {
        export.section("stall_sweep", Json::Arr(sweep_rows));
        export.section("transient_delay", delay_summary);
        export.section("stutter", stutter_summary);
    }
    export.finish();
}
