//! Experiment E19 — fuzzy-net scale: message-passing barriers across
//! endpoints and across real processes.
//!
//! The paper's fuzzy barrier synchronizes processors over shared memory;
//! `fuzzy-net` carries the same split-phase contract over a message
//! transport, with the fuzzy region hiding the dissemination round-trips.
//! This experiment measures that claim at two granularities:
//!
//! * **loopback sweep** — N in-process endpoints over the deterministic
//!   [`LoopbackMesh`], N from 2 to 16, with and without jittered fuzzy
//!   regions. The metric is `frames_per_arrival` (total frames sent per
//!   endpoint-episode), which for the dissemination protocol should track
//!   `ceil(log2 N)` — the gate catches any protocol change that inflates
//!   frame traffic. Every row asserts zero retries and zero decode
//!   errors: the loopback fabric is lossless, so any recovery traffic is
//!   a protocol bug, not noise.
//! * **multi-process UDS sweep** — the acceptance scenario: five seeds of
//!   an 8-worker mesh, each worker a *real OS process* (re-executions of
//!   this binary via [`fuzzy_sched::multiproc`]) over Unix-domain
//!   sockets. Every worker must exit `Released` with all episodes
//!   complete and zero wedges; the parent watchdog turns a hang into a
//!   loud failure instead of a stuck benchmark.
//!
//! ```text
//! exp_net_scale [--quick] [--stats-json <path>]
//! exp_net_scale --compare <fresh.json> --baseline <base.json>
//!               [--tolerance <x>]
//! ```
//!
//! Compare mode re-reads two exports and fails (exit 1) if any fresh
//! `frames_per_arrival` exceeds its baseline row by more than the
//! multiplicative tolerance (elapsed time is held to `4×` the tolerance —
//! wall clock is far noisier than frame counts). Only the loopback sweep
//! is gated: process spawn times swing too much on shared runners.

use fuzzy_barrier::{Deadline, SplitBarrier, StallPolicy};
use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_net::{LoopbackMesh, NetBarrier, NetConfig};
use fuzzy_sched::multiproc::{maybe_run_worker, run_multiproc, MultiprocConfig, WorkerFate};
use fuzzy_util::{Json, SplitMix64};
use std::sync::Arc;
use std::time::{Duration, Instant};

const EPISODES: u64 = 64;
const QUICK_EPISODES: u64 = 16;
const MULTIPROC_NODES: usize = 8;
const MULTIPROC_SEEDS: u64 = 5;
const MULTIPROC_EPISODES: u64 = 25;
const QUICK_MULTIPROC_NODES: usize = 4;
const QUICK_MULTIPROC_SEEDS: u64 = 2;
const QUICK_MULTIPROC_EPISODES: u64 = 10;
/// Frame-count slack added on top of the ratio check so the smallest
/// meshes (one round, one frame per arrival) cannot fail on rounding.
const FRAME_SLACK: f64 = 2.0;
/// Elapsed-time slack, milliseconds.
const ELAPSED_SLACK_MS: f64 = 500.0;

struct Row {
    nodes: usize,
    region_us: u64,
    episodes: u64,
    frames_sent: u64,
    frames_received: u64,
    retries: u64,
    nacks: u64,
    frames_per_arrival: f64,
    elapsed_ms: f64,
}

/// Jittered busy-wait standing in for fuzzy-region work. Spinning (not
/// sleeping) keeps the loopback sweep's timing out of the scheduler's
/// hands, so frame counts stay deterministic run to run.
fn busy_region(rng: &mut SplitMix64, region_us: u64) {
    if region_us == 0 {
        return;
    }
    let jitter = rng.range_u64(region_us / 2, region_us);
    let until = Instant::now() + Duration::from_micros(jitter);
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

fn measure(nodes: usize, region_us: u64, episodes: u64, seed: u64) -> Row {
    let mesh = LoopbackMesh::new(nodes);
    // `round_timeout(None)`: loopback delivery is synchronous and
    // lossless, so the recovery machinery is dead weight here — and a
    // wall-clock timeout firing on an overloaded runner would inject
    // retransmissions into what the gate treats as a deterministic count.
    let barriers: Vec<Arc<NetBarrier>> = mesh
        .endpoints()
        .into_iter()
        .map(|t| {
            NetBarrier::start(
                Arc::new(t),
                // SpinYield over pure Spin: loopback meshes are routinely
                // oversubscribed (N endpoints on fewer cores), and a pure
                // spinner starves the very thread whose send would release
                // it.
                NetConfig::new()
                    .policy(StallPolicy::SpinYield { spin_limit: 64 })
                    .round_timeout(None),
            )
        })
        .collect();

    let started = Instant::now();
    std::thread::scope(|s| {
        for (rank, barrier) in barriers.iter().enumerate() {
            let barrier = Arc::clone(barrier);
            s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(seed ^ rank as u64);
                for episode in 0..episodes {
                    let token = barrier.arrive(0);
                    busy_region(&mut rng, region_us);
                    let outcome = barrier
                        .wait_deadline(token, Deadline::after(Duration::from_secs(30)))
                        .expect("loopback episode must release");
                    assert_eq!(outcome.episode, episode, "episodes must stay in lockstep");
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let mut frames_sent = 0u64;
    let mut frames_received = 0u64;
    let mut retries = 0u64;
    let mut nacks = 0u64;
    for b in &barriers {
        let snap = b.net_stats();
        assert_eq!(snap.decode_errors, 0, "loopback frames must all decode");
        frames_sent += snap.frames_sent;
        frames_received += snap.frames_received;
        retries += snap.retries;
        nacks += snap.nacks;
    }
    assert_eq!(
        retries, 0,
        "a lossless fabric with no round timeout must never retransmit"
    );
    assert_eq!(
        frames_sent, frames_received,
        "the loopback fabric drops nothing, so every send must arrive"
    );
    Row {
        nodes,
        region_us,
        episodes,
        frames_sent,
        frames_received,
        retries,
        nacks,
        frames_per_arrival: frames_sent as f64 / (nodes as u64 * episodes).max(1) as f64,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

fn row_json(r: &Row) -> Json {
    Json::obj()
        .field("nodes", r.nodes)
        .field("region_us", r.region_us)
        .field("episodes", r.episodes)
        .field("frames_sent", r.frames_sent)
        .field("frames_received", r.frames_received)
        .field("retries", r.retries)
        .field("nacks", r.nacks)
        .field("frames_per_arrival", r.frames_per_arrival)
        .field("elapsed_ms", r.elapsed_ms)
}

struct ProcRow {
    seed: u64,
    nodes: usize,
    episodes: u64,
    released: usize,
    elapsed_ms: f64,
}

fn measure_multiproc(seed: u64, nodes: usize, episodes: u64) -> ProcRow {
    let exe = std::env::current_exe().expect("own binary path");
    let mut config = MultiprocConfig::new(exe, nodes, episodes);
    config.seed = seed;
    let report = run_multiproc(&config);
    assert!(
        !report.wedged(),
        "seed {seed}: a worker wedged — the mesh lost an episode"
    );
    let released = report.count(&WorkerFate::Released);
    assert_eq!(
        released,
        nodes,
        "seed {seed}: every worker must exit Released, got {:?}",
        report
            .outcomes
            .iter()
            .map(|o| o.fate.clone())
            .collect::<Vec<_>>()
    );
    for outcome in &report.outcomes {
        assert_eq!(
            outcome.episodes, episodes,
            "seed {seed}: rank {} completed {} of {episodes} episodes",
            outcome.rank, outcome.episodes
        );
    }
    ProcRow {
        seed,
        nodes,
        episodes,
        released,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_net_scale [--quick] [--stats-json <path>]\n\
         \x20      exp_net_scale --compare <fresh.json> --baseline <base.json>\n\
         \x20                    [--tolerance <x>]"
    );
    std::process::exit(2);
}

fn main() {
    // Worker re-executions of this binary are hijacked here — they run
    // the episode loop and exit without ever reaching the experiment.
    maybe_run_worker();

    let mut quick = false;
    let mut compare: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = 8.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("exp_net_scale: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--compare" => compare = Some(value("--compare")),
            "--baseline" => baseline = Some(value("--baseline")),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("exp_net_scale: --tolerance wants a number");
                    usage();
                });
            }
            "--stats-json" => {
                let _ = value("--stats-json"); // consumed again by StatsExport
            }
            other if other.starts_with("--stats-json=") => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("exp_net_scale: unknown argument {other:?}");
                usage();
            }
        }
    }

    if let Some(fresh) = compare {
        let Some(base) = baseline else {
            eprintln!("exp_net_scale: --compare needs --baseline");
            usage();
        };
        std::process::exit(run_compare(&fresh, &base, tolerance));
    }
    if baseline.is_some() {
        eprintln!("exp_net_scale: --baseline only makes sense with --compare");
        usage();
    }

    run_sweep(quick);
}

fn run_sweep(quick: bool) {
    let mut export = StatsExport::from_env("net_scale");
    banner(
        "E19: fuzzy-net scale — message-passing barriers across endpoints",
        "the fuzzy region of Gupta, ASPLOS 1989, hiding a network round-trip",
    );
    let (mesh_sizes, episodes): (&[usize], u64) = if quick {
        (&[2, 4], QUICK_EPISODES)
    } else {
        (&[2, 4, 8, 16], EPISODES)
    };
    let regions: &[u64] = &[0, 150];
    println!(
        "\n{episodes} episodes per configuration over the loopback mesh; fuzzy\n\
         region busy time jittered in [r/2, r] us. Every row asserts zero\n\
         retries, zero decode errors, and send == receive.\n"
    );

    let mut t = Table::new([
        "nodes",
        "region us",
        "frames",
        "frames/arrival",
        "nacks",
        "elapsed ms",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for &nodes in mesh_sizes {
        for &region_us in regions {
            let row = measure(nodes, region_us, episodes, 0xE19);
            t.row([
                row.nodes.to_string(),
                row.region_us.to_string(),
                row.frames_sent.to_string(),
                format!("{:.2}", row.frames_per_arrival),
                row.nacks.to_string(),
                format!("{:.1}", row.elapsed_ms),
            ]);
            rows.push(row);
        }
    }
    println!("{}", t.render());

    // The acceptance sweep: real worker processes over Unix-domain
    // sockets, five seeds, zero wedges. Each seed changes every worker's
    // region jitter; completion must not. The parent watchdog means a
    // wedged mesh fails loudly here instead of hanging the benchmark.
    let (proc_nodes, proc_seeds, proc_episodes) = if quick {
        (
            QUICK_MULTIPROC_NODES,
            QUICK_MULTIPROC_SEEDS,
            QUICK_MULTIPROC_EPISODES,
        )
    } else {
        (MULTIPROC_NODES, MULTIPROC_SEEDS, MULTIPROC_EPISODES)
    };
    let mut proc_rows: Vec<ProcRow> = Vec::new();
    for seed in 1..=proc_seeds {
        let row = measure_multiproc(seed, proc_nodes, proc_episodes);
        println!(
            "multiproc seed {seed}: N={proc_nodes} UDS workers released \
             {proc_episodes} episodes each ({:.1} ms)",
            row.elapsed_ms
        );
        proc_rows.push(row);
    }
    println!(
        "\nN={proc_nodes} process mesh over UDS: {}/{proc_seeds} seeds wedge-free, \
         all Released: OK",
        proc_rows.len()
    );

    export.section(
        "config",
        Json::obj()
            .field("episodes", episodes)
            .field("quick", quick)
            .field("multiproc_nodes", proc_nodes)
            .field("multiproc_seeds", proc_seeds)
            .field("multiproc_episodes", proc_episodes),
    );
    export.section("sweep", Json::Arr(rows.iter().map(row_json).collect()));
    export.section(
        "multiproc",
        Json::Arr(
            proc_rows
                .iter()
                .map(|r| {
                    Json::obj()
                        .field("seed", r.seed)
                        .field("nodes", r.nodes)
                        .field("episodes", r.episodes)
                        .field("released", r.released)
                        .field("elapsed_ms", r.elapsed_ms)
                })
                .collect(),
        ),
    );
    export.section(
        "verdict",
        Json::obj()
            .field("wedge_free_seeds", proc_rows.len())
            .field("all_released", true)
            .field("zero_retries", true),
    );
    export.finish();
}

// ---------------------------------------------------------------------------
// Compare mode (the perf gate)
// ---------------------------------------------------------------------------

fn load_sweep(path: &str) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let sweep = doc
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no `sweep` array"))?;
    Ok(sweep.to_vec())
}

fn row_key(row: &Json) -> Option<(u64, u64)> {
    let nodes = row.get("nodes").and_then(Json::as_f64)? as u64;
    let region = row.get("region_us").and_then(Json::as_f64)? as u64;
    Some((nodes, region))
}

fn metric(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

fn run_compare(fresh_path: &str, base_path: &str, tolerance: f64) -> i32 {
    let (fresh, base) = match (load_sweep(fresh_path), load_sweep(base_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for err in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("exp_net_scale: {err}");
            }
            return 1;
        }
    };
    // (metric, multiplicative tolerance, absolute slack) — elapsed time
    // is held to a looser bound because wall clock on a shared box swings
    // far more than frame counts do.
    let checks = [
        ("frames_per_arrival", tolerance, FRAME_SLACK),
        ("elapsed_ms", tolerance * 4.0, ELAPSED_SLACK_MS),
    ];
    let mut failures = 0usize;
    let mut compared = 0usize;
    for fresh_row in &fresh {
        let Some(key) = row_key(fresh_row) else {
            eprintln!("exp_net_scale: {fresh_path}: malformed sweep row");
            failures += 1;
            continue;
        };
        let Some(base_row) = base.iter().find(|r| row_key(r).as_ref() == Some(&key)) else {
            // The baseline is the full sweep; a quick fresh run must be a
            // subset of it.
            eprintln!(
                "exp_net_scale: no baseline row for N={} region={}us — regenerate the baseline",
                key.0, key.1
            );
            failures += 1;
            continue;
        };
        compared += 1;
        for (name, tol, slack) in checks {
            let (Some(f), Some(b)) = (metric(fresh_row, name), metric(base_row, name)) else {
                eprintln!(
                    "exp_net_scale: missing metric {name} for N={} region={}us",
                    key.0, key.1
                );
                failures += 1;
                continue;
            };
            let allowed = b * tol + slack;
            if f > allowed {
                eprintln!(
                    "REGRESSION N={} region={}us {name}: fresh {f:.2} > allowed {allowed:.2} \
                     (baseline {b:.2} x{tol:.1} + {slack:.0})",
                    key.0, key.1
                );
                failures += 1;
            }
        }
    }
    if compared == 0 {
        eprintln!("exp_net_scale: nothing compared — empty sweep?");
        return 1;
    }
    if failures == 0 {
        println!(
            "exp_net_scale: {compared} row(s) within tolerance x{tolerance:.1} of {base_path}"
        );
        0
    } else {
        eprintln!("exp_net_scale: {failures} gate failure(s)");
        1
    }
}
