//! Experiment E5 — Fig. 6: multiple barriers, masks and tags.
//!
//! Fig. 6 merges streams pairwise: P1 and P2 synchronize at B1 while P3 is
//! still working; later all three synchronize at B2. Two demonstrations:
//!
//! 1. **Simulator**: disjoint subsets synchronize independently via
//!    mask/tag registers; a single-barrier static schedule forces
//!    "redundant synchronizations" on P3 (extra stalls); and the Fig. 6
//!    bug — P3 synchronizing at the wrong logical barrier — cannot happen
//!    because its tag differs.
//! 2. **Thread library**: `GroupRegistry` allocates at most N−1 logical
//!    barriers for N dynamically created streams ("a maximum of N−1
//!    barriers is needed", Sec. 5) and disjoint subset barriers proceed
//!    independently.

use fuzzy_barrier::{GroupRegistry, ProcMask};
use fuzzy_bench::{banner, telemetry_json, StatsExport, Table};
use fuzzy_sim::assembler::assemble_program;
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_util::Json;
use std::sync::Arc;

/// P0 and P1 sync at tag 1 (masks naming only each other), then everyone
/// at tag 2. P2 does a long solo computation first. Work loops give P2 a
/// 60-iteration head start requirement.
const MULTI: &str = "\
.stream                 ; P0
    setmask 0b010       ; partner: P1 only
    settag 1
    li r1, 0
    li r2, 10
w0: addi r1, r1, 1
    blt r1, r2, w0
B:  nop                 ; barrier B1 (P0+P1)
    setmask 0b110       ; partners: P1 and P2
    settag 2
    li r1, 0
w1: addi r1, r1, 1
    blt r1, r2, w1
B:  nop                 ; barrier B2 (all)
    halt
.stream                 ; P1
    setmask 0b001       ; partner: P0 only
    settag 1
    li r1, 0
    li r2, 14
w0: addi r1, r1, 1
    blt r1, r2, w0
B:  nop                 ; barrier B1 (P0+P1)
    setmask 0b101
    settag 2
    li r1, 0
w1: addi r1, r1, 1
    blt r1, r2, w1
B:  nop                 ; barrier B2 (all)
    halt
.stream                 ; P2: long solo phase, then join at B2
    setmask 0b011
    settag 2
    li r1, 0
    li r2, 60
w0: addi r1, r1, 1
    blt r1, r2, w0
B:  nop                 ; barrier B2 (all)
    halt
";

/// Single-barrier schedule: every synchronization involves all three
/// processors ("by forcing all processors to synchronize each time any two
/// processors need to synchronize, a correct schedule that uses a single
/// barrier can be generated. However … redundant synchronizations").
const SINGLE: &str = "\
.stream                 ; P0
    li r1, 0
    li r2, 10
w0: addi r1, r1, 1
    blt r1, r2, w0
B:  nop                 ; sync 1 (all three)
    li r1, 0
w1: addi r1, r1, 1
    blt r1, r2, w1
B:  nop                 ; sync 2 (all three)
    halt
.stream                 ; P1
    li r1, 0
    li r2, 14
w0: addi r1, r1, 1
    blt r1, r2, w0
B:  nop
    li r1, 0
w1: addi r1, r1, 1
    blt r1, r2, w1
B:  nop
    halt
.stream                 ; P2 must now attend both barriers
    li r1, 0
    li r2, 30
w0: addi r1, r1, 1
    blt r1, r2, w0
B:  nop                 ; redundant for P2
    li r1, 0
w1: addi r1, r1, 1
    blt r1, r2, w1
B:  nop
    halt
";

fn run(src: &str) -> (bool, u64, Vec<u64>, Vec<u64>) {
    let mut m = MachineBuilder::new(assemble_program(src).expect("assembles"))
        .build()
        .expect("loads");
    let out = m.run(1_000_000).expect("runs");
    let stats = m.stats();
    (
        out.is_halted(),
        stats.sync_events,
        stats.procs.iter().map(|p| p.syncs).collect(),
        stats.procs.iter().map(|p| p.stall_cycles).collect(),
    )
}

fn main() {
    let mut export = StatsExport::from_env("multiple_barriers");
    banner(
        "E5: multiple barriers via masks and tags",
        "Fig. 6 of Gupta, ASPLOS 1989",
    );

    let (halted, events, syncs, stalls) = run(MULTI);
    println!("\nmulti-barrier schedule (B1: P0+P1 under tag 1; B2: all under tag 2):");
    let mut t = Table::new(["proc", "syncs", "stall cycles"]);
    for p in 0..3 {
        t.row([p.to_string(), syncs[p].to_string(), stalls[p].to_string()]);
    }
    println!("{}", t.render());
    export.table("multi_barrier", &t);
    println!("halted: {halted}, total sync events: {events}");
    assert!(halted);
    assert_eq!(syncs, vec![2, 2, 1], "P2 attends only B2");

    let (halted, events, syncs, stalls) = run(SINGLE);
    println!("\nsingle-barrier static schedule (everyone syncs every time):");
    let mut t = Table::new(["proc", "syncs", "stall cycles"]);
    for p in 0..3 {
        t.row([p.to_string(), syncs[p].to_string(), stalls[p].to_string()]);
    }
    println!("{}", t.render());
    export.table("single_barrier", &t);
    println!("halted: {halted}, total sync events: {events}");
    assert!(halted);
    assert_eq!(
        syncs,
        vec![2, 2, 2],
        "the single-barrier schedule forces a redundant sync on P2"
    );

    // Thread-library half: dynamic stream creation with the N−1 budget.
    println!("\n--- thread library: GroupRegistry with N−1 logical barriers ---\n");
    let n = 4;
    let registry = Arc::new(GroupRegistry::new(n));
    println!("capacity for {n} streams: {} barriers", registry.capacity());

    // Parent stream 0 spawns streams 1..4; each spawn allocates exactly
    // one barrier shared with the parent, as in Sec. 5.
    let mut pair_barriers = Vec::new();
    for child in 1..n {
        let mask: ProcMask = [0usize, child].into_iter().collect();
        let (tag, barrier) = registry.allocate(mask).expect("within budget");
        println!("spawned stream {child}: allocated {tag} over mask {mask}");
        pair_barriers.push((child, barrier));
    }
    assert!(
        registry.allocate(ProcMask::first_n(2)).is_err(),
        "the N-1 budget is exhausted"
    );

    // Each child synchronizes with the parent through its own barrier;
    // disjoint pairs never interfere.
    std::thread::scope(|s| {
        for (child, barrier) in &pair_barriers {
            let barrier = Arc::clone(barrier);
            let child = *child;
            s.spawn(move || {
                for _ in 0..100 {
                    let t = barrier.arrive(child, barrier.tag()).expect("tag matches");
                    barrier.wait(t);
                }
            });
        }
        // The parent participates in every pair barrier, round-robin.
        for _ in 0..100 {
            for (_, barrier) in &pair_barriers {
                let t = barrier.arrive(0, barrier.tag()).expect("tag matches");
                barrier.wait(t);
            }
        }
    });
    for (child, barrier) in &pair_barriers {
        let stats = barrier.stats();
        println!(
            "parent<->stream {child}: {} episodes, stall rate {:.2}",
            stats.episodes,
            stats.stall_rate()
        );
        assert_eq!(stats.episodes, 100);
    }
    println!(
        "\nReading: with masks+tags, P2 attends one barrier instead of two\n\
         (no redundant synchronization), and N streams never need more than\n\
         N-1 logical barriers."
    );
    if export.enabled() {
        // Registry-level telemetry aggregation: merged histograms and
        // summed counters across all live pair barriers, plus per-tag
        // breakdown.
        let (total, per_barrier) = registry.aggregate_telemetry();
        let mut per = Json::obj();
        for (tag, telemetry) in &per_barrier {
            per = per.field(&tag.to_string(), telemetry_json(telemetry));
        }
        export.section(
            "registry",
            Json::obj()
                .field("total", telemetry_json(&total))
                .field("per_barrier", per),
        );
    }
    export.finish();
}
