//! Experiment E12 — Sec. 9 ("Current Status and Future Work") and the
//! pipelining claim of Sec. 1.
//!
//! The paper leaves three things open; this reproduction implements all
//! three and measures them:
//!
//! 1. **Procedure calls from barrier regions** — "allowing parallel
//!    procedure calls can significantly increase the amount of
//!    parallelism". Both processors call a shared helper from inside
//!    their barrier regions; synchronization completes while inside the
//!    callee.
//! 2. **Traps in barrier regions** — "traps are useful as they are often
//!    used in RISC based systems to implement floating point operations".
//!    A trap-based emulated multiply fires from inside a barrier region;
//!    the barrier unit freezes during the handler, so synchronization is
//!    unaffected.
//! 3. **Pipelined processors** — "if the processors in the system are
//!    pipelined, repeated synchronization is less likely to degrade the
//!    performance of the pipeline because the synchronization point is
//!    not exactly specified". Point vs. fuzzy barriers, serial vs.
//!    pipelined issue.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::machine::{Machine, MachineConfig};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};

/// Part 1+2: calls and traps from barrier regions.
fn calls_and_traps(export: &mut StatsExport) {
    println!("--- procedure calls and traps from barrier regions ---\n");
    let mk = |work: i64| -> Stream {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 0 });
        b.plain(Instr::Li { rd: 2, imm: work });
        b.label("w");
        b.plain(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b.plain_branch(Cond::Lt, 1, 2, "w");
        // Barrier region: call a helper, which itself traps to emulate a
        // "floating point" multiply (r3 = r1 * 3 via the trap handler).
        b.fuzzy(Instr::Nop);
        b.call("helper", true);
        b.plain(Instr::Halt);
        b.label("helper");
        b.fuzzy(Instr::Trap { cause: 1 }); // emulated fmul
        b.fuzzy(Instr::Ret);
        b.label("handler");
        b.plain(Instr::Muli {
            rd: 3,
            rs: 1,
            imm: 3,
        });
        b.plain(Instr::Ret);
        b.finish().expect("labels")
    };
    let s0 = mk(10);
    let handler_pc = s0.label("handler").expect("handler label");
    let p = Program::new(vec![s0, mk(80)]);
    let mut m = Machine::new(p, MachineConfig::default()).expect("loads");
    m.set_trap_handler(0, handler_pc);
    m.set_trap_handler(1, handler_pc);
    let out = m.run(100_000).expect("runs");
    let mut t = Table::new(["proc", "work", "r3 = work*3 (via trap)", "syncs", "stalls"]);
    for (i, w) in [(0usize, 10i64), (1, 80)] {
        t.row([
            i.to_string(),
            w.to_string(),
            m.procs()[i].reg(3).to_string(),
            m.proc_stats(i).syncs.to_string(),
            m.proc_stats(i).stall_cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
    export.table("calls_and_traps", &t);
    assert!(out.is_halted());
    assert_eq!(m.procs()[0].reg(3), 30);
    assert_eq!(m.procs()[1].reg(3), 240);
    assert_eq!(m.stats().sync_events, 1);
    println!(
        "Both processors synchronized exactly once while inside a procedure\n\
         called from the barrier region, with a trap taken mid-region; the\n\
         frozen barrier unit kept the episode intact.\n"
    );
}

/// Part 3: pipelined issue vs point/fuzzy barriers.
fn pipelining(export: &mut StatsExport) {
    println!("--- pipelining: point vs fuzzy barriers ---\n");
    // Loop body with multi-cycle instructions (muls + loads) so a
    // pipeline drain is expensive; barrier each iteration.
    let mk = |fuzzy: bool| -> Stream {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 0 });
        b.plain(Instr::Li { rd: 2, imm: 200 });
        b.plain(Instr::Li { rd: 9, imm: 64 });
        b.label("loop");
        for _ in 0..4 {
            b.plain(Instr::Load {
                rd: 4,
                rs: 9,
                offset: 0,
            });
            b.plain(Instr::Mul {
                rd: 5,
                rs1: 4,
                rs2: 4,
            });
        }
        if fuzzy {
            // The next iteration's first half rides in the barrier region.
            for _ in 0..3 {
                b.fuzzy(Instr::Load {
                    rd: 6,
                    rs: 9,
                    offset: 1,
                });
                b.fuzzy(Instr::Mul {
                    rd: 7,
                    rs1: 6,
                    rs2: 6,
                });
            }
            b.fuzzy(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.fuzzy_branch(Cond::Lt, 1, 2, "loop");
        } else {
            // Same work as the fuzzy variant, but all of it before a
            // point barrier.
            for _ in 0..3 {
                b.plain(Instr::Load {
                    rd: 6,
                    rs: 9,
                    offset: 1,
                });
                b.plain(Instr::Mul {
                    rd: 7,
                    rs1: 6,
                    rs2: 6,
                });
            }
            b.fuzzy(Instr::Nop); // point barrier
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, "loop");
        }
        b.plain(Instr::Halt);
        b.finish().expect("labels")
    };
    let mut t = Table::new(["issue", "barrier", "cycles", "stall cycles"]);
    let mut results = Vec::new();
    for pipelined in [false, true] {
        for fuzzy in [false, true] {
            let p = Program::new(vec![mk(fuzzy), mk(fuzzy)]);
            let mut m = MachineBuilder::new(p)
                .pipelined(pipelined)
                .miss_rate(0.2)
                .miss_penalty(12)
                .seed(9)
                .build()
                .expect("loads");
            let out = m.run(10_000_000).expect("runs");
            assert!(out.is_halted(), "{out:?}");
            let s = m.stats();
            results.push((pipelined, fuzzy, s.cycles));
            t.row([
                if pipelined { "pipelined" } else { "serial" }.to_string(),
                if fuzzy { "fuzzy" } else { "point" }.to_string(),
                s.cycles.to_string(),
                s.total_stall_cycles().to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    export.table("pipelining", &t);
    let cycles = |p: bool, f: bool| {
        results
            .iter()
            .find(|&&(pp, ff, _)| pp == p && ff == f)
            .unwrap()
            .2 as f64
    };
    let serial_gain = cycles(false, false) / cycles(false, true);
    let pipe_gain = cycles(true, false) / cycles(true, true);
    println!("fuzzy-over-point speedup: serial {serial_gain:.2}x, pipelined {pipe_gain:.2}x\n");
    assert!(
        serial_gain > 1.0 && pipe_gain > 1.0,
        "fuzzy must beat point in both issue modes"
    );
    assert!(
        pipe_gain >= serial_gain,
        "the pipelined machine should benefit at least as much (Sec. 1)"
    );
    println!(
        "Reading: the fuzzy barrier helps both, and helps the pipelined\n\
         machine at least as much — repeated synchronization no longer\n\
         drains the pipeline because the sync point is a region."
    );
}

fn main() {
    banner(
        "E12: Sec. 9 extensions — calls, traps, pipelining",
        "Sec. 9 and Sec. 1 of Gupta, ASPLOS 1989",
    );
    let mut export = StatsExport::from_env("extensions");
    println!();
    calls_and_traps(&mut export);
    pipelining(&mut export);
    export.finish();
}
