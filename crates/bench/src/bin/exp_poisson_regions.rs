//! Experiment E3 — Figs. 3 & 4: the Poisson solver and code reordering.
//!
//! Compiles the Poisson relaxation body, prints the Fig. 4(a)/(b)-style
//! listings, reports region sizes before/after the three-phase reordering,
//! and runs both versions on the simulator under injected cache-miss drift
//! to show the enlarged barrier region absorbing skew.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::driver::{compile_nest, CompileOptions};
use fuzzy_compiler::pretty::{render_split, summarize_split};
use fuzzy_compiler::{deps, lower, region::RegionSplit, reorder};
use fuzzy_sim::builder::MachineBuilder;

/// The Fig. 3 Poisson nest for an M×M interior (array (M+2)×(M+2)),
/// M² processors, `10·M` outer iterations.
fn poisson(m: usize) -> (LoopNest, Vec<Vec<(VarId, i64)>>) {
    let k = VarId(0);
    let i = VarId(1);
    let j = VarId(2);
    let p = ArrayId(0);
    let acc = |di: i64, dj: i64| {
        Expr::Access(ArrayAccess::new(
            p,
            vec![Subscript::var(i, di), Subscript::var(j, dj)],
        ))
    };
    let value = Expr::div_const(
        Expr::add(
            Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
            acc(-1, 0),
        ),
        4,
    );
    let nest = LoopNest {
        arrays: vec![ArrayDecl {
            name: "P".into(),
            dims: vec![m + 2, m + 2],
            base: 0,
        }],
        seq_var: k,
        seq_lo: 1,
        seq_hi: (10 * m) as i64,
        private_vars: vec![i, j],
        body: vec![Stmt::Assign(Assign {
            target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
            value,
        })],
        var_names: vec!["k".into(), "i".into(), "j".into()],
    };
    // M² processors: processor (l, m') handles element (l, m').
    let inits = (1..=m as i64)
        .flat_map(|l| (1..=m as i64).map(move |mm| vec![(i, l), (j, mm)]))
        .collect();
    (nest, inits)
}

fn main() {
    let mut export = StatsExport::from_env("poisson_regions");
    banner(
        "E3: Poisson solver — barrier regions before/after reordering",
        "Figs. 3 and 4 of Gupta, ASPLOS 1989",
    );

    let (nest, inits) = poisson(2); // M=2 → 4 processors, like the paper's listing
    let info = deps::analyze(&nest);
    let marked = info.marked_for_carried();
    let body = lower::lower_body(&nest, &marked);
    let before = RegionSplit::by_marks(&body);
    let after = reorder(&body);

    println!("\n--- intermediate code, regions by marked positions (Fig. 4(a)) ---");
    println!("{}", render_split("before reordering", &before));
    println!("--- after three-phase reordering (Fig. 4(b)) ---");
    println!("{}", render_split("after reordering", &after));

    let mut t = Table::new([
        "",
        "barrier instrs",
        "non-barrier instrs",
        "barrier fraction",
    ]);
    t.row([
        "before".to_string(),
        before.barrier_len().to_string(),
        before.non_barrier_len().to_string(),
        format!("{:.2}", before.barrier_fraction()),
    ]);
    t.row([
        "after".to_string(),
        after.barrier_len().to_string(),
        after.non_barrier_len().to_string(),
        format!("{:.2}", after.barrier_fraction()),
    ]);
    println!("{}", t.render());
    export.table("region_sizes", &t);
    println!("before: {}", summarize_split(&before));
    println!("after:  {}", summarize_split(&after));
    println!(
        "\npaper: the non-barrier region shrinks to I1..I4 plus one divide\n\
         (5 instructions); ours: {} instructions.\n",
        after.non_barrier_len()
    );

    // Run both under cache-miss drift.
    println!("--- simulated execution under cache-miss drift (miss rate 30%, penalty 20) ---\n");
    let mut t = Table::new([
        "version",
        "cycles",
        "stall cycles",
        "stalls/sync",
        "sync events",
    ]);
    for (label, use_reorder) in [("marks only", false), ("reordered", true)] {
        let compiled = compile_nest(
            &nest,
            &inits,
            &CompileOptions {
                reorder: use_reorder,
                ..CompileOptions::default()
            },
        )
        .expect("compiles");
        let mut machine = MachineBuilder::new(compiled.program)
            .miss_rate(0.3)
            .miss_penalty(20)
            .seed(11)
            .build()
            .expect("loads");
        let out = machine.run(50_000_000).expect("runs");
        assert!(out.is_halted(), "{out:?}");
        let stats = machine.stats();
        t.row([
            label.to_string(),
            stats.cycles.to_string(),
            stats.total_stall_cycles().to_string(),
            format!(
                "{:.1}",
                stats.total_stall_cycles() as f64 / stats.sync_events.max(1) as f64
            ),
            stats.sync_events.to_string(),
        ]);
    }
    println!("{}", t.render());
    export.table("drift_run", &t);
    println!(
        "Reading: the reordered version pushes the address arithmetic into\n\
         the barrier region, so drift from cache misses is absorbed and the\n\
         per-synchronization stall drops."
    );
    export.finish();
}
