//! Experiment E17 — async frontend scale: M logical participants over N
//! worker threads.
//!
//! The paper's fuzzy barrier assumes one processor per participant; the
//! async frontend removes that assumption. Each logical participant is a
//! future (`arrive → region work → await release`) parked by waker
//! registration instead of a spinning OS thread, so `M ≫ N` participants
//! complete fuzzy episodes on a fixed worker pool. This sweep measures
//! the frontend's bookkeeping cost — polls, parks, wakes, drains, steals
//! — as M grows from 64 to 4096 over pools of 2, 4 and 8 workers, and
//! proves liveness: the largest configuration is re-run under five
//! different arrival-jitter seeds and must complete every episode with
//! `parked == resumed` (every parked task was woken exactly once per
//! park; a lost wakeup would hang the run instead).
//!
//! ```text
//! exp_async_scale [--quick] [--stats-json <path>]
//! exp_async_scale --compare <fresh.json> --baseline <base.json>
//!                 [--tolerance <x>]
//! ```
//!
//! Compare mode re-reads two exports and fails (exit 1) if any fresh
//! `polls_per_arrival` exceeds its baseline row by more than the
//! multiplicative tolerance (elapsed time is held to `4×` the tolerance —
//! wall clock on a shared box is far noisier than poll counts).

use fuzzy_barrier::StallPolicy;
use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sched::{run_async_episodes, AsyncRunReport, BarrierChoice};
use fuzzy_util::Json;

const EPISODES: u64 = 8;
const QUICK_EPISODES: u64 = 4;
const REGION_UNITS: u64 = 4;
const LIVENESS_SEEDS: u64 = 5;
/// Poll-count slack added on top of the ratio check so near-minimal
/// baselines (every future ready on first poll) cannot fail on noise.
const POLL_SLACK: f64 = 4.0;
/// Elapsed-time slack, milliseconds.
const ELAPSED_SLACK_MS: f64 = 500.0;

struct Row {
    tasks: usize,
    workers: usize,
    episodes: u64,
    arrivals: u64,
    parked: u64,
    resumed: u64,
    steals: u64,
    polls: u64,
    wakes: u64,
    drains: u64,
    polls_per_arrival: f64,
    elapsed_ms: f64,
}

fn measure(tasks: usize, workers: usize, episodes: u64, seed: u64) -> Row {
    let report: AsyncRunReport = run_async_episodes(
        workers,
        tasks,
        episodes,
        REGION_UNITS,
        BarrierChoice::Central,
        StallPolicy::Spin,
        seed,
    );
    let f = &report.frontend;
    assert_eq!(
        report.barrier.arrivals,
        tasks as u64 * episodes,
        "every logical participant must arrive every episode"
    );
    assert_eq!(
        f.parked, f.resumed,
        "a parked task that never resumed is a lost wakeup"
    );
    Row {
        tasks,
        workers,
        episodes: report.barrier.episodes,
        arrivals: report.barrier.arrivals,
        parked: f.parked,
        resumed: f.resumed,
        steals: f.steals,
        polls: f.polls,
        wakes: f.wakes,
        drains: f.drains,
        polls_per_arrival: f.polls as f64 / report.barrier.arrivals.max(1) as f64,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
    }
}

fn row_json(r: &Row) -> Json {
    Json::obj()
        .field("tasks", r.tasks)
        .field("workers", r.workers)
        .field("episodes", r.episodes)
        .field("arrivals", r.arrivals)
        .field("parked", r.parked)
        .field("resumed", r.resumed)
        .field("steals", r.steals)
        .field("polls", r.polls)
        .field("wakes", r.wakes)
        .field("drains", r.drains)
        .field("polls_per_arrival", r.polls_per_arrival)
        .field("elapsed_ms", r.elapsed_ms)
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_async_scale [--quick] [--stats-json <path>]\n\
         \x20      exp_async_scale --compare <fresh.json> --baseline <base.json>\n\
         \x20                      [--tolerance <x>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut compare: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = 8.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("exp_async_scale: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--compare" => compare = Some(value("--compare")),
            "--baseline" => baseline = Some(value("--baseline")),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("exp_async_scale: --tolerance wants a number");
                    usage();
                });
            }
            "--stats-json" => {
                let _ = value("--stats-json"); // consumed again by StatsExport
            }
            other if other.starts_with("--stats-json=") => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("exp_async_scale: unknown argument {other:?}");
                usage();
            }
        }
    }

    if let Some(fresh) = compare {
        let Some(base) = baseline else {
            eprintln!("exp_async_scale: --compare needs --baseline");
            usage();
        };
        std::process::exit(run_compare(&fresh, &base, tolerance));
    }
    if baseline.is_some() {
        eprintln!("exp_async_scale: --baseline only makes sense with --compare");
        usage();
    }

    run_sweep(quick);
}

fn run_sweep(quick: bool) {
    let mut export = StatsExport::from_env("async_scale");
    banner(
        "E17: async frontend scale — M logical participants over N workers",
        "beyond the one-processor-per-participant model of Gupta, ASPLOS 1989",
    );
    let (ms, ns, episodes): (&[usize], &[usize], u64) = if quick {
        (&[64, 256], &[2, 4], QUICK_EPISODES)
    } else {
        (&[64, 256, 1024, 4096], &[2, 4, 8], EPISODES)
    };
    println!(
        "\n{episodes} episodes per configuration, central backend, region jitter in\n\
         [0, {}] busy units per episode; every row asserts parked == resumed.\n",
        2 * REGION_UNITS
    );

    let mut t = Table::new([
        "tasks",
        "workers",
        "parked",
        "steals",
        "polls/arrival",
        "wakes",
        "elapsed ms",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for &m in ms {
        for &n in ns {
            let row = measure(m, n, episodes, 0xA5);
            t.row([
                row.tasks.to_string(),
                row.workers.to_string(),
                row.parked.to_string(),
                row.steals.to_string(),
                format!("{:.2}", row.polls_per_arrival),
                row.wakes.to_string(),
                format!("{:.1}", row.elapsed_ms),
            ]);
            rows.push(row);
        }
    }
    println!("{}", t.render());

    // Liveness: the largest configuration re-run under distinct jitter
    // seeds. Arrival order, parking pattern and steal pattern all change
    // with the seed; completion must not. A lost wakeup hangs the run, so
    // merely returning from all five is the deadlock-freedom proof.
    let (live_tasks, live_workers) = (*ms.last().unwrap(), 4.min(*ns.last().unwrap()));
    let mut live_seeds = 0u64;
    for seed in 1..=LIVENESS_SEEDS {
        let row = measure(live_tasks, live_workers, episodes, seed);
        println!(
            "liveness seed {seed}: M={live_tasks} N={live_workers} completed \
             ({} parked, {} wakes, {:.1} ms)",
            row.parked, row.wakes, row.elapsed_ms
        );
        live_seeds += 1;
    }
    println!(
        "\nM={live_tasks} on N={live_workers} workers: {live_seeds}/{LIVENESS_SEEDS} seeds \
         deadlock-free: OK"
    );

    export.section(
        "config",
        Json::obj()
            .field("episodes", episodes)
            .field("region_units", REGION_UNITS)
            .field("quick", quick)
            .field("liveness_seeds", LIVENESS_SEEDS),
    );
    export.section("sweep", Json::Arr(rows.iter().map(row_json).collect()));
    export.section(
        "verdict",
        Json::obj()
            .field("deadlock_free_seeds", live_seeds)
            .field("parked_equals_resumed", true),
    );
    export.finish();
}

// ---------------------------------------------------------------------------
// Compare mode (the perf gate)
// ---------------------------------------------------------------------------

fn load_sweep(path: &str) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let sweep = doc
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no `sweep` array"))?;
    Ok(sweep.to_vec())
}

fn row_key(row: &Json) -> Option<(u64, u64)> {
    let tasks = row.get("tasks").and_then(Json::as_f64)? as u64;
    let workers = row.get("workers").and_then(Json::as_f64)? as u64;
    Some((tasks, workers))
}

fn metric(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

fn run_compare(fresh_path: &str, base_path: &str, tolerance: f64) -> i32 {
    let (fresh, base) = match (load_sweep(fresh_path), load_sweep(base_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for err in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("exp_async_scale: {err}");
            }
            return 1;
        }
    };
    // (metric, multiplicative tolerance, absolute slack) — elapsed time is
    // held to a looser bound because wall clock on a shared box swings far
    // more than poll counts do.
    let checks = [
        ("polls_per_arrival", tolerance, POLL_SLACK),
        ("elapsed_ms", tolerance * 4.0, ELAPSED_SLACK_MS),
    ];
    let mut failures = 0usize;
    let mut compared = 0usize;
    for fresh_row in &fresh {
        let Some(key) = row_key(fresh_row) else {
            eprintln!("exp_async_scale: {fresh_path}: malformed sweep row");
            failures += 1;
            continue;
        };
        let Some(base_row) = base.iter().find(|r| row_key(r).as_ref() == Some(&key)) else {
            // The baseline is the full sweep; a quick fresh run must be a
            // subset of it.
            eprintln!(
                "exp_async_scale: no baseline row for M={} N={} — regenerate the baseline",
                key.0, key.1
            );
            failures += 1;
            continue;
        };
        compared += 1;
        for (name, tol, slack) in checks {
            let (Some(f), Some(b)) = (metric(fresh_row, name), metric(base_row, name)) else {
                eprintln!(
                    "exp_async_scale: missing metric {name} for M={} N={}",
                    key.0, key.1
                );
                failures += 1;
                continue;
            };
            let allowed = b * tol + slack;
            if f > allowed {
                eprintln!(
                    "REGRESSION M={} N={} {name}: fresh {f:.2} > allowed {allowed:.2} \
                     (baseline {b:.2} x{tol:.1} + {slack:.0})",
                    key.0, key.1
                );
                failures += 1;
            }
        }
    }
    if compared == 0 {
        eprintln!("exp_async_scale: nothing compared — empty sweep?");
        return 1;
    }
    if failures == 0 {
        println!(
            "exp_async_scale: {compared} row(s) within tolerance x{tolerance:.1} of {base_path}"
        );
        0
    } else {
        eprintln!("exp_async_scale: {failures} gate failure(s)");
        1
    }
}
