//! Experiment E18 — dynamic-membership chaos churn.
//!
//! The paper's barrier hardware assumes a fixed processor set for the
//! life of a program. The `ReconfigBarrier` drops that assumption:
//! members join and leave between episodes, crashes are evicted, and the
//! membership install happens atomically at epoch boundaries. This
//! experiment stress-drives that machinery with the real-thread chaos
//! harness (`fuzzy_sched::chaos`): a seeded driver injects thousands of
//! mixed events — joins, leaves, crashes, stutter delays, spurious
//! timeout probes — into live episode traffic over every backend, on
//! both the one-thread-per-member runtime and the M:N async executor.
//!
//! Asserted per run:
//!
//! * **liveness** — every injected event is followed by an epoch
//!   turnover within the watchdog budget (no deadlocks, no lost
//!   wakeups);
//! * **agreement** — at drain, the surviving members agree on the final
//!   release epoch and the membership count matches the driver's books;
//! * **determinism** — equal seeds schedule equal event mixes.
//!
//! Reported: the event mix, episodes completed, final epoch/membership,
//! and a recovery-latency histogram (event injection to the next epoch
//! turnover) exported in the standard `stall_hist` JSON format.

use fuzzy_barrier::TopLevel;
use fuzzy_bench::{banner, histogram_json, StatsExport, Table};
use fuzzy_sched::{run_chaos, BarrierChoice, ChaosConfig, ChaosMode, ChaosReport};
use fuzzy_util::Json;

/// The five production backends under churn.
const BACKENDS: [(&str, BarrierChoice); 5] = [
    ("central", BarrierChoice::Central),
    ("counting", BarrierChoice::Counting),
    ("dissemination", BarrierChoice::Dissemination),
    ("tree", BarrierChoice::Tree { fan_in: 2 }),
    (
        "hier",
        BarrierChoice::Hier {
            shard_size: 2,
            top: TopLevel::Dissemination,
        },
    ),
];

/// Worker threads backing the async runs.
const ASYNC_WORKERS: usize = 3;

struct Config {
    seed: u64,
    events_per_run: usize,
    quick: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_chaos_churn [--seed S] [--events N] [--quick] [--stats-json FILE]\n\
         \x20 --seed S     event-schedule seed (default 7)\n\
         \x20 --events N   churn events per (backend, mode) run (default 500)\n\
         \x20 --quick      CI smoke: 120 events per run"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seed: 7,
        events_per_run: 500,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("exp_chaos_churn: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--seed" => {
                cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--events" => {
                cfg.events_per_run = value("--events").parse().unwrap_or_else(|_| usage());
                if cfg.events_per_run == 0 {
                    usage();
                }
            }
            "--quick" => cfg.quick = true,
            "--stats-json" => {
                let _ = value("--stats-json"); // consumed by StatsExport
            }
            other if other.starts_with("--stats-json=") => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("exp_chaos_churn: unknown argument {other:?}");
                usage();
            }
        }
    }
    if cfg.quick {
        cfg.events_per_run = 120;
    }
    cfg
}

/// One (backend, mode) chaos run at `events` churn events.
fn run_one(backend: BarrierChoice, mode: ChaosMode, seed: u64, events: usize) -> ChaosReport {
    let mut config = ChaosConfig::smoke(backend, mode, seed);
    config.events = events;
    run_chaos(config)
}

fn run_json(name: &str, report: &ChaosReport) -> Json {
    Json::obj()
        .field("backend", name)
        .field("mode", report.mode.name())
        .field(
            "events",
            Json::obj()
                .field("joins", report.events.joins)
                .field("leaves", report.events.leaves)
                .field("crashes", report.events.crashes)
                .field("delays", report.events.delays)
                .field("spurious", report.events.spurious)
                .field("total", report.events.total()),
        )
        .field("episodes", report.episodes)
        .field("final_epoch", report.final_epoch)
        .field("final_members", report.final_members)
        .field("agreement", report.agreement)
        .field("spurious_hits", report.spurious_hits)
        .field("elapsed_ms", report.elapsed.as_millis() as u64)
        .field("recovery", histogram_json(&report.recovery.buckets, "ns"))
}

fn main() {
    let cfg = parse_args();
    // The harness injects contained panics to simulate member crashes;
    // without a filter every one prints a backtrace. Silence exactly
    // those and keep the default reporting for everything real.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected crash"));
        if !injected {
            default_hook(info);
        }
    }));
    let mut export = StatsExport::from_env("chaos_churn");
    banner(
        "E18: dynamic-membership chaos churn",
        "epoch-boundary reconfiguration under the paper's episode model",
    );
    println!(
        "seed {}, {} events per run, {} backends x 2 modes\n",
        cfg.seed,
        cfg.events_per_run,
        BACKENDS.len()
    );

    let mut table = Table::new([
        "backend",
        "mode",
        "events",
        "joins",
        "leaves",
        "crashes",
        "delays",
        "spurious",
        "episodes",
        "final epoch",
        "members",
        "elapsed (ms)",
    ]);
    let mut rows = Vec::new();
    let mut total_events = 0u64;
    let mut all_agreed = true;
    for (name, backend) in BACKENDS {
        for mode in [
            ChaosMode::Threaded,
            ChaosMode::Async {
                workers: ASYNC_WORKERS,
            },
        ] {
            eprintln!("running {name}/{} ...", mode.name());
            let report = run_one(backend, mode, cfg.seed, cfg.events_per_run);
            assert!(
                report.agreement,
                "{name}/{}: survivors disagree on the final epoch or membership",
                mode.name()
            );
            assert_eq!(
                report.events.total(),
                cfg.events_per_run as u64,
                "{name}/{}: every scheduled event must inject",
                mode.name()
            );
            assert!(
                report.episodes >= report.events.total(),
                "{name}/{}: every event is followed by an epoch turnover",
                mode.name()
            );
            total_events += report.events.total();
            all_agreed &= report.agreement;
            table.row([
                name.to_string(),
                report.mode.name().to_string(),
                report.events.total().to_string(),
                report.events.joins.to_string(),
                report.events.leaves.to_string(),
                report.events.crashes.to_string(),
                report.events.delays.to_string(),
                report.events.spurious.to_string(),
                report.episodes.to_string(),
                report.final_epoch.to_string(),
                report.final_members.to_string(),
                report.elapsed.as_millis().to_string(),
            ]);
            rows.push(run_json(name, &report));
        }
    }
    println!("{}", table.render());

    // Determinism spot check: the event schedule is a pure function of
    // the seed, so a repeat run must inject the identical mix.
    let a = run_one(BarrierChoice::Central, ChaosMode::Threaded, cfg.seed, 120);
    let b = run_one(BarrierChoice::Central, ChaosMode::Threaded, cfg.seed, 120);
    assert_eq!(a.events, b.events, "equal seeds schedule equal events");
    println!(
        "determinism: seed {} re-run injects the identical event mix ({:?})",
        cfg.seed, a.events
    );
    println!(
        "\nverdict: {} runs, {} total events, all agreed: {}",
        rows.len(),
        total_events,
        all_agreed
    );

    if export.enabled() {
        export.section(
            "config",
            Json::obj()
                .field("seed", cfg.seed)
                .field("events_per_run", cfg.events_per_run as u64)
                .field("quick", cfg.quick),
        );
        export.section("runs", Json::Arr(rows));
        export.section(
            "verdict",
            Json::obj()
                .field("runs", 2 * BACKENDS.len() as u64)
                .field("total_events", total_events)
                .field("all_agreed", all_agreed),
        );
    }
    export.finish();
}
