//! Experiment E10 — Sec. 8: the paper's measurement.
//!
//! "A software implementation of the fuzzy barrier on a four processor
//! Encore Multimax has been carried out. For nested loops, similar to
//! those in Fig. 9, the cost of synchronizing four processors was reduced
//! from 10,000 µsec to 300 µsec as the size of the barrier region was
//! increased from zero instructions to half of the total instructions in
//! the loop body. The cost of barrier synchronization is mainly due to
//! context saves and restores for the tasks that must be stalled."
//!
//! Reproduction (see DESIGN.md substitutions): the host running this
//! reproduction has a single CPU core, so a 4-thread wall-clock
//! measurement would only time-slice. Instead the experiment runs on the
//! simulated 4-way multiprocessor: the Encore-style **software**
//! split-phase barrier (shared counter + generation word) is compiled to
//! ISA code, the loop body carries cache-miss drift, and the barrier
//! region grows from 0 to half of the body. The synchronization cost per
//! barrier is measured directly — cycles beyond a barrier-free baseline —
//! plus a context save/restore penalty charged when a processor's spin
//! exceeds the scheduler's spin budget, mirroring the cost structure the
//! paper identifies.

use fuzzy_barrier::{
    CentralBarrier, CountingBarrier, DisseminationBarrier, SplitBarrier, StallPolicy, TreeBarrier,
};
use fuzzy_bench::{banner, sim_stats_json, speedup, telemetry_json, StatsExport, Table};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};
use fuzzy_sim::softbarrier::{emit_soft_arrive, emit_soft_wait, SoftBarrierRegs};
use fuzzy_util::Json;

const PROCS: usize = 4;
const OUTER: i64 = 50;
const BODY: i64 = 200; // loop-body work iterations (load+add+branch each)
const CTX_SWITCH_CYCLES: f64 = 1_000.0; // context save/restore per stall event
const SPIN_BUDGET: f64 = 12.0; // probes before the Encore scheduler switches

/// Emits a drift-prone work loop of `iters` iterations (label must be
/// unique within the stream).
fn work_loop(b: &mut StreamBuilder, iters: i64, label: &str) {
    b.plain(Instr::Li { rd: 10, imm: 0 });
    b.plain(Instr::Li { rd: 11, imm: iters });
    b.label(label);
    b.plain(Instr::Load {
        rd: 12,
        rs: 9,
        offset: 0,
    });
    b.plain(Instr::Addi {
        rd: 10,
        rs: 10,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, 10, 11, label);
}

/// One processor's stream. With `barrier` off, the same body runs with no
/// synchronization at all (the baseline).
fn stream(region_iters: i64, barrier: bool) -> Stream {
    let mut b = StreamBuilder::new();
    b.plain(Instr::Li { rd: 24, imm: 0 }); // barrier variables at addr 0/1
    b.plain(Instr::Li { rd: 1, imm: 0 }); // k
    b.plain(Instr::Li { rd: 2, imm: OUTER });
    b.plain(Instr::Li { rd: 9, imm: 64 }); // private data pointer
    b.label("outer");
    work_loop(&mut b, BODY - region_iters, "work");
    if barrier {
        emit_soft_arrive(&mut b, PROCS as i64, SoftBarrierRegs::default());
        work_loop(&mut b, region_iters, "region");
        emit_soft_wait(&mut b, SoftBarrierRegs::default());
    } else {
        work_loop(&mut b, region_iters, "region");
    }
    b.plain(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, 1, 2, "outer");
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

fn run(region_iters: i64, barrier: bool) -> (u64, u64) {
    let streams: Vec<Stream> = (0..PROCS).map(|_| stream(region_iters, barrier)).collect();
    let mut m = MachineBuilder::new(Program::new(streams))
        .miss_rate(0.35)
        .miss_penalty(120)
        .seed(1989)
        .build()
        .expect("loads");
    let out = m.run(1_000_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    let accesses = (0..PROCS).map(|p| m.memory().stats(p).accesses).sum();
    (m.stats().cycles, accesses)
}

/// One processor's stream using the **hardware** fuzzy barrier: the same
/// drift-prone body, with `region_iters` of it executed inside the
/// barrier region (fuzzy instructions). Stall cycles then come straight
/// out of the barrier unit's state machine, with full telemetry.
fn hw_stream(region_iters: i64) -> Stream {
    let mut b = StreamBuilder::new();
    b.plain(Instr::Li { rd: 1, imm: 0 }); // k
    b.plain(Instr::Li { rd: 2, imm: OUTER });
    b.plain(Instr::Li { rd: 9, imm: 64 });
    b.label("outer");
    work_loop(&mut b, BODY - region_iters, "work");
    // Barrier region: the same loop shape, marked as barrier instructions.
    b.fuzzy(Instr::Li { rd: 10, imm: 0 });
    b.fuzzy(Instr::Li {
        rd: 11,
        imm: region_iters,
    });
    b.label("region");
    b.fuzzy(Instr::Load {
        rd: 12,
        rs: 9,
        offset: 0,
    });
    b.fuzzy(Instr::Addi {
        rd: 10,
        rs: 10,
        imm: 1,
    });
    b.fuzzy_branch(Cond::Lt, 10, 11, "region");
    b.plain(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, 1, 2, "outer");
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

/// Runs the hardware-barrier sweep point, returning full machine stats.
fn run_hw(region_iters: i64) -> fuzzy_sim::MachineStats {
    let streams: Vec<Stream> = (0..PROCS).map(|_| hw_stream(region_iters)).collect();
    let mut m = MachineBuilder::new(Program::new(streams))
        .miss_rate(0.35)
        .miss_penalty(120)
        .seed(1989)
        .build()
        .expect("loads");
    let out = m.run(1_000_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    m.stats()
}

/// Runs `episodes` split-phase episodes on each thread-library backend
/// with deliberately skewed arrival times, returning per-backend
/// telemetry for the JSON export.
fn backend_telemetry(episodes: u64) -> Vec<(&'static str, fuzzy_barrier::TelemetrySnapshot)> {
    let n = PROCS;
    let backends: Vec<(&'static str, Box<dyn SplitBarrier>)> = vec![
        (
            "central",
            Box::new(CentralBarrier::with_policy(n, StallPolicy::yielding())),
        ),
        (
            "counting",
            Box::new(CountingBarrier::with_policy(n, StallPolicy::yielding())),
        ),
        (
            "dissemination",
            Box::new(DisseminationBarrier::with_policy(
                n,
                StallPolicy::yielding(),
            )),
        ),
        (
            "tree",
            Box::new(TreeBarrier::with_fan_in(n, 2, StallPolicy::yielding())),
        ),
    ];
    backends
        .into_iter()
        .map(|(name, b)| {
            std::thread::scope(|s| {
                for id in 0..n {
                    let b = &*b;
                    s.spawn(move || {
                        for _ in 0..episodes {
                            let t = b.arrive(id);
                            // Skewed barrier region so early arrivers stall.
                            let mut acc = 0u64;
                            for i in 0..(id as u64 * 200) {
                                acc = acc.wrapping_add(i);
                            }
                            std::hint::black_box(acc);
                            b.wait(t);
                        }
                    });
                }
            });
            (name, b.telemetry())
        })
        .collect()
}

fn main() {
    banner(
        "E10: sync cost vs barrier-region size (software fuzzy barrier)",
        "Sec. 8 of Gupta, ASPLOS 1989 (Encore Multimax measurement)",
    );
    println!(
        "\n{PROCS} simulated processors, {OUTER} outer iterations, body = {BODY} \
         drift-prone iterations;\nstalls past a {SPIN_BUDGET}-probe spin budget are \
         charged a {CTX_SWITCH_CYCLES}-cycle context switch.\n"
    );

    let mut export = StatsExport::from_env("encore");
    let episodes = OUTER as f64;
    let mut t = Table::new([
        "region (% of body)",
        "total cycles",
        "spin probes/proc/barrier",
        "ctx switches",
        "sync cost/barrier (cycles)",
    ]);
    let mut first = None;
    let mut last = None;
    let mut hw_sweep = Vec::new();
    for pct in [0i64, 10, 20, 30, 40, 50] {
        let region = BODY * pct / 100;
        let (with_cycles, with_accesses) = run(region, true);
        let (base_cycles, base_accesses) = run(region, false);
        // Hardware-barrier twin of the same sweep point: direct stall
        // telemetry from the barrier unit's state machine.
        let hw = run_hw(region);
        hw_sweep.push((pct, hw));

        // Spin probes: barrier-run memory accesses beyond the baseline,
        // minus the fixed arrive/release traffic (2 per proc per episode
        // + 2 releases per episode) and the one successful probe each
        // processor always performs.
        let barrier_traffic = with_accesses.saturating_sub(base_accesses) as f64;
        let fixed = (PROCS as f64 * 2.0 + 2.0) * episodes + PROCS as f64 * episodes;
        let wasted_probes = (barrier_traffic - fixed).max(0.0);
        let probes_per_proc_barrier = wasted_probes / (PROCS as f64 * episodes);

        // Context switches: the early arrivers are descheduled whenever
        // their spin exceeds the budget.
        let ctx_switches = if probes_per_proc_barrier > SPIN_BUDGET {
            (PROCS as f64 - 1.0) * episodes
        } else {
            0.0
        };

        let cost = (with_cycles.saturating_sub(base_cycles)) as f64 / episodes
            + ctx_switches * CTX_SWITCH_CYCLES / episodes;
        if pct == 0 {
            first = Some(cost);
        }
        if pct == 50 {
            last = Some(cost);
        }
        t.row([
            format!("{pct}%"),
            with_cycles.to_string(),
            format!("{probes_per_proc_barrier:.0}"),
            format!("{ctx_switches:.0}"),
            format!("{cost:.0}"),
        ]);
    }
    println!("{}", t.render());
    let (zero, half) = (first.unwrap(), last.unwrap());
    println!(
        "paper: 10,000 us -> 300 us (33x) as the region grew 0% -> 50%.\n\
         ours:  {zero:.0} -> {half:.0} cycles/barrier ({}).\n",
        speedup(zero, half.max(1e-9))
    );
    assert!(
        zero > 5.0 * half.max(1.0),
        "the cost collapse should be at least ~5x (got {zero:.0} vs {half:.0})"
    );
    println!(
        "Reading: growing the barrier region removes both the busy-wait\n\
         probes and, past the spin budget, the context switches — the\n\
         order-of-magnitude collapse the paper measured on the Encore."
    );

    // The hardware sweep must reproduce the same shape: total stall
    // cycles decrease monotonically as the barrier region grows.
    let mut hw_table = Table::new(["region (% of body)", "total stall cycles", "sync events"]);
    for (pct, hw) in &hw_sweep {
        hw_table.row([
            format!("{pct}%"),
            hw.total_stall_cycles().to_string(),
            hw.sync_events.to_string(),
        ]);
    }
    println!("hardware fuzzy barrier, same sweep:\n{}", hw_table.render());
    for pair in hw_sweep.windows(2) {
        assert!(
            pair[1].1.total_stall_cycles() <= pair[0].1.total_stall_cycles(),
            "stall cycles must decrease monotonically with region size \
             ({}% -> {}%: {} -> {})",
            pair[0].0,
            pair[1].0,
            pair[0].1.total_stall_cycles(),
            pair[1].1.total_stall_cycles()
        );
    }

    export.table("soft_sweep", &t);
    if export.enabled() {
        export.section(
            "hw_sweep",
            Json::Arr(
                hw_sweep
                    .iter()
                    .map(|(pct, hw)| {
                        Json::obj()
                            .field("region_pct", *pct)
                            .field("total_stall_cycles", hw.total_stall_cycles())
                            .field("machine", sim_stats_json(hw))
                    })
                    .collect(),
            ),
        );
        let mut backends = Json::obj();
        for (name, telemetry) in backend_telemetry(200) {
            backends = backends.field(name, telemetry_json(&telemetry));
        }
        export.section("backends", backends);
    }
    export.finish();
}
