//! Experiment E11 — Sec. 1's motivating claims.
//!
//! "Such implementations entail significant run-time overhead as they
//! require execution of several instructions in each stream … The
//! synchronization overhead increases linearly … with the number of
//! processors synchronizing at the barrier. Furthermore, the techniques
//! are known to cause hot-spot accesses." The hardware fuzzy barrier
//! instead costs **zero instructions** per synchronization and does not
//! touch memory.
//!
//! The experiment scales the processor count and compares, on the same
//! simulated machine:
//!
//! * the shared-variable software barrier (fetch-add + spin on a
//!   generation word) — instructions, memory-bank queueing (hot spot) and
//!   cycles per episode grow with P;
//! * the hardware fuzzy barrier (barrier-region bit, broadcast sync) —
//!   zero instructions and zero memory traffic per episode.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};
use fuzzy_sim::softbarrier::{emit_soft_barrier, SoftBarrierRegs};

const EPISODES: i64 = 100;
const WORK: i64 = 20;

fn work_loop(b: &mut StreamBuilder, iters: i64, label: &str) {
    b.plain(Instr::Li { rd: 10, imm: 0 });
    b.plain(Instr::Li { rd: 11, imm: iters });
    b.label(label);
    b.plain(Instr::Addi {
        rd: 10,
        rs: 10,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, 10, 11, label);
}

fn soft_stream(n: usize) -> Stream {
    let mut b = StreamBuilder::new();
    b.plain(Instr::Li { rd: 24, imm: 0 });
    b.plain(Instr::Li { rd: 1, imm: 0 });
    b.plain(Instr::Li {
        rd: 2,
        imm: EPISODES,
    });
    b.label("outer");
    work_loop(&mut b, WORK, "w");
    emit_soft_barrier(&mut b, n as i64, 0, SoftBarrierRegs::default());
    b.plain(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, 1, 2, "outer");
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

fn hw_stream() -> Stream {
    let mut b = StreamBuilder::new();
    b.plain(Instr::Li { rd: 1, imm: 0 });
    b.plain(Instr::Li {
        rd: 2,
        imm: EPISODES,
    });
    b.label("outer");
    work_loop(&mut b, WORK, "w");
    // The entire synchronization: a null barrier region. Loop control
    // rides inside it, costing nothing extra.
    b.fuzzy(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.fuzzy_branch(Cond::Lt, 1, 2, "outer");
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

struct Row {
    cycles_per_episode: f64,
    instrs_per_episode: f64,
    bank_wait_per_episode: f64,
}

fn measure(streams: Vec<Stream>, banks: usize) -> Row {
    let n = streams.len();
    let mut m = MachineBuilder::new(Program::new(streams))
        .banks(banks)
        .build()
        .expect("loads");
    let out = m.run(1_000_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    let stats = m.stats();
    // Instructions beyond the work loop + loop control, per proc episode.
    let overhead_instrs = stats.total_instructions() as f64
        - (n as i64 * EPISODES * (WORK * 2 + 2 + 2) + n as i64 * 4) as f64;
    let bank_wait: u64 = (0..n).map(|p| m.memory().stats(p).bank_wait_cycles).sum();
    Row {
        cycles_per_episode: stats.cycles as f64 / EPISODES as f64,
        instrs_per_episode: (overhead_instrs / (n as i64 * EPISODES) as f64).max(0.0),
        bank_wait_per_episode: bank_wait as f64 / EPISODES as f64,
    }
}

fn main() {
    let mut export = StatsExport::from_env("hotspot_scaling");
    banner(
        "E11: software-barrier overhead and hot spots vs processor count",
        "Sec. 1 claims of Gupta, ASPLOS 1989",
    );
    println!(
        "\n{EPISODES} barrier episodes, {WORK}-iteration work phase, 2 memory banks\n\
         (barrier variables share a bank -> hot spot).\n"
    );
    let mut t = Table::new([
        "procs",
        "soft cycles/episode",
        "soft instrs/proc/episode",
        "soft bank-wait/episode",
        "hw cycles/episode",
        "hw instrs/proc/episode",
    ]);
    let mut soft_growth = Vec::new();
    let mut hw_growth = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let soft = measure((0..n).map(|_| soft_stream(n)).collect(), 2);
        let hw = measure((0..n).map(|_| hw_stream()).collect(), 2);
        soft_growth.push(soft.cycles_per_episode);
        hw_growth.push(hw.cycles_per_episode);
        t.row([
            n.to_string(),
            format!("{:.0}", soft.cycles_per_episode),
            format!("{:.1}", soft.instrs_per_episode),
            format!("{:.0}", soft.bank_wait_per_episode),
            format!("{:.0}", hw.cycles_per_episode),
            format!("{:.1}", hw.instrs_per_episode),
        ]);
    }
    println!("{}", t.render());
    export.table("results", &t);
    let soft_ratio = soft_growth.last().unwrap() / soft_growth.first().unwrap();
    let hw_ratio = hw_growth.last().unwrap() / hw_growth.first().unwrap();
    println!(
        "scaling 2 -> 16 processors: software barrier cycles/episode grow {soft_ratio:.1}x;\n\
         hardware fuzzy barrier grows {hw_ratio:.2}x (stays flat).\n"
    );
    assert!(
        soft_ratio > 1.5 && hw_ratio < 1.2,
        "software cost must grow with P while hardware stays flat \
         ({soft_ratio:.2} vs {hw_ratio:.2})"
    );
    println!(
        "Reading: the shared counter/generation words serialize at their\n\
         memory bank (column 4 grows superlinearly — the hot spot), while\n\
         the hardware barrier needs zero instructions and zero memory\n\
         traffic regardless of processor count."
    );
    export.finish();
}
