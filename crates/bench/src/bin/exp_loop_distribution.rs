//! Experiment E4 — Fig. 5: enlarging barrier regions via loop
//! distribution.
//!
//! The Fig. 5(a) loop has two statements: S1 carries a cross-processor
//! dependence (`a[j][i] = a[j+1][i-1] + 2`), S2 is private
//! (`b[j][i] = b[j][i] + c[j][i]`). Each of S processors owns a chunk of
//! the inner `j` loop.
//!
//! * **Without distribution** (Fig. 5(b)) the loop body alternates S1;S2,
//!   and only the *last* execution of S2 can sit in the barrier region.
//! * **With distribution** (Fig. 5(c)) all S1 instances run first, then the
//!   whole S2 loop forms the barrier region.
//!
//! The experiment compiles both shapes to the simulator, reports barrier-
//! region sizes, and measures stall cycles under drift.

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::codegen::{emit_regions, VarMap};
use fuzzy_compiler::deps::{self, AccessRef};
use fuzzy_compiler::lower::lower_assign_at;
use fuzzy_compiler::transform::distribution::distribute;
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};
use std::collections::BTreeSet;

const N_OUTER: i64 = 8; // outer i iterations
const M_INNER: i64 = 12; // total inner j iterations
const PROCS: usize = 3; // S processors, chunk = M/S

fn fig5_nest() -> LoopNest {
    let i = VarId(0);
    let j = VarId(1);
    let a = ArrayId(0);
    let b = ArrayId(1);
    let c = ArrayId(2);
    let decl = |name: &str, base: i64| ArrayDecl {
        name: name.into(),
        dims: vec![(M_INNER + 2) as usize, (N_OUTER + 2) as usize],
        base,
    };
    LoopNest {
        arrays: vec![decl("a", 0), decl("b", 200), decl("c", 400)],
        seq_var: i,
        seq_lo: 1,
        seq_hi: N_OUTER,
        private_vars: vec![j],
        body: vec![
            Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(
                        a,
                        vec![Subscript::var(j, 1), Subscript::var(i, -1)],
                    )),
                    Expr::Const(2),
                ),
            }),
            Stmt::Assign(Assign {
                target: ArrayAccess::new(b, vec![Subscript::var(j, 0), Subscript::var(i, 0)]),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(
                        b,
                        vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                    )),
                    Expr::Access(ArrayAccess::new(
                        c,
                        vec![Subscript::var(j, 0), Subscript::var(i, 0)],
                    )),
                ),
            }),
        ],
        var_names: vec!["i".into(), "j".into()],
    }
}

/// Register conventions for this experiment.
const R_I: u8 = 1; // outer var i
const R_J: u8 = 2; // inner var j
const R_JLO: u8 = 3; // chunk start
const R_JHI: u8 = 4; // chunk end (inclusive)
const R_IHI: u8 = 5; // outer bound
const SPILL: i64 = 1 << 14;

struct Pieces {
    s1: Vec<fuzzy_compiler::tac::AnnotatedInstr>,
    s2: Vec<fuzzy_compiler::tac::AnnotatedInstr>,
}

fn lower_pieces(nest: &LoopNest, marked: &BTreeSet<AccessRef>) -> Pieces {
    let assigns = deps::flatten(&nest.body);
    let b1 = lower_assign_at(nest, assigns[0], 0, marked, 1);
    let b2 = lower_assign_at(nest, assigns[1], 1, marked, b1.next_temp);
    Pieces {
        s1: b1.instrs,
        s2: b2.instrs,
    }
}

fn vars() -> VarMap {
    let mut v = VarMap::new();
    v.assign(VarId(0), R_I);
    v.assign(VarId(1), R_J);
    v
}

/// Shared prologue: i = 1; bounds; per-proc chunk [jlo, jhi].
fn prologue(b: &mut StreamBuilder, proc: usize) {
    let chunk = M_INNER / PROCS as i64;
    let jlo = 1 + proc as i64 * chunk;
    let jhi = jlo + chunk - 1;
    b.fuzzy(Instr::Li { rd: R_I, imm: 1 });
    b.fuzzy(Instr::Li {
        rd: R_IHI,
        imm: N_OUTER,
    });
    b.fuzzy(Instr::Li {
        rd: R_JLO,
        imm: jlo,
    });
    b.fuzzy(Instr::Li {
        rd: R_JHI,
        imm: jhi,
    });
}

fn epilogue(b: &mut StreamBuilder) {
    b.fuzzy(Instr::Addi {
        rd: R_I,
        rs: R_I,
        imm: 1,
    });
    b.fuzzy_branch(Cond::Le, R_I, R_IHI, "outer");
    b.plain(Instr::Halt);
}

/// Fig. 5(b): fused inner loop over all but the last j, then a peeled
/// last iteration whose S2 forms the (small) barrier region.
fn stream_without_distribution(pieces: &Pieces, proc: usize, spill: i64) -> Stream {
    let mut b = StreamBuilder::new();
    prologue(&mut b, proc);
    b.label("outer");
    // j runs jlo .. jhi-1 fused, all non-barrier.
    b.plain(Instr::Mov { rd: R_J, rs: R_JLO });
    b.label("inner");
    emit_regions(
        &mut b,
        &[(&pieces.s1, false), (&pieces.s2, false)],
        &vars(),
        spill,
    )
    .expect("codegen");
    b.plain(Instr::Addi {
        rd: R_J,
        rs: R_J,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, R_J, R_JHI, "inner");
    // Peeled last iteration (j == jhi): S1 non-barrier, S2 barrier.
    emit_regions(
        &mut b,
        &[(&pieces.s1, false), (&pieces.s2, true)],
        &vars(),
        spill + 32,
    )
    .expect("codegen");
    epilogue(&mut b);
    b.finish().expect("labels")
}

/// Fig. 5(c): distributed — an S1 loop (non-barrier), then the whole S2
/// loop as the barrier region.
fn stream_with_distribution(pieces: &Pieces, proc: usize, spill: i64) -> Stream {
    let mut b = StreamBuilder::new();
    prologue(&mut b, proc);
    b.label("outer");
    // S1 loop, non-barrier.
    b.plain(Instr::Mov { rd: R_J, rs: R_JLO });
    b.label("s1loop");
    emit_regions(&mut b, &[(&pieces.s1, false)], &vars(), spill).expect("codegen");
    b.plain(Instr::Addi {
        rd: R_J,
        rs: R_J,
        imm: 1,
    });
    b.plain_branch(Cond::Le, R_J, R_JHI, "s1loop");
    // S2 loop, entirely barrier region.
    b.fuzzy(Instr::Mov { rd: R_J, rs: R_JLO });
    b.label("s2loop");
    emit_regions(&mut b, &[(&pieces.s2, true)], &vars(), spill + 32).expect("codegen");
    b.fuzzy(Instr::Addi {
        rd: R_J,
        rs: R_J,
        imm: 1,
    });
    b.fuzzy_branch(Cond::Le, R_J, R_JHI, "s2loop");
    epilogue(&mut b);
    b.finish().expect("labels")
}

fn measure(streams: Vec<Stream>) -> (u64, u64, u64) {
    let mut m = MachineBuilder::new(Program::new(streams))
        .miss_rate(0.25)
        .miss_penalty(25)
        .seed(5)
        .build()
        .expect("loads");
    let out = m.run(100_000_000).expect("runs");
    assert!(out.is_halted(), "{out:?}");
    let s = m.stats();
    (s.cycles, s.total_stall_cycles(), s.sync_events)
}

fn main() {
    let mut export = StatsExport::from_env("loop_distribution");
    banner(
        "E4: loop distribution enlarges barrier regions",
        "Fig. 5 of Gupta, ASPLOS 1989",
    );
    let nest = fig5_nest();

    // The transformation layer identifies what can be distributed.
    let dist = distribute(&nest);
    println!(
        "\ndistribution analysis: groups = {:?}, pinned = {:?}",
        dist.groups, dist.pinned
    );
    assert_eq!(dist.movable_groups(), vec![1], "S2 moves, S1 stays");

    let info = deps::analyze(&nest);
    let marked = info.marked_for_carried();
    let pieces = lower_pieces(&nest, &marked);
    let chunk = M_INNER / PROCS as i64;

    let without: Vec<Stream> = (0..PROCS)
        .map(|p| stream_without_distribution(&pieces, p, SPILL + p as i64 * 128))
        .collect();
    let with: Vec<Stream> = (0..PROCS)
        .map(|p| stream_with_distribution(&pieces, p, SPILL + p as i64 * 128))
        .collect();

    // Barrier-region sizes (static instruction counts in one outer
    // iteration).
    let count_barrier = |s: &Stream| s.ops().iter().filter(|o| o.barrier).count();
    println!(
        "\nstatic barrier-region instructions per stream:\n  \
         without distribution: {} (one S2 instance)\n  \
         with distribution:    {} (the whole {}-iteration S2 loop)\n",
        count_barrier(&without[0]),
        count_barrier(&with[0]),
        chunk
    );

    let mut t = Table::new(["version", "cycles", "stall cycles", "sync events"]);
    let (c1, s1, e1) = measure(without);
    t.row([
        "fused (Fig 5b)".to_string(),
        c1.to_string(),
        s1.to_string(),
        e1.to_string(),
    ]);
    let (c2, s2, e2) = measure(with);
    t.row([
        "distributed (Fig 5c)".to_string(),
        c2.to_string(),
        s2.to_string(),
        e2.to_string(),
    ]);
    println!("{}", t.render());
    export.table("results", &t);
    println!(
        "Reading: distributing S2 into its own loop grows the barrier region\n\
         from one statement instance to an entire loop; under drift the\n\
         distributed version stalls far less."
    );
    assert!(s2 < s1, "distribution should reduce stalls ({s2} vs {s1})");
    export.finish();
}
