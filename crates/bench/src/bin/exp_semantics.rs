//! Experiment E1 — Fig. 1: fuzzy-barrier semantics.
//!
//! Two demonstrations on the cycle-level simulator:
//!
//! 1. **Ordering**: no processor executes an instruction from the
//!    non-barrier region following a barrier (UNSHADED2) until all
//!    processors have finished the non-barrier region preceding it
//!    (UNSHADED1) — checked with cross-processor flag reads.
//! 2. **Skew tolerance**: sweeping the barrier-region size shows stall
//!    cycles dropping to zero once the region covers the arrival skew —
//!    "the larger the barrier region, the more likely it is that none of
//!    the processors will have to stall".
//!
//! Run with `--pipelined` to use overlapped issue, where a processor "may
//! enter the barrier region before exiting the preceding non-barrier
//! region" (Sec. 6).

use fuzzy_bench::{banner, StatsExport, Table};
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::machine::{Machine, MachineConfig};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};

/// Builds one stream: `work` units of pre-barrier work, a flag store, a
/// barrier region of `region` busy iterations, then a read of the other
/// processor's flag.
fn stream(proc: usize, procs: usize, work: i64, region: i64) -> Stream {
    let mut b = StreamBuilder::new();
    // UNSHADED1: variable-length work loop.
    b.plain(Instr::Li { rd: 1, imm: 0 });
    b.plain(Instr::Li { rd: 2, imm: work });
    b.label("work");
    b.plain(Instr::Addi {
        rd: 1,
        rs: 1,
        imm: 1,
    });
    b.plain_branch(Cond::Lt, 1, 2, "work");
    // Publish "I finished UNSHADED1".
    b.plain(Instr::Li { rd: 3, imm: 1 });
    b.plain(Instr::Store {
        rs: 3,
        rb: 0,
        offset: 100 + proc as i64,
    });
    // SHADED: the barrier region.
    if region == 0 {
        b.fuzzy(Instr::Nop); // null barrier region (Sec. 6)
    } else {
        b.fuzzy(Instr::Li { rd: 4, imm: 0 });
        b.fuzzy(Instr::Li { rd: 5, imm: region });
        b.label("region");
        b.fuzzy(Instr::Addi {
            rd: 4,
            rs: 4,
            imm: 1,
        });
        b.fuzzy_branch(Cond::Lt, 4, 5, "region");
    }
    // UNSHADED2: read every other processor's flag.
    for other in 0..procs {
        if other != proc {
            b.plain(Instr::Load {
                rd: 6,
                rs: 0,
                offset: 100 + other as i64,
            });
            // Trap: store 999 to a check word if the flag was not set.
            b.plain(Instr::Li { rd: 7, imm: 1 });
            b.plain_branch(Cond::Eq, 6, 7, format!("ok{other}"));
            b.plain(Instr::Li { rd: 8, imm: 999 });
            b.plain(Instr::Store {
                rs: 8,
                rb: 0,
                offset: 200 + proc as i64,
            });
            b.label(format!("ok{other}"));
            b.plain(Instr::Nop);
        }
    }
    b.plain(Instr::Halt);
    b.finish().expect("labels resolve")
}

fn run(works: &[i64], region: i64, pipelined: bool) -> (u64, u64, bool, Vec<u64>) {
    let procs = works.len();
    let streams = works
        .iter()
        .enumerate()
        .map(|(p, &w)| stream(p, procs, w, region))
        .collect();
    let cfg = MachineConfig {
        pipelined,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(Program::new(streams), cfg).expect("valid program");
    let out = m.run(10_000_000).expect("no memory faults");
    assert!(out.is_halted(), "unexpected outcome: {out:?}");
    let violated = (0..procs).any(|p| m.memory().peek(200 + p) == 999);
    (
        m.stats().total_stall_cycles(),
        m.stats().sync_events,
        violated,
        m.sync_positions().to_vec(),
    )
}

fn main() {
    let mut export = StatsExport::from_env("semantics");
    let pipelined = std::env::args().any(|a| a == "--pipelined");
    banner(
        "E1: fuzzy barrier semantics and skew tolerance",
        "Fig. 1 of Gupta, ASPLOS 1989",
    );
    if pipelined {
        println!("mode: pipelined issue\n");
    } else {
        println!("mode: serial issue\n");
    }

    // Four processors with very different UNSHADED1 lengths (2x instr/iter).
    let works = [50i64, 200, 400, 800];
    println!(
        "four processors, pre-barrier work of {works:?} loop iterations;\n\
         sweeping the barrier-region length:\n"
    );
    let mut t = Table::new([
        "region iters",
        "stall cycles",
        "sync events",
        "ordering violated",
        "region positions at sync",
    ]);
    for region in [0i64, 50, 100, 200, 400, 800] {
        let (stalls, syncs, violated, mut positions) = run(&works, region, pipelined);
        positions.sort_unstable();
        t.row([
            region.to_string(),
            stalls.to_string(),
            syncs.to_string(),
            violated.to_string(),
            format!("{positions:?}"),
        ]);
    }
    println!("{}", t.render());
    export.table("results", &t);
    println!(
        "The last column is Fig. 1's defining image: at the moment of\n\
         synchronization, the processors are at *different* positions in\n\
         their barrier regions (0 = just entered, larger = deeper in).\n"
    );
    println!(
        "Reading: ordering is never violated (Fig. 1's condition holds at\n\
         every region size), while stall cycles fall monotonically and reach\n\
         zero once each region covers the fastest-to-slowest skew."
    );
    export.finish();
}
