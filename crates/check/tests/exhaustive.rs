//! Exhaustive small-N verification of the stock backends.
//!
//! Bounded-preemption DFS **exhausts** the schedule space of each scenario
//! (every interleaving with up to the given number of preemptions), so a
//! pass here is a proof over that space, not a sampling claim: no
//! deadlock, no lost wakeup, no fuzzy-semantics violation, for any
//! explored schedule.

use fuzzy_check::{
    evict, explore_dfs, explore_random, poison, protocol, registry, subset_overlap, subset_pair,
    BackendKind, ExploreOptions, Outcome,
};

fn bounded(bound: usize) -> ExploreOptions {
    ExploreOptions {
        max_schedules: 200_000,
        step_limit: 50_000,
        preemption_bound: Some(bound),
    }
}

/// Asserts the scenario passes with the whole bounded tree explored.
fn must_exhaust(mut scenario: fuzzy_check::Scenario, bound: usize) -> usize {
    let name = scenario.name.clone();
    match explore_dfs(&mut scenario, &bounded(bound)) {
        Outcome::Pass {
            schedules,
            exhausted,
        } => {
            assert!(
                exhausted,
                "{name}: budget exhausted before the tree was ({schedules} schedules)"
            );
            eprintln!("{name}: exhausted {schedules} schedules (bound {bound})");
            schedules
        }
        Outcome::Fail { violation, .. } => panic!("{name}: {violation}"),
    }
}

#[test]
fn all_backends_exhaust_two_participants_two_episodes() {
    for backend in BackendKind::ALL {
        must_exhaust(protocol(backend, 2, 2), 2);
    }
}

#[test]
fn all_backends_exhaust_three_participants_one_episode() {
    for backend in BackendKind::ALL {
        must_exhaust(protocol(backend, 3, 1), 1);
    }
}

#[test]
fn central_survives_four_participants() {
    must_exhaust(protocol(BackendKind::Central, 4, 1), 1);
}

#[test]
fn hier_with_tree_top_exhausts() {
    // BackendKind::Hier pins the dissemination top; cover the tree top
    // explicitly. n=3, shard size 2 → two shards ({0,1}, {2}) and a real
    // root node combining the leaders.
    use fuzzy_barrier::{HierBarrier, SplitBarrier, StallPolicy, TopLevel};
    use fuzzy_check::{protocol_with, ShadowSync};
    use std::sync::Arc;
    let scenario = protocol_with("protocol/hier-tree/n3/e2", 3, 2, || {
        Arc::new(HierBarrier::<ShadowSync>::with_shards_in(
            3,
            2,
            TopLevel::Tree,
            StallPolicy::Spin,
        )) as Arc<dyn SplitBarrier>
    });
    must_exhaust(scenario, 1);
}

#[test]
fn subset_pair_exhausts() {
    // Every non-empty mask subset of two participants: {0}, {1}, {0,1},
    // with per-subset tags and a wrong-tag rejection probe.
    must_exhaust(subset_pair(2), 2);
}

#[test]
fn subset_overlap_exhausts() {
    // Fig. 6 stream merge: overlapping masks {0,1} and {1,2}.
    must_exhaust(subset_overlap(1), 1);
}

#[test]
fn registry_exhausts_with_allocation_churn() {
    // Dynamic streams: per-episode allocate/release with tag reuse, the
    // N−1 capacity bound asserted at every step of every schedule.
    must_exhaust(registry(2), 2);
}

#[test]
fn all_backends_exhaust_poison_at_three_participants() {
    // One participant aborts mid-episode; every surviving waiter must end
    // with Poisoned (or a completed episode 0), never a hang or an early
    // return — across every bounded interleaving.
    for backend in BackendKind::ALL {
        must_exhaust(poison(backend, 3), 1);
    }
}

#[test]
fn all_backends_exhaust_evict_at_three_participants() {
    // A participant is evicted after episode 0; survivors must complete
    // two further episodes with no lost wakeup and no fuzzy violation.
    for backend in BackendKind::ALL {
        must_exhaust(evict(backend, 3, 2), 1);
    }
}

#[test]
fn unbounded_dfs_within_budget_stays_clean() {
    // No preemption bound: take the first chunk of the full SC tree.
    for backend in BackendKind::ALL {
        let mut scenario = protocol(backend, 3, 2);
        let outcome = explore_dfs(
            &mut scenario,
            &ExploreOptions {
                max_schedules: 1_500,
                step_limit: 50_000,
                preemption_bound: None,
            },
        );
        assert!(outcome.passed(), "{}: {outcome:?}", scenario.name);
        assert_eq!(outcome.schedules(), 1_500);
    }
}

#[test]
fn random_sampling_stays_clean() {
    for backend in BackendKind::ALL {
        let mut scenario = protocol(backend, 3, 2);
        let outcome = explore_random(
            &mut scenario,
            &ExploreOptions {
                max_schedules: 300,
                step_limit: 50_000,
                preemption_bound: None,
            },
            0xB0BA,
        );
        assert!(outcome.passed(), "{}: {outcome:?}", scenario.name);
    }
}
