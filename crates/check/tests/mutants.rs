//! The checker must catch every seeded-bug backend. Each mutant
//! re-introduces a realistic race into one stock backend; if any of these
//! tests fails, the checker has lost its teeth and its green runs over the
//! real backends mean nothing.

use fuzzy_barrier::SplitBarrier;
use fuzzy_check::mutants::{
    MutantCentral, MutantCounting, MutantDissemination, MutantEarlyRelease, MutantEvictNoMask,
    MutantLeaderEarlyRelease, MutantNoPoison, MutantTree,
};
use fuzzy_check::{
    evict_with, explore_dfs, explore_random, poison_with, protocol_with, replay, Defect,
    ExploreOptions, Outcome, ShadowSync,
};
use std::sync::Arc;

fn opts(bound: usize) -> ExploreOptions {
    ExploreOptions {
        max_schedules: 100_000,
        step_limit: 20_000,
        preemption_bound: Some(bound),
    }
}

/// Explores `factory`'s barrier under the protocol scenario and asserts a
/// defect matching `want` is found; returns the violation for follow-ups.
fn must_catch(
    name: &str,
    n: usize,
    episodes: u64,
    bound: usize,
    factory: impl Fn() -> Arc<dyn SplitBarrier> + 'static,
    want: fn(&Defect) -> bool,
) -> fuzzy_check::Violation {
    let mut scenario = protocol_with(name.to_string(), n, episodes, move || factory());
    match explore_dfs(&mut scenario, &opts(bound)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            assert!(
                want(&violation.defect),
                "{name}: wrong defect class: {:?}",
                violation.defect
            );
            eprintln!(
                "{name}: caught after {schedules} schedules: {}",
                violation.defect
            );
            violation
        }
        Outcome::Pass { schedules, .. } => {
            panic!("{name}: mutant survived {schedules} schedules")
        }
    }
}

fn is_lost_signal(defect: &Defect) -> bool {
    matches!(defect, Defect::LostWakeup { .. } | Defect::Deadlock { .. })
}

#[test]
fn central_publish_before_rearm_is_caught() {
    // Needs two episodes: a waiter released by the early publish re-arrives
    // and its decrement is overwritten by the belated re-arm.
    let v = must_catch(
        "mutant/central",
        2,
        2,
        2,
        || Arc::new(MutantCentral::<ShadowSync>::new(2)),
        is_lost_signal,
    );
    // The precise classification: every stuck waiter's episode had fully
    // arrived, so this is a lost wakeup, not a mere deadlock.
    assert!(
        matches!(v.defect, Defect::LostWakeup { .. }),
        "expected LostWakeup, got {:?}",
        v.defect
    );
}

#[test]
fn counting_torn_increment_is_caught() {
    // One episode is enough: two torn increments lose a count.
    let v = must_catch(
        "mutant/counting",
        2,
        1,
        1,
        || Arc::new(MutantCounting::<ShadowSync>::new(2)),
        is_lost_signal,
    );
    assert!(
        matches!(v.defect, Defect::LostWakeup { .. }),
        "expected LostWakeup, got {:?}",
        v.defect
    );
}

#[test]
fn dissemination_exact_match_is_caught() {
    // The fast partner completes episode 0 and re-arrives (episode 1)
    // before the slow waiter probes its flag; the overwritten slot never
    // compares equal again.
    must_catch(
        "mutant/dissemination",
        2,
        2,
        2,
        || Arc::new(MutantDissemination::<ShadowSync>::new(2)),
        is_lost_signal,
    );
}

#[test]
fn tree_propagate_before_rearm_is_caught() {
    must_catch(
        "mutant/tree",
        2,
        2,
        2,
        || Arc::new(MutantTree::<ShadowSync>::new(2)),
        is_lost_signal,
    );
}

#[test]
fn tree_mutant_is_caught_at_n3_too() {
    // At n=3 the tree has real internal nodes, so the same bug also races
    // on a non-root node.
    must_catch(
        "mutant/tree/n3",
        3,
        2,
        2,
        || Arc::new(MutantTree::<ShadowSync>::new(3)),
        is_lost_signal,
    );
}

#[test]
fn early_release_fuzzy_violation_is_caught() {
    // No deadlock, no panic — the barrier simply fails to barrier. Only
    // the ledger's fuzzy-property check can see this.
    must_catch(
        "mutant/early-release",
        2,
        1,
        0,
        || Arc::new(MutantEarlyRelease::<ShadowSync>::new(2)),
        |d| matches!(d, Defect::FuzzyViolation { .. }),
    );
}

#[test]
fn hier_leader_early_release_is_caught() {
    // n=3, shard size 2: shard {0,1} fills and the buggy leader bumps the
    // shard epoch before the top level has heard from shard {2}. Both
    // members of the full shard return from wait while participant 2 has
    // not even begun — a fuzzy violation visible on the very first
    // sequential schedule, no preemption needed.
    must_catch(
        "mutant/hier-leader-early-release",
        3,
        1,
        0,
        || Arc::new(MutantLeaderEarlyRelease::<ShadowSync>::new(3)),
        |d| matches!(d, Defect::FuzzyViolation { .. }),
    );
}

#[test]
fn random_mode_also_catches_a_mutant() {
    // The torn increment fires under almost any non-sequential order, so
    // random sampling should find it fast.
    let mut scenario = protocol_with("mutant/counting/random", 2, 1, move || {
        Arc::new(MutantCounting::<ShadowSync>::new(2)) as Arc<dyn SplitBarrier>
    });
    let options = ExploreOptions {
        max_schedules: 2_000,
        step_limit: 20_000,
        preemption_bound: None,
    };
    match explore_random(&mut scenario, &options, 0xDECAF) {
        Outcome::Fail { violation, .. } => {
            assert!(is_lost_signal(&violation.defect), "{:?}", violation.defect);
        }
        Outcome::Pass { schedules, .. } => {
            panic!("random mode missed the torn increment in {schedules} schedules")
        }
    }
}

#[test]
fn forgotten_poison_is_caught() {
    // The aborter calls abort(), but the mutant's poison() is a no-op, so
    // the survivors never learn episode 1 can't complete and hang forever
    // in wait_deadline(never). Episode 1 is not fully arrived (the aborter
    // quit), so this classifies as a plain deadlock, not a lost wakeup.
    let mut scenario = poison_with("mutant/no-poison".to_string(), 3, || {
        Arc::new(MutantNoPoison::new(3)) as Arc<dyn SplitBarrier>
    });
    match explore_dfs(&mut scenario, &opts(2)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            assert!(
                is_lost_signal(&violation.defect),
                "mutant/no-poison: wrong defect class: {:?}",
                violation.defect
            );
            eprintln!(
                "mutant/no-poison: caught after {schedules} schedules: {}",
                violation.defect
            );
        }
        Outcome::Pass { schedules, .. } => {
            panic!("mutant/no-poison survived {schedules} schedules")
        }
    }
}

#[test]
fn eviction_without_mask_update_is_caught() {
    // The mutant "evicts" by pushing a stand-in arrival instead of
    // shrinking the expected mask. The first post-evict episode completes
    // on the free arrival; the second strands the survivors with a fully
    // arrived survivor ledger — a lost wakeup. Needs episodes >= 2.
    let mut scenario = evict_with("mutant/evict-no-mask".to_string(), 3, 2, || {
        Arc::new(MutantEvictNoMask::new(3)) as Arc<dyn SplitBarrier>
    });
    match explore_dfs(&mut scenario, &opts(2)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            assert!(
                is_lost_signal(&violation.defect),
                "mutant/evict-no-mask: wrong defect class: {:?}",
                violation.defect
            );
            eprintln!(
                "mutant/evict-no-mask: caught after {schedules} schedules: {}",
                violation.defect
            );
        }
        Outcome::Pass { schedules, .. } => {
            panic!("mutant/evict-no-mask survived {schedules} schedules")
        }
    }
}

#[test]
fn failing_schedule_replays_to_the_same_defect() {
    let v = must_catch(
        "mutant/counting/replay",
        2,
        1,
        1,
        || Arc::new(MutantCounting::<ShadowSync>::new(2)),
        is_lost_signal,
    );
    let mut scenario = protocol_with("mutant/counting/replay2", 2, 1, move || {
        Arc::new(MutantCounting::<ShadowSync>::new(2)) as Arc<dyn SplitBarrier>
    });
    let (result, diverged) = replay(&mut scenario, v.schedule.clone(), 20_000);
    assert!(!diverged, "replay of a recorded schedule must not diverge");
    let replayed = result.violation.expect("replay must reproduce the defect");
    assert_eq!(
        std::mem::discriminant(&replayed.defect),
        std::mem::discriminant(&v.defect),
        "replayed defect {:?} differs from original {:?}",
        replayed.defect,
        v.defect
    );
}

#[test]
fn async_no_drain_is_caught_as_lost_wakeup() {
    // t0 arrives, polls Pending, parks its waker. t1 arrives (completing
    // the episode), polls its own token to Ready — and never drains the
    // registry. t0 sleeps on a flag nobody sets; its episode fully
    // arrived, so the checker must classify the hang as a lost wakeup.
    use fuzzy_check::mutants::MutantNoDrain;
    use fuzzy_check::{async_handoff_with, AsyncFrontend};
    let mut scenario = async_handoff_with("mutant/no-drain".to_string(), 2, 1, || {
        Arc::new(MutantNoDrain::new(2)) as Arc<dyn AsyncFrontend>
    });
    match explore_dfs(&mut scenario, &opts(2)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            assert!(
                matches!(violation.defect, Defect::LostWakeup { .. }),
                "mutant/no-drain: expected LostWakeup, got {:?}",
                violation.defect
            );
            eprintln!(
                "mutant/no-drain: caught after {schedules} schedules: {}",
                violation.defect
            );
        }
        Outcome::Pass { schedules, .. } => {
            panic!("mutant/no-drain survived {schedules} schedules")
        }
    }
}

#[test]
fn real_async_frontend_survives_the_no_drain_schedule_space() {
    // The same tiny configuration over the *real* AsyncBarrier frontend
    // must exhaust clean: the drain-on-every-completion-path discipline is
    // exactly what separates it from MutantNoDrain.
    let mut scenario = fuzzy_check::async_handoff(fuzzy_check::BackendKind::Central, 2, 1);
    match explore_dfs(&mut scenario, &opts(2)) {
        Outcome::Pass { schedules, .. } => {
            eprintln!("async/central clean over {schedules} schedules");
        }
        Outcome::Fail { violation, .. } => {
            panic!("real async frontend failed: {}", violation)
        }
    }
}

#[test]
fn join_mid_epoch_mutant_is_caught() {
    // The mutant widens the episode the moment join() returns instead of
    // staging the joiner to the next boundary. Depending on the order the
    // checker picks, that surfaces as a fuzzy violation (the in-flight
    // episode releases counting the joiner who never arrived for it), a
    // deadlock (the widened countdown never fills), or a protocol error
    // (a participant is released at the wrong epoch) — any defect class
    // means the checker saw the boundary discipline break.
    use fuzzy_check::mutants::MutantJoinMidEpoch;
    use fuzzy_check::{join_mid_episode_with, ReconfigOps};
    let mut scenario = join_mid_episode_with("mutant/join-mid-epoch".to_string(), || {
        Arc::new(MutantJoinMidEpoch::<ShadowSync>::new(3, 2)) as Arc<dyn ReconfigOps>
    });
    match explore_dfs(&mut scenario, &opts(2)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            eprintln!(
                "mutant/join-mid-epoch: caught after {schedules} schedules: {}",
                violation.defect
            );
        }
        Outcome::Pass { schedules, .. } => {
            panic!("mutant/join-mid-epoch survived {schedules} schedules")
        }
    }
}

#[test]
fn stale_generation_mutant_is_caught() {
    // The mutant looks up the slot's *current* generation instead of
    // checking the credential it was handed, so a departed member's stale
    // handle is accepted — it either completes an episode it has no right
    // to join (protocol error: "stale credential accepted") or trips the
    // honest inner barrier's rank check (also a protocol error). Either
    // way the probe never sees the StaleGeneration rejection the scenario
    // demands, deterministically, on the very first sequential schedule.
    use fuzzy_check::mutants::MutantStaleGeneration;
    use fuzzy_check::{stale_generation_with, ReconfigOps};
    let mut scenario = stale_generation_with("mutant/stale-generation".to_string(), || {
        Arc::new(MutantStaleGeneration::new(2, 2)) as Arc<dyn ReconfigOps>
    });
    match explore_dfs(&mut scenario, &opts(0)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            assert!(
                matches!(violation.defect, Defect::ProtocolError { .. }),
                "mutant/stale-generation: expected ProtocolError, got {:?}",
                violation.defect
            );
            eprintln!(
                "mutant/stale-generation: caught after {schedules} schedules: {}",
                violation.defect
            );
        }
        Outcome::Pass { schedules, .. } => {
            panic!("mutant/stale-generation survived {schedules} schedules")
        }
    }
}

/// DFS options for the real-implementation reconfig pass runs: the
/// scenarios have three threads and membership churn, so the schedule
/// space is deep — 10k schedules at bound 2 keeps the suite fast while
/// still covering every join/arrive and depart/arrive race the mutants
/// fail under.
fn reconfig_pass_opts() -> ExploreOptions {
    ExploreOptions {
        max_schedules: 10_000,
        step_limit: 20_000,
        preemption_bound: Some(2),
    }
}

#[test]
fn real_reconfig_survives_join_mid_episode_schedules() {
    let mut scenario = fuzzy_check::join_mid_episode();
    match explore_dfs(&mut scenario, &reconfig_pass_opts()) {
        Outcome::Pass { schedules, .. } => {
            eprintln!("reconfig/join-mid-episode clean over {schedules} schedules");
        }
        Outcome::Fail { violation, .. } => {
            panic!(
                "real ReconfigBarrier failed join-mid-episode: {}",
                violation
            )
        }
    }
}

#[test]
fn real_reconfig_survives_stale_generation_schedules() {
    let mut scenario = fuzzy_check::stale_generation();
    match explore_dfs(&mut scenario, &reconfig_pass_opts()) {
        Outcome::Pass { schedules, .. } => {
            eprintln!("reconfig/stale-generation clean over {schedules} schedules");
        }
        Outcome::Fail { violation, .. } => {
            panic!(
                "real ReconfigBarrier failed stale-generation: {}",
                violation
            )
        }
    }
}

#[test]
fn real_reconfig_survives_join_evict_race_schedules() {
    let mut scenario = fuzzy_check::join_evict_race();
    match explore_dfs(&mut scenario, &reconfig_pass_opts()) {
        Outcome::Pass { schedules, .. } => {
            eprintln!("reconfig/join-evict-race clean over {schedules} schedules");
        }
        Outcome::Fail { violation, .. } => {
            panic!("real ReconfigBarrier failed join-evict-race: {}", violation)
        }
    }
}

#[test]
fn net_skip_round_forged_release_is_caught() {
    // The transport forges rounds 1.. from the round-0 signal, so an
    // endpoint releases knowing only that its immediate predecessor
    // arrived. At three endpoints the very first sequential order already
    // lets rank 1 release while rank 2 has not begun: no deadlock, no
    // panic — only the ledger's cross-mesh fuzzy check can see it.
    use fuzzy_check::mutants::MutantNetSkipRound;
    use fuzzy_check::net_round_with;
    use fuzzy_net::{LoopbackMesh, NetBarrier, NetConfig};
    let mut scenario = net_round_with("mutant/net-skip-round".to_string(), 3, 1, move || {
        let mesh = LoopbackMesh::new(3);
        mesh.endpoints()
            .into_iter()
            .map(|t| {
                NetBarrier::<ShadowSync>::start_in(
                    Arc::new(MutantNetSkipRound::new(Arc::new(t))),
                    NetConfig::new()
                        .policy(fuzzy_barrier::StallPolicy::Spin)
                        .round_timeout(None),
                ) as Arc<dyn SplitBarrier>
            })
            .collect()
    });
    match explore_dfs(&mut scenario, &opts(1)) {
        Outcome::Fail {
            violation,
            schedules,
        } => {
            assert!(
                matches!(violation.defect, Defect::FuzzyViolation { .. }),
                "mutant/net-skip-round: expected FuzzyViolation, got {:?}",
                violation.defect
            );
            eprintln!(
                "mutant/net-skip-round: caught after {schedules} schedules: {}",
                violation.defect
            );
        }
        Outcome::Pass { schedules, .. } => {
            panic!("mutant/net-skip-round survived {schedules} schedules")
        }
    }
}

#[test]
fn real_net_barrier_survives_the_skip_round_schedule_space() {
    // The same mesh shape over the *real* transport must stay clean: the
    // per-round inbound waits are exactly what the mutant short-circuits.
    let mut scenario = fuzzy_check::net_round(3, 1);
    let options = ExploreOptions {
        max_schedules: 5_000,
        step_limit: 20_000,
        preemption_bound: Some(1),
    };
    match explore_dfs(&mut scenario, &options) {
        Outcome::Pass { schedules, .. } => {
            eprintln!("net/loopback clean over {schedules} schedules");
        }
        Outcome::Fail { violation, .. } => {
            panic!(
                "real NetBarrier failed the net-round scenario: {}",
                violation
            )
        }
    }
}
