//! The instrumented [`SyncOps`] domain the checker runs backends under.
//!
//! [`ShadowSync`]'s atomics wrap the real `std::sync::atomic` types but
//! announce every access to the scheduler first ([`ctx::yield_op`]), so the
//! controller decides the order in which operations land. Because exactly
//! one virtual thread executes at a time, the explored executions are the
//! *sequentially consistent* interleavings of the backends' atomic
//! operations. Weak-memory reorderings (the `Relaxed`/`Acquire`/`Release`
//! distinctions the production code is audited for) are **not** explored —
//! this is a loom-lite, not a loom.
//!
//! [`ShadowSync::wait_until`] replaces spinning with real descheduling: it
//! reads the scheduler's write generation *before* probing the predicate
//! and blocks only until a write lands past that generation. A write racing
//! with the probe therefore re-runs the probe instead of being lost.

use crate::ctx;
use crate::sched::OpKind;
use fuzzy_barrier::spin::{self, SpinReport, StallPolicy};
use fuzzy_barrier::sync::{Atomic, SyncOps};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Atomic `u32` that yields to the scheduler before every access.
#[derive(Debug)]
pub struct ShadowU32(AtomicU32);

/// Atomic `u64` that yields to the scheduler before every access.
#[derive(Debug)]
pub struct ShadowU64(AtomicU64);

/// Atomic `usize` that yields to the scheduler before every access.
#[derive(Debug)]
pub struct ShadowUsize(AtomicUsize);

macro_rules! impl_shadow_atomic {
    ($ty:ty, $shadow:ident, $atomic:ty) => {
        impl Atomic<$ty> for $shadow {
            fn new(value: $ty) -> Self {
                // Construction races with nothing: barriers are built before
                // their bodies are scheduled. No yield.
                $shadow(<$atomic>::new(value))
            }
            fn load(&self, order: Ordering) -> $ty {
                ctx::yield_op(OpKind::Load);
                self.0.load(order)
            }
            fn store(&self, value: $ty, order: Ordering) {
                ctx::yield_op(OpKind::Store);
                self.0.store(value, order);
            }
            fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                ctx::yield_op(OpKind::Rmw);
                self.0.fetch_add(value, order)
            }
            fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                ctx::yield_op(OpKind::Rmw);
                self.0.fetch_sub(value, order)
            }
            fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                ctx::yield_op(OpKind::Rmw);
                self.0.fetch_max(value, order)
            }
        }
    };
}

impl_shadow_atomic!(u32, ShadowU32, AtomicU32);
impl_shadow_atomic!(u64, ShadowU64, AtomicU64);
impl_shadow_atomic!(usize, ShadowUsize, AtomicUsize);

/// The checker's [`SyncOps`]: instantiate any backend as e.g.
/// `CentralBarrier::<ShadowSync>::with_policy_in(..)` and its every atomic
/// access becomes a scheduling decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowSync;

impl SyncOps for ShadowSync {
    type AtomicU32 = ShadowU32;
    type AtomicU64 = ShadowU64;
    type AtomicUsize = ShadowUsize;

    fn wait_until(policy: StallPolicy, mut pred: impl FnMut() -> bool) -> SpinReport {
        if ctx::write_gen().is_none() {
            // No checker run on this thread: behave like production.
            return spin::wait_until(policy, pred);
        }
        let mut probes: u64 = 0;
        let mut descheduled = false;
        loop {
            if ctx::aborted() {
                // Pretend success so the backend unwinds; bodies check
                // `ctx::aborted()` after every blocking call.
                return SpinReport {
                    probes,
                    descheduled,
                    waited: Duration::ZERO,
                    timed_out: false,
                };
            }
            // Capture the generation BEFORE probing: a write that lands
            // between a failed probe and the block below leaves
            // `write_gen > gen`, making the block a no-op.
            let gen = ctx::write_gen().unwrap_or(0);
            if pred() {
                return SpinReport {
                    probes,
                    descheduled,
                    waited: Duration::ZERO,
                    timed_out: false,
                };
            }
            probes += 1;
            descheduled = true;
            ctx::block_until_write_after(gen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Outside a run the shadow types must behave exactly like std atomics.
    #[test]
    fn shadow_atomics_work_without_a_scheduler() {
        let a = ShadowU64::new(3);
        assert_eq!(a.load(Ordering::Acquire), 3);
        a.store(5, Ordering::Release);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 5);
        assert_eq!(a.fetch_sub(1, Ordering::AcqRel), 7);
        assert_eq!(a.fetch_max(100, Ordering::AcqRel), 6);
        assert_eq!(a.load(Ordering::Acquire), 100);
    }

    #[test]
    fn shadow_wait_until_without_scheduler_is_spin() {
        let r = ShadowSync::wait_until(StallPolicy::Spin, || true);
        assert!(r.was_instant());
    }
}
