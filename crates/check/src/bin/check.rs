//! `check` — command-line front end for the fuzzy-check model checker.
//!
//! ```text
//! check [--backend central|counting|dissemination|tree|hier|all]
//!       [--scenario protocol|subset|registry|poison|evict|async|reconfig|net|all]
//!       [-n/--participants N] [--episodes E]
//!       [--mode dfs|random] [--schedules N] [--seed S]
//!       [--preemptions N|unlimited]
//!       [--replay T0,T1,...] [--trace]
//! ```
//!
//! Exit codes: 0 = all explorations passed, 1 = a violation was found,
//! 2 = usage error.

use fuzzy_check::{
    explore_dfs, explore_random, replay, BackendKind, ExploreOptions, Outcome, Scenario,
    DEFAULT_STEP_LIMIT,
};
use std::time::Instant;

#[derive(Debug, Clone)]
struct Config {
    backends: Vec<BackendKind>,
    scenarios: Vec<String>,
    participants: usize,
    episodes: u64,
    mode: Mode,
    schedules: usize,
    seed: u64,
    preemptions: Option<usize>,
    replay_schedule: Option<Vec<usize>>,
    trace: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Dfs,
    Random,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            backends: BackendKind::ALL.to_vec(),
            scenarios: vec!["protocol".into()],
            participants: 3,
            episodes: 2,
            mode: Mode::Dfs,
            schedules: 10_000,
            seed: 0xF022_BA44,
            preemptions: None,
            replay_schedule: None,
            trace: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: check [--backend central|counting|dissemination|tree|hier|all]\n\
         \x20            [--scenario protocol|subset|registry|poison|evict|async|reconfig|net|all]\n\
         \x20            [-n|--participants N] [--episodes E]\n\
         \x20            [--mode dfs|random] [--schedules N] [--seed S]\n\
         \x20            [--preemptions N|unlimited]\n\
         \x20            [--replay T0,T1,...] [--trace]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("check: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--backend" => {
                let v = value("--backend");
                cfg.backends = if v == "all" {
                    BackendKind::ALL.to_vec()
                } else {
                    match BackendKind::parse(&v) {
                        Some(b) => vec![b],
                        None => {
                            eprintln!("check: unknown backend {v:?}");
                            usage();
                        }
                    }
                };
            }
            "--scenario" => {
                let v = value("--scenario");
                match v.as_str() {
                    "all" => {
                        cfg.scenarios = vec![
                            "protocol".into(),
                            "subset".into(),
                            "registry".into(),
                            "poison".into(),
                            "evict".into(),
                            "async".into(),
                            "reconfig".into(),
                            "net".into(),
                        ];
                    }
                    "protocol" | "subset" | "registry" | "poison" | "evict" | "async"
                    | "reconfig" | "net" => {
                        cfg.scenarios = vec![v];
                    }
                    _ => {
                        eprintln!("check: unknown scenario {v:?}");
                        usage();
                    }
                }
            }
            "-n" | "--participants" => {
                cfg.participants = parse_num(&value("--participants"));
                if cfg.participants == 0 {
                    eprintln!("check: need at least one participant");
                    usage();
                }
            }
            "--episodes" => cfg.episodes = parse_num(&value("--episodes")) as u64,
            "--mode" => match value("--mode").as_str() {
                "dfs" => cfg.mode = Mode::Dfs,
                "random" => cfg.mode = Mode::Random,
                v => {
                    eprintln!("check: unknown mode {v:?}");
                    usage();
                }
            },
            "--schedules" => cfg.schedules = parse_num(&value("--schedules")),
            "--seed" => cfg.seed = parse_num(&value("--seed")) as u64,
            "--preemptions" => {
                let v = value("--preemptions");
                cfg.preemptions = if v == "unlimited" {
                    None
                } else {
                    Some(parse_num(&v))
                };
            }
            "--replay" => {
                let v = value("--replay");
                let parsed: Option<Vec<usize>> =
                    v.split(',').map(|s| s.trim().parse().ok()).collect();
                match parsed {
                    Some(schedule) if !schedule.is_empty() => {
                        cfg.replay_schedule = Some(schedule);
                    }
                    _ => {
                        eprintln!("check: --replay wants a comma-separated thread-id list");
                        usage();
                    }
                }
            }
            "--trace" => cfg.trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("check: unknown argument {other:?}");
                usage();
            }
        }
    }
    cfg
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("check: {s:?} is not a number");
        usage();
    })
}

/// Builds the scenario list the config selects.
fn scenarios(cfg: &Config) -> Vec<Scenario> {
    let mut out = Vec::new();
    for name in &cfg.scenarios {
        match name.as_str() {
            "protocol" => {
                for backend in &cfg.backends {
                    out.push(fuzzy_check::protocol(
                        *backend,
                        cfg.participants,
                        cfg.episodes,
                    ));
                }
            }
            // The subset and registry scenarios pin their own thread
            // counts (they encode specific mask topologies); -n is
            // intentionally ignored for them.
            "subset" => {
                out.push(fuzzy_check::subset_pair(cfg.episodes));
                out.push(fuzzy_check::subset_overlap(cfg.episodes));
            }
            "registry" => out.push(fuzzy_check::registry(cfg.episodes)),
            "poison" => {
                for backend in &cfg.backends {
                    out.push(fuzzy_check::poison(*backend, cfg.participants));
                }
            }
            "evict" => {
                for backend in &cfg.backends {
                    out.push(fuzzy_check::evict(*backend, cfg.participants, cfg.episodes));
                }
            }
            "async" => {
                for backend in &cfg.backends {
                    out.push(fuzzy_check::async_handoff(
                        *backend,
                        cfg.participants,
                        cfg.episodes,
                    ));
                }
            }
            // The reconfig scenarios pin their own membership shapes
            // (founders + joiner, leaver + reuser, evictee + joiner);
            // -n and --backend are intentionally ignored for them.
            "reconfig" => {
                out.push(fuzzy_check::join_mid_episode());
                out.push(fuzzy_check::stale_generation());
                out.push(fuzzy_check::join_evict_race());
            }
            // The net scenario pins its own backend (a NetBarrier per
            // loopback endpoint); --backend is intentionally ignored.
            "net" => out.push(fuzzy_check::net_round(cfg.participants, cfg.episodes)),
            _ => unreachable!("validated in parse_args"),
        }
    }
    out
}

fn main() {
    let cfg = parse_args();

    if let Some(schedule) = cfg.replay_schedule.clone() {
        std::process::exit(run_replay(&cfg, schedule));
    }

    let opts = ExploreOptions {
        max_schedules: cfg.schedules,
        step_limit: DEFAULT_STEP_LIMIT,
        preemption_bound: cfg.preemptions,
    };
    let mut failed = false;
    for mut scenario in scenarios(&cfg) {
        let start = Instant::now();
        let outcome = match cfg.mode {
            Mode::Dfs => explore_dfs(&mut scenario, &opts),
            Mode::Random => explore_random(&mut scenario, &opts, cfg.seed),
        };
        let elapsed = start.elapsed();
        let mode = match cfg.mode {
            Mode::Dfs => "dfs",
            Mode::Random => format!("random(seed={})", cfg.seed).leak(),
        };
        match outcome {
            Outcome::Pass {
                schedules,
                exhausted,
            } => {
                let coverage = if exhausted { "exhausted" } else { "budget" };
                println!(
                    "check: {} {mode} PASS ({schedules} schedules, {coverage}, {:.2}s)",
                    scenario.name,
                    elapsed.as_secs_f64()
                );
            }
            Outcome::Fail {
                violation,
                schedules,
            } => {
                failed = true;
                println!(
                    "check: {} {mode} FAIL after {schedules} schedules ({:.2}s)",
                    scenario.name,
                    elapsed.as_secs_f64()
                );
                println!("  {violation}");
                println!(
                    "  replay: check --scenario {} --replay {}",
                    summary_scenario_flag(&scenario.name),
                    violation
                        .schedule
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// Best-effort `--scenario`/`--backend` flags for the replay hint.
fn summary_scenario_flag(name: &str) -> String {
    let mut parts = name.split('/');
    let scenario = parts.next().unwrap_or("protocol");
    match parts.next() {
        Some(backend) if scenario == "protocol" => {
            format!("protocol --backend {backend}")
        }
        _ => scenario.to_string(),
    }
}

fn run_replay(cfg: &Config, schedule: Vec<usize>) -> i32 {
    let mut scens = scenarios(cfg);
    if scens.len() != 1 {
        eprintln!(
            "check: --replay needs exactly one scenario (got {}); pin --scenario and --backend",
            scens.len()
        );
        return 2;
    }
    let scenario = &mut scens[0];
    println!(
        "check: replaying {} ({} grants)",
        scenario.name,
        schedule.len()
    );
    let (result, diverged) = replay(scenario, schedule, DEFAULT_STEP_LIMIT);
    if diverged {
        println!("check: note: replay diverged from the recorded schedule");
    }
    if cfg.trace {
        println!(
            "  executed: {}",
            result
                .schedule
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    match result.violation {
        Some(violation) => {
            println!("  {violation}");
            1
        }
        None => {
            println!(
                "  no violation under this schedule ({} steps)",
                result.steps
            );
            0
        }
    }
}
