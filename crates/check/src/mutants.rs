//! Seeded-bug barrier backends ("mutants") that the checker must catch.
//!
//! Each mutant copies one stock backend and re-introduces a realistic
//! concurrency bug — the kind a refactor could plausibly create. They are
//! the checker's regression suite in reverse: a checker release is only
//! trustworthy if it *fails* every one of these within its schedule
//! budget. Three of the first five are interleaving-dependent (they pass
//! on the default round-robin-ish schedule and need a specific
//! preemption), which is precisely what distinguishes a model checker
//! from a stress test. The sixth is hierarchical: a shard leader that
//! releases its shard before the top-level sync completes — the sharded
//! flavor of the early-release fuzzy violation. The next two seed
//! *fault-handling* bugs — a recovery layer that forgets to poison, and
//! an eviction that forgets to shrink the mask — caught by the
//! poison/evict scenarios. The ninth is an *async frontend* whose
//! completion path forgets to drain the parked-waker registry — the
//! canonical lost wakeup of poll-based waiting, caught by the
//! waker-handoff scenario. The next two seed *dynamic-membership* bugs:
//! a join admitted mid-episode instead of at the boundary, and a
//! credential check that forgets the slot generation — caught by the
//! reconfig scenarios. The last is a *distributed* bug: a transport
//! wrapper that forges the higher dissemination rounds from the round-0
//! signal, releasing a `NetBarrier` endpoint on first contact — caught by
//! the net-round scenario's cross-mesh fuzzy check.

use crate::scenario::{AsyncArrival, AsyncFrontend, ReconfigOps};
use crate::shadow::ShadowSync;
use fuzzy_barrier::spin::SpinReport;
use fuzzy_barrier::stats::StatsSnapshot;
use fuzzy_barrier::sync::{Atomic, SyncOps};
use fuzzy_barrier::{
    ArrivalToken, BarrierError, CentralBarrier, Deadline, JoinTicket, MemberHandle,
    ReconfigBarrier, SplitBarrier, StallPolicy, WaitOutcome,
};
use fuzzy_net::{DecodeError, FrameSink, Message, NetError, Transport};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, Weak};
use std::task::{Context, Poll, Waker};

fn outcome(episode: u64, report: SpinReport) -> WaitOutcome {
    WaitOutcome {
        episode,
        stalled: !report.was_instant(),
        descheduled: report.descheduled,
        probes: report.probes,
        stall_time: report.waited,
    }
}

// ---------------------------------------------------------------------------
// MutantCentral: publish-before-re-arm
// ---------------------------------------------------------------------------

/// Centralized barrier whose completing arrival **publishes the episode
/// before re-arming the counter**.
///
/// The race: the last arriver bumps `episode`, releasing the waiters; a
/// released thread re-arrives for the next episode and decrements the
/// still-un-re-armed counter (0 → wraparound); the completer's belated
/// `store(n)` then overwrites the counter, silently discarding that
/// arrival. The next episode can never complete — a **lost wakeup** that
/// needs at least two episodes and one specific preemption to manifest.
#[derive(Debug)]
pub struct MutantCentral<S: SyncOps = ShadowSync> {
    n: usize,
    count: S::AtomicUsize,
    episode: S::AtomicU64,
    local_episode: Vec<S::AtomicU64>,
}

impl<S: SyncOps> MutantCentral<S> {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        MutantCentral {
            n,
            count: S::AtomicUsize::new(n),
            episode: S::AtomicU64::new(0),
            local_episode: (0..n).map(|_| S::AtomicU64::new(0)).collect(),
        }
    }
}

impl<S: SyncOps> SplitBarrier for MutantCentral<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // BUG (seeded): the stock backend re-arms the counter first,
            // then publishes. Swapping the two opens the window above.
            self.episode.fetch_add(1, Ordering::Release);
            self.count.store(self.n, Ordering::Release);
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.episode.load(Ordering::Acquire) > token.episode()
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(StallPolicy::Spin, || {
            self.episode.load(Ordering::Acquire) > token.episode()
        });
        outcome(token.episode(), report)
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// MutantCounting: non-atomic increment
// ---------------------------------------------------------------------------

/// Counting barrier whose arrival increment is a **load/store pair**
/// instead of a `fetch_add`.
///
/// Two arrivals interleaved load/load/store/store lose a count; the
/// threshold `(e + 1) · n` is never reached and every waiter sticks — a
/// lost wakeup reachable within a single episode.
#[derive(Debug)]
pub struct MutantCounting<S: SyncOps = ShadowSync> {
    n: usize,
    arrivals: S::AtomicU64,
    local_episode: Vec<S::AtomicU64>,
}

impl<S: SyncOps> MutantCounting<S> {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        MutantCounting {
            n,
            arrivals: S::AtomicU64::new(0),
            local_episode: (0..n).map(|_| S::AtomicU64::new(0)).collect(),
        }
    }

    fn threshold(&self, episode: u64) -> u64 {
        (episode + 1) * self.n as u64
    }
}

impl<S: SyncOps> SplitBarrier for MutantCounting<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        // BUG (seeded): the stock backend uses fetch_add; a read-modify-
        // write torn into a load and a store drops concurrent arrivals.
        let current = self.arrivals.load(Ordering::Acquire);
        self.arrivals.store(current + 1, Ordering::Release);
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.arrivals.load(Ordering::Acquire) >= self.threshold(token.episode())
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let threshold = self.threshold(token.episode());
        let report = S::wait_until(StallPolicy::Spin, || {
            self.arrivals.load(Ordering::Acquire) >= threshold
        });
        outcome(token.episode(), report)
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// MutantDissemination: exact-match flag comparison
// ---------------------------------------------------------------------------

/// Dissemination barrier that compares received signals with `==` instead
/// of `>=`.
///
/// Flags carry monotone `episode + 1` values precisely so that a slot
/// overwritten by a *faster* partner (already an episode ahead — legal
/// under split-phase semantics, where a peer may race through its region
/// and re-arrive) still satisfies the slower waiter. Demanding an exact
/// match turns that benign overwrite into a permanently missed signal.
#[derive(Debug)]
pub struct MutantDissemination<S: SyncOps = ShadowSync> {
    n: usize,
    rounds: u32,
    flags: Vec<Vec<S::AtomicU64>>,
    episode: Vec<S::AtomicU64>,
    round: Vec<S::AtomicU32>,
}

impl<S: SyncOps> MutantDissemination<S> {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 1, "the bug needs a partner");
        let rounds = usize::BITS - (n - 1).leading_zeros();
        MutantDissemination {
            n,
            rounds,
            flags: (0..rounds)
                .map(|_| (0..n).map(|_| S::AtomicU64::new(0)).collect())
                .collect(),
            episode: (0..n).map(|_| S::AtomicU64::new(0)).collect(),
            round: (0..n).map(|_| S::AtomicU32::new(0)).collect(),
        }
    }

    fn signal(&self, from: usize, round: u32, episode_plus_one: u64) {
        let target = (from + (1usize << round)) % self.n;
        self.flags[round as usize][target].store(episode_plus_one, Ordering::Release);
    }

    fn try_progress(&self, id: usize, episode: u64) -> bool {
        let goal = episode + 1;
        loop {
            let round = self.round[id].load(Ordering::Relaxed);
            if round >= self.rounds {
                return true;
            }
            // BUG (seeded): `==` instead of `>=` — a partner running an
            // episode ahead overwrites the slot with goal + 1 and this
            // waiter never matches again.
            if self.flags[round as usize][id].load(Ordering::Acquire) == goal {
                let next = round + 1;
                if next < self.rounds {
                    self.signal(id, next, goal);
                }
                self.round[id].store(next, Ordering::Relaxed);
                if next == self.rounds {
                    return true;
                }
            } else {
                return false;
            }
        }
    }
}

impl<S: SyncOps> SplitBarrier for MutantDissemination<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let episode = self.episode[id].fetch_add(1, Ordering::Relaxed);
        self.round[id].store(0, Ordering::Relaxed);
        self.signal(id, 0, episode + 1);
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.try_progress(token.participant(), token.episode())
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(StallPolicy::Spin, || {
            self.try_progress(token.participant(), token.episode())
        });
        outcome(token.episode(), report)
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// MutantTree: propagate-before-re-arm
// ---------------------------------------------------------------------------

/// Combining-tree barrier (fan-in 2) whose completing arrival at a node
/// **propagates upward before re-arming the node** — the tree-shaped twin
/// of [`MutantCentral`]: a fast participant released by the root's episode
/// bump re-arrives and decrements a not-yet-re-armed node; the belated
/// re-arm overwrites the wrapped counter and the arrival is lost.
#[derive(Debug)]
pub struct MutantTree<S: SyncOps = ShadowSync> {
    n: usize,
    nodes: Vec<MutantNode<S>>,
    leaf_of: Vec<usize>,
    episode: S::AtomicU64,
    local_episode: Vec<S::AtomicU64>,
}

#[derive(Debug)]
struct MutantNode<S: SyncOps> {
    count: S::AtomicUsize,
    expected: usize,
    parent: Option<usize>,
}

impl<S: SyncOps> MutantTree<S> {
    /// Creates the mutant for `n` participants, fan-in 2.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let fan_in = 2usize;
        let mut nodes: Vec<MutantNode<S>> = Vec::new();
        let level0 = n.div_ceil(fan_in);
        for g in 0..level0 {
            let members = fan_in.min(n - g * fan_in);
            nodes.push(MutantNode {
                count: S::AtomicUsize::new(members),
                expected: members,
                parent: None,
            });
        }
        let leaf_of = (0..n).map(|id| id / fan_in).collect();
        let mut level_start = 0usize;
        let mut level_len = level0;
        while level_len > 1 {
            let next_len = level_len.div_ceil(fan_in);
            let next_start = nodes.len();
            for g in 0..next_len {
                let members = fan_in.min(level_len - g * fan_in);
                nodes.push(MutantNode {
                    count: S::AtomicUsize::new(members),
                    expected: members,
                    parent: None,
                });
            }
            for i in 0..level_len {
                nodes[level_start + i].parent = Some(next_start + i / fan_in);
            }
            level_start = next_start;
            level_len = next_len;
        }
        MutantTree {
            n,
            nodes,
            leaf_of,
            episode: S::AtomicU64::new(0),
            local_episode: (0..n).map(|_| S::AtomicU64::new(0)).collect(),
        }
    }

    fn signal_node(&self, index: usize) {
        let node = &self.nodes[index];
        if node.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // BUG (seeded): the stock backend re-arms the node before
            // propagating; doing it after leaves a window where released
            // participants decrement a stale counter.
            match node.parent {
                Some(parent) => self.signal_node(parent),
                None => {
                    self.episode.fetch_add(1, Ordering::Release);
                }
            }
            node.count.store(node.expected, Ordering::Release);
        }
    }
}

impl<S: SyncOps> SplitBarrier for MutantTree<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.signal_node(self.leaf_of[id]);
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.episode.load(Ordering::Acquire) > token.episode()
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(StallPolicy::Spin, || {
            self.episode.load(Ordering::Acquire) > token.episode()
        });
        outcome(token.episode(), report)
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// MutantEarlyRelease: off-by-one wait predicate
// ---------------------------------------------------------------------------

/// Centralized barrier whose wait predicate uses `>=` instead of `>`:
/// `wait(token)` for episode *e* returns as soon as the episode counter
/// reaches *e* — i.e. immediately, before anyone else arrived. This is the
/// canonical **fuzzy-semantics violation** and proves the checker's ledger
/// check fires: no deadlock, no panic, just a barrier that does not
/// barrier.
#[derive(Debug)]
pub struct MutantEarlyRelease<S: SyncOps = ShadowSync> {
    n: usize,
    count: S::AtomicUsize,
    episode: S::AtomicU64,
    local_episode: Vec<S::AtomicU64>,
}

impl<S: SyncOps> MutantEarlyRelease<S> {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        MutantEarlyRelease {
            n,
            count: S::AtomicUsize::new(n),
            episode: S::AtomicU64::new(0),
            local_episode: (0..n).map(|_| S::AtomicU64::new(0)).collect(),
        }
    }
}

impl<S: SyncOps> SplitBarrier for MutantEarlyRelease<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.count.store(self.n, Ordering::Release);
            self.episode.fetch_add(1, Ordering::Release);
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        // BUG (seeded): `>=` instead of `>` — satisfied before the
        // episode completes.
        self.episode.load(Ordering::Acquire) >= token.episode()
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(StallPolicy::Spin, || {
            self.episode.load(Ordering::Acquire) >= token.episode()
        });
        outcome(token.episode(), report)
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// MutantLeaderEarlyRelease: shard released before the top-level sync
// ---------------------------------------------------------------------------

/// Hierarchical (sharded) barrier whose shard leader **bumps the shard's
/// release epoch as soon as its own shard fills**, before the top-level
/// synchronization across shards has completed.
///
/// The tempting-but-wrong optimization: "my shard is done, release my
/// local waiters early and let the leader handle the rest". A full shard's
/// waiters then sail past participants in *other* shards that have not
/// even arrived — the hierarchical flavor of the canonical fuzzy-semantics
/// violation, invisible to deadlock detection (every wait returns) and
/// caught only by the ledger check. The stock
/// [`fuzzy_barrier::HierBarrier`] guards exactly this edge: a shard epoch
/// may only advance after the shard's leader rounds complete.
#[derive(Debug)]
pub struct MutantLeaderEarlyRelease<S: SyncOps = ShadowSync> {
    n: usize,
    shards: Vec<MutantShard<S>>,
    /// Total shard sign-ins — what the *correct* wait predicate would
    /// consult (`sign_ins >= (episode + 1) * shards`).
    top_sign_ins: S::AtomicU64,
    local_episode: Vec<S::AtomicU64>,
}

#[derive(Debug)]
struct MutantShard<S: SyncOps> {
    count: S::AtomicUsize,
    expected: usize,
    epoch: S::AtomicU64,
}

impl<S: SyncOps> MutantLeaderEarlyRelease<S> {
    const SHARD: usize = 2;

    /// Creates the mutant for `n` participants, shard size 2.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > Self::SHARD, "the bug needs a second shard");
        let shards = (0..n.div_ceil(Self::SHARD))
            .map(|g| {
                let members = Self::SHARD.min(n - g * Self::SHARD);
                MutantShard {
                    count: S::AtomicUsize::new(members),
                    expected: members,
                    epoch: S::AtomicU64::new(0),
                }
            })
            .collect();
        MutantLeaderEarlyRelease {
            n,
            shards,
            top_sign_ins: S::AtomicU64::new(0),
            local_episode: (0..n).map(|_| S::AtomicU64::new(0)).collect(),
        }
    }
}

impl<S: SyncOps> SplitBarrier for MutantLeaderEarlyRelease<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[id / Self::SHARD];
        if shard.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            shard.count.store(shard.expected, Ordering::Release);
            self.top_sign_ins.fetch_add(1, Ordering::Release);
            // BUG (seeded): the shard epoch must only advance once the
            // top level confirms *every* shard arrived. Bumping it here
            // releases this shard's waiters while other shards may still
            // be empty.
            shard.epoch.fetch_add(1, Ordering::Release);
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        let shard = &self.shards[token.participant() / Self::SHARD];
        shard.epoch.load(Ordering::Acquire) > token.episode()
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let shard = &self.shards[token.participant() / Self::SHARD];
        let report = S::wait_until(StallPolicy::Spin, || {
            shard.epoch.load(Ordering::Acquire) > token.episode()
        });
        outcome(token.episode(), report)
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// MutantNoPoison: forgets to poison
// ---------------------------------------------------------------------------

/// A fault-handling wrapper around the stock [`CentralBarrier`] whose
/// `poison` is a **no-op** — the "caught the panic, forgot to tell the
/// barrier" bug. `abort` still consumes the aborter's token, so the
/// in-flight episode may complete, but peers that arrive for the *next*
/// episode wait for a participant that will never come and nobody ever
/// releases them: a deadlock only the poison path could have prevented.
#[derive(Debug)]
pub struct MutantNoPoison {
    inner: CentralBarrier<ShadowSync>,
}

impl MutantNoPoison {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MutantNoPoison {
            inner: CentralBarrier::with_policy_in(n, StallPolicy::Spin),
        }
    }
}

impl SplitBarrier for MutantNoPoison {
    fn arrive(&self, id: usize) -> ArrivalToken {
        self.inner.arrive(id)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.inner.is_complete(token)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        self.inner.wait(token)
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.inner.wait_deadline(token, deadline)
    }

    // BUG (seeded): the recovery layer swallows the failure instead of
    // poisoning. `abort` (the trait default) drops the token and calls
    // *this* no-op, so peers blocked on the next episode hang forever.
    fn poison(&self) {}

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        self.inner.evict(id)
    }

    fn participants(&self) -> usize {
        self.inner.participants()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
}

// ---------------------------------------------------------------------------
// MutantEvictNoMask: evicts without shrinking the mask
// ---------------------------------------------------------------------------

/// A fault-handling wrapper around the stock [`CentralBarrier`] whose
/// `evict` supplies the stand-in arrival but **forgets to shrink the
/// participant mask**. The in-flight episode completes (the stand-in
/// counts), so the bug looks fixed — but every later episode still waits
/// for the dead participant's arrival. The survivors' ledger shows all of
/// them arrived, so the checker classifies the hang as a lost wakeup.
#[derive(Debug)]
pub struct MutantEvictNoMask {
    inner: CentralBarrier<ShadowSync>,
}

impl MutantEvictNoMask {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MutantEvictNoMask {
            inner: CentralBarrier::with_policy_in(n, StallPolicy::Spin),
        }
    }
}

impl SplitBarrier for MutantEvictNoMask {
    fn arrive(&self, id: usize) -> ArrivalToken {
        self.inner.arrive(id)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.inner.is_complete(token)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        self.inner.wait(token)
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.inner.wait_deadline(token, deadline)
    }

    fn poison(&self) {
        self.inner.poison();
    }

    fn clear_poison(&self) {
        self.inner.clear_poison();
    }

    fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        // BUG (seeded): one stand-in arrival on the evictee's behalf, but
        // the expected-arrivals mask keeps its old width — the *next*
        // episode still counts the dead participant.
        drop(self.inner.arrive(id));
        Ok(())
    }

    fn participants(&self) -> usize {
        self.inner.participants()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
}

// ---------------------------------------------------------------------------
// MutantNoDrain: async frontend that forgets the release drain
// ---------------------------------------------------------------------------

/// An async-frontend replica over the stock [`CentralBarrier`] whose
/// completion path **never drains the parked-waker registry**.
///
/// Polling probes the poller's *own* token, so the task that happens to
/// poll after the last arrival resolves fine — the frontend looks healthy
/// in any single-task test. But a peer that parked earlier is woken by
/// nobody: its episode fully arrived, its waker sits in the registry, and
/// the flag it sleeps on is never set. The checker's deadlock detector
/// sees the stuck shadow wait and the ledger upgrades it to a lost
/// wakeup. This is the bug the real
/// [`fuzzy_barrier::AsyncBarrier`] avoids by draining the registry under
/// the probe lock on every completion path (arrive, poll, poison).
#[derive(Debug)]
pub struct MutantNoDrain {
    inner: CentralBarrier<ShadowSync>,
    /// Registered and then forgotten: nothing ever pops this.
    parked: Mutex<Vec<(usize, u64, Waker)>>,
}

impl MutantNoDrain {
    /// Creates the mutant for `n` participants.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MutantNoDrain {
            inner: CentralBarrier::with_policy_in(n, StallPolicy::Spin),
            parked: Mutex::new(Vec::new()),
        }
    }
}

impl AsyncFrontend for MutantNoDrain {
    fn participants(&self) -> usize {
        self.inner.participants()
    }

    fn arrive_future(self: Arc<Self>, id: usize) -> AsyncArrival {
        let token = self.inner.arrive(id);
        let episode = token.episode();
        drop(token);
        Box::pin(NoDrainFuture {
            owner: self,
            id,
            episode,
        })
    }
}

struct NoDrainFuture {
    owner: Arc<MutantNoDrain>,
    id: usize,
    episode: u64,
}

impl Future for NoDrainFuture {
    type Output = Result<WaitOutcome, BarrierError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        let probe = ArrivalToken::new(this.id, this.episode);
        if this.owner.inner.is_complete(&probe) {
            // BUG (seeded): the real frontend drains the parked-waker
            // registry on every completion path; returning without the
            // drain strands every earlier-parked peer.
            return Poll::Ready(Ok(WaitOutcome {
                episode: this.episode,
                ..WaitOutcome::default()
            }));
        }
        // No shadow operations below this lock: the critical section can
        // never be descheduled while held, so a plain mutex is safe here.
        this.owner
            .parked
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((this.id, this.episode, cx.waker().clone()));
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// MutantJoinMidEpoch: join admitted without an episode boundary
// ---------------------------------------------------------------------------

/// A minimal dynamic-membership barrier that **admits joiners
/// immediately** instead of staging them until the episode boundary.
///
/// The group's width changes under an in-flight episode whose arrival
/// countdown was armed at the old width. Depending on the interleaving,
/// the joiner's arrival either completes the episode one peer early —
/// releasing waiters past a member that never began (the fuzzy
/// violation) — or the re-armed countdown expects an arrival the episode
/// never gets, and every later waiter hangs. This is exactly the bug the
/// real [`ReconfigBarrier`]'s install protocol exists to prevent: the
/// last arriver of epoch *e* installs the membership for *e + 1*, so no
/// episode ever runs at a width it was not armed for.
#[derive(Debug)]
pub struct MutantJoinMidEpoch<S: SyncOps = ShadowSync> {
    capacity: usize,
    /// Current episode width.
    members: S::AtomicUsize,
    /// Arrivals remaining in the in-flight episode.
    remaining: S::AtomicUsize,
    epoch: S::AtomicU64,
    /// Slot claim refcounts, as in the real protocol.
    reserved: Vec<S::AtomicU32>,
}

impl<S: SyncOps> MutantJoinMidEpoch<S> {
    /// Creates the mutant group with `initial` members over `capacity`
    /// slots.
    #[must_use]
    pub fn new(capacity: usize, initial: usize) -> Self {
        assert!(initial > 0 && initial <= capacity);
        MutantJoinMidEpoch {
            capacity,
            members: S::AtomicUsize::new(initial),
            remaining: S::AtomicUsize::new(initial),
            epoch: S::AtomicU64::new(0),
            reserved: (0..capacity)
                .map(|slot| S::AtomicU32::new(u32::from(slot < initial)))
                .collect(),
        }
    }
}

impl<S: SyncOps> ReconfigOps for MutantJoinMidEpoch<S> {
    fn join(&self) -> Result<(usize, u64), BarrierError> {
        for slot in 0..self.capacity {
            if self.reserved[slot].fetch_add(1, Ordering::AcqRel) == 0 {
                // BUG (seeded): the real protocol stages the join and
                // lets the boundary installer activate it. Widening the
                // group here changes the width under the in-flight
                // episode, whose countdown was armed at the old width.
                self.members.fetch_add(1, Ordering::AcqRel);
                return Ok((slot, 0));
            }
            self.reserved[slot].fetch_sub(1, Ordering::AcqRel);
        }
        Err(BarrierError::GroupFull {
            capacity: self.capacity,
        })
    }

    fn wait_active(&self, _slot: usize, _generation: u64) {
        // Part of the same bug: the member was admitted on join, so there
        // is no boundary to wait for.
    }

    fn sync(&self, _slot: usize, _generation: u64) -> Result<u64, BarrierError> {
        let e = self.epoch.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.remaining
                .store(self.members.load(Ordering::Acquire), Ordering::Release);
            self.epoch.fetch_add(1, Ordering::AcqRel);
        } else {
            S::wait_until(StallPolicy::Spin, || self.epoch.load(Ordering::Acquire) > e);
        }
        Ok(e)
    }

    fn leave(&self, slot: usize, _generation: u64) -> Result<(), BarrierError> {
        // Mirror sloppiness: the departure is applied immediately too.
        self.members.fetch_sub(1, Ordering::AcqRel);
        self.reserved[slot].fetch_sub(1, Ordering::AcqRel);
        Ok(())
    }

    fn evict(&self, slot: usize, generation: u64) -> Result<(), BarrierError> {
        self.leave(slot, generation)
    }

    fn members(&self) -> usize {
        self.members.load(Ordering::Acquire)
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// MutantStaleGeneration: credential check forgets the generation
// ---------------------------------------------------------------------------

/// A membership layer over the real [`ReconfigBarrier`] whose arrival
/// path **replaces the credential's generation with whatever the slot
/// currently carries** — "the slot number checks out, good enough".
///
/// A departed member's retained handle then arrives straight into the
/// re-occupied slot: the re-occupant's rank gets a second arrival stream,
/// the inner countdown skews, and a member that was removed from the
/// group still gets released by it. The stale-generation scenario expects
/// exactly [`BarrierError::StaleGeneration`] from the probe, so any
/// schedule on which the forged arrival is accepted (or refused with the
/// wrong error) convicts this mutant immediately.
#[derive(Debug)]
pub struct MutantStaleGeneration {
    inner: Arc<ReconfigBarrier<ShadowSync>>,
}

impl MutantStaleGeneration {
    /// Creates the mutant group with `initial` members over `capacity`
    /// slots.
    #[must_use]
    pub fn new(capacity: usize, initial: usize) -> Self {
        let (inner, _founders) = ReconfigBarrier::<ShadowSync>::with_policy_in(
            capacity,
            initial,
            StallPolicy::Spin,
            |n| {
                Arc::new(CentralBarrier::<ShadowSync>::with_policy_in(
                    n,
                    StallPolicy::Spin,
                )) as Arc<dyn SplitBarrier>
            },
        );
        MutantStaleGeneration {
            inner: Arc::new(inner),
        }
    }
}

impl ReconfigOps for MutantStaleGeneration {
    fn join(&self) -> Result<(usize, u64), BarrierError> {
        let ticket = self.inner.join()?;
        Ok((ticket.slot(), ticket.generation()))
    }

    fn wait_active(&self, slot: usize, generation: u64) {
        let _ = self
            .inner
            .wait_active(&JoinTicket::from_parts(slot, generation));
    }

    fn sync(&self, slot: usize, _generation: u64) -> Result<u64, BarrierError> {
        // BUG (seeded): the held generation is dropped on the floor and
        // rebuilt from the slot's current one, so the stale-credential
        // check can never fire and a departed member's handle arrives
        // into whoever occupies the slot now.
        let current = self.inner.generation_of(slot);
        let token = self
            .inner
            .arrive(&MemberHandle::from_parts(slot, current))?;
        self.inner.wait(&token).map(|outcome| outcome.episode)
    }

    fn leave(&self, slot: usize, generation: u64) -> Result<(), BarrierError> {
        self.inner.leave(MemberHandle::from_parts(slot, generation))
    }

    fn evict(&self, slot: usize, generation: u64) -> Result<(), BarrierError> {
        self.inner.evict(slot, generation)
    }

    fn members(&self) -> usize {
        self.inner.members()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }
}

// ---------------------------------------------------------------------------
// MutantNetSkipRound: forged dissemination round
// ---------------------------------------------------------------------------

/// Transport wrapper that **forges the higher dissemination rounds** the
/// moment a round-0 signal arrives, as if an optimizing refactor decided
/// the final round's signal "implies" the earlier ones and collapsed the
/// wait into a single receive.
///
/// The bug: a dissemination endpoint's release is a *transitive* proof —
/// round `r`'s inbound signal certifies the arrival of every endpoint
/// within distance `2^r`, but only because the sender itself waited for
/// its own round `r-1` signal first. Forging the higher rounds from the
/// round-0 signal lets the endpoint release knowing only its immediate
/// predecessor arrived; with three endpoints, ranks release while the
/// third has not even begun. No deadlock, no panic — the barrier simply
/// fails to barrier across the mesh, which only the ledger's fuzzy check
/// can see.
pub struct MutantNetSkipRound {
    inner: Arc<dyn Transport>,
    /// Keeps the forging sink alive: the wrapped transport (by the
    /// [`Transport`] contract) holds its sink weakly, so without this
    /// anchor the forger would die at `start` and drop every frame.
    forger: Mutex<Option<Arc<ForgingSink>>>,
}

impl std::fmt::Debug for MutantNetSkipRound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutantNetSkipRound")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl MutantNetSkipRound {
    /// Wraps a real transport endpoint.
    #[must_use]
    pub fn new(inner: Arc<dyn Transport>) -> Self {
        MutantNetSkipRound {
            inner,
            forger: Mutex::new(None),
        }
    }

    /// Dissemination rounds of the wrapped mesh.
    fn rounds(&self) -> u32 {
        let nodes = self.inner.nodes();
        if nodes <= 1 {
            0
        } else {
            usize::BITS - (nodes - 1).leading_zeros()
        }
    }
}

impl Transport for MutantNetSkipRound {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn send(&self, to: usize, msg: &Message) -> Result<(), NetError> {
        self.inner.send(to, msg)
    }

    fn start(&self, sink: Arc<dyn FrameSink>) {
        // Hold the real sink weakly, as transports do: the barrier owns
        // this transport, and a strong reference back would cycle.
        let forger = Arc::new(ForgingSink {
            inner: Arc::downgrade(&sink),
            rounds: self.rounds(),
        });
        *self.forger.lock().expect("forger lock") = Some(Arc::clone(&forger));
        self.inner.start(forger);
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

/// The delivery-path half of [`MutantNetSkipRound`].
struct ForgingSink {
    inner: Weak<dyn FrameSink>,
    rounds: u32,
}

impl FrameSink for ForgingSink {
    fn deliver(&self, from: usize, msg: Message) {
        let Some(sink) = self.inner.upgrade() else {
            return;
        };
        let forge = match msg {
            Message::Signal { episode, round: 0 } => Some(episode),
            _ => None,
        };
        sink.deliver(from, msg);
        if let Some(episode) = forge {
            // BUG (seeded): claim every higher round's signal is already
            // in, so the barrier releases on first contact.
            for round in 1..self.rounds {
                sink.deliver(from, Message::Signal { episode, round });
            }
        }
    }

    fn decode_failure(&self, from: usize, err: DecodeError) {
        if let Some(sink) = self.inner.upgrade() {
            sink.decode_failure(from, err);
        }
    }

    fn link_down(&self, peer: usize, graceful: bool) {
        if let Some(sink) = self.inner.upgrade() {
            sink.link_down(peer, graceful);
        }
    }
}
