//! Thread-local binding of an OS worker thread to its virtual-thread slot.
//!
//! Shadow atomics and scenario bodies reach their scheduler through free
//! functions here instead of threading a handle everywhere — the shadow
//! types must satisfy `fuzzy_barrier::Atomic`, whose constructors take no
//! scheduler argument, so TLS is the only clean channel.
//!
//! Outside a checker run (no context installed) every function degrades to
//! a no-op, which makes the shadow types usable in plain unit tests: they
//! behave exactly like the real atomics, just slower.

use crate::sched::{Defect, OpKind, Shared};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
}

pub(crate) fn install(shared: Arc<Shared>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { shared, tid }));
}

pub(crate) fn clear() {
    CTX.with(|c| *c.borrow_mut() = None);
}

// Clone the context out of the cell so no RefCell borrow is held across a
// blocking scheduler call.
fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Announces a shadow operation: parks until the scheduler grants a step.
pub fn yield_op(kind: OpKind) {
    if let Some(ctx) = current() {
        ctx.shared.yield_op(ctx.tid, kind);
    }
}

/// The scheduler's current write generation, if a run is active.
pub fn write_gen() -> Option<u64> {
    current().map(|ctx| ctx.shared.current_write_gen())
}

/// Deschedules the current virtual thread until a write lands past `gen`.
pub fn block_until_write_after(gen: u64) {
    if let Some(ctx) = current() {
        ctx.shared.block_until_write_after(ctx.tid, gen);
    }
}

/// True when the current run is aborting because a defect was found.
pub fn aborted() -> bool {
    current().is_some_and(|ctx| ctx.shared.aborted())
}

/// Reports a defect from inside a virtual-thread body and aborts the run.
pub fn report(defect: Defect) {
    if let Some(ctx) = current() {
        ctx.shared.report(defect);
    }
}

/// The current virtual-thread id, if a run is active.
pub fn tid() -> Option<usize> {
    current().map(|ctx| ctx.tid)
}
