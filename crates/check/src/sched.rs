//! The deterministic scheduler at the heart of the checker.
//!
//! A *virtual thread* is an ordinary OS thread that has agreed to move only
//! when told to: before every shadow-atomic operation it parks in
//! `Shared::yield_op` until the controller grants it exactly one step.
//! At any instant at most one virtual thread is executing, so a run is a
//! *sequentially consistent* interleaving fully described by the sequence
//! of grants — the replayable **schedule**.
//!
//! The controller ([`run_schedule`]) waits for quiescence (no thread
//! running, no grant outstanding), computes the runnable set, asks a
//! [`Strategy`] to pick the next thread, and hands out the grant. A thread
//! whose wait predicate failed parks via `Shared::block_until_write_after`
//! and becomes runnable again only after some other thread performs a
//! write — this is what makes deadlock detection sound: if nothing is
//! runnable and not everything is finished, no future write can ever
//! happen.

use std::fmt;
use std::sync::{Condvar, Mutex};

/// Default per-schedule step budget; hitting it is reported as
/// [`Defect::StepLimit`] (livelock suspicion) rather than looping forever.
pub const DEFAULT_STEP_LIMIT: u64 = 100_000;

/// Kind of shadow operation announced at a yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Virtual-thread startup: parks the body until first scheduled, so
    /// thread creation order never leaks into the explored interleaving.
    Spawn,
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Atomic read-modify-write.
    Rmw,
}

impl OpKind {
    fn is_write(self) -> bool {
        matches!(self, OpKind::Store | OpKind::Rmw)
    }
}

/// A defect found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// No virtual thread is runnable, not all have finished, and at least
    /// one waiter's wakeup condition cannot yet hold.
    Deadlock {
        /// The stuck virtual threads.
        blocked: Vec<usize>,
    },
    /// Like a deadlock, except every stuck waiter's episode had *fully
    /// arrived*: the release signal was produced and then lost.
    LostWakeup {
        /// The stuck virtual threads.
        blocked: Vec<usize>,
    },
    /// `wait(token)` returned before every masked participant had arrived
    /// for the token's episode — the fuzzy-barrier semantics were violated.
    FuzzyViolation {
        /// The thread whose `wait` returned early.
        thread: usize,
        /// The episode that had not fully arrived.
        episode: u64,
        /// Participants that had not yet begun the episode.
        missing: Vec<usize>,
    },
    /// A scenario-level invariant failed (wrong episode observed, registry
    /// over capacity, unexpected error from an API call, ...).
    ProtocolError {
        /// The reporting thread.
        thread: usize,
        /// Human-readable description.
        message: String,
    },
    /// A virtual thread body panicked.
    Panic {
        /// The panicking thread.
        thread: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The schedule exceeded its step budget (livelock suspicion).
    StepLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::Deadlock { blocked } => write!(f, "deadlock: threads {blocked:?} stuck"),
            Defect::LostWakeup { blocked } => write!(
                f,
                "lost wakeup: threads {blocked:?} stuck although every participant arrived"
            ),
            Defect::FuzzyViolation {
                thread,
                episode,
                missing,
            } => write!(
                f,
                "fuzzy violation: thread {thread} exited wait for episode {episode} \
                 before participants {missing:?} arrived"
            ),
            Defect::ProtocolError { thread, message } => {
                write!(f, "protocol error on thread {thread}: {message}")
            }
            Defect::Panic { thread, message } => {
                write!(f, "panic on thread {thread}: {message}")
            }
            Defect::StepLimit { limit } => {
                write!(f, "step limit {limit} exceeded (livelock suspicion)")
            }
        }
    }
}

/// A defect plus everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub defect: Defect,
    /// The grant sequence (thread ids) that provokes the defect; feed it
    /// back via `check --replay` to re-execute the exact interleaving.
    pub schedule: Vec<usize>,
    /// Steps executed before the defect fired.
    pub steps: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let trace: Vec<String> = self.schedule.iter().map(ToString::to_string).collect();
        write!(
            f,
            "{} after {} steps\n  schedule: {}",
            self.defect,
            self.steps,
            trace.join(",")
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Ready,
    Running,
    Blocked { at_gen: u64 },
    Finished,
}

#[derive(Debug)]
struct State {
    phase: Vec<Phase>,
    /// A grant the chosen thread has not yet consumed.
    granted: Option<usize>,
    /// Bumped on every shadow write; blocked threads become runnable only
    /// once it passes the generation they observed before their last probe.
    write_gen: u64,
    steps: u64,
    abort: bool,
    violation: Option<Defect>,
    schedule: Vec<usize>,
}

/// Scheduler state shared between the controller and its virtual threads.
#[derive(Debug)]
pub struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    /// Creates scheduler state for `threads` virtual threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Shared {
            state: Mutex::new(State {
                phase: vec![Phase::Ready; threads],
                granted: None,
                write_gen: 0,
                steps: 0,
                abort: false,
                violation: None,
                schedule: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Parks virtual thread `tid` until the controller grants it one step.
    /// Under abort the thread free-runs (returns immediately) so the run
    /// can drain.
    pub(crate) fn yield_op(&self, tid: usize, kind: OpKind) {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.abort {
            if kind.is_write() {
                st.write_gen += 1;
            }
            return;
        }
        st.phase[tid] = Phase::Ready;
        self.cv.notify_all();
        loop {
            if st.abort {
                st.phase[tid] = Phase::Running;
                break;
            }
            if st.granted == Some(tid) {
                st.granted = None;
                st.phase[tid] = Phase::Running;
                break;
            }
            st = self.cv.wait(st).expect("scheduler lock");
        }
        st.steps += 1;
        if kind.is_write() {
            st.write_gen += 1;
        }
    }

    pub(crate) fn current_write_gen(&self) -> u64 {
        self.state.lock().expect("scheduler lock").write_gen
    }

    /// Deschedules `tid` until some thread performs a write past `gen`.
    ///
    /// `gen` must have been read via [`Self::current_write_gen`] *before*
    /// the failed predicate probe: any write that raced with the probe then
    /// leaves `write_gen > gen` and the call returns immediately, so the
    /// checker itself can never lose a wakeup.
    pub(crate) fn block_until_write_after(&self, tid: usize, gen: u64) {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.abort || st.write_gen > gen {
            return;
        }
        st.phase[tid] = Phase::Blocked { at_gen: gen };
        self.cv.notify_all();
        loop {
            if st.abort {
                st.phase[tid] = Phase::Running;
                return;
            }
            if st.granted == Some(tid) {
                st.granted = None;
                st.phase[tid] = Phase::Running;
                st.steps += 1;
                return;
            }
            st = self.cv.wait(st).expect("scheduler lock");
        }
    }

    /// Marks `tid` finished and wakes the controller.
    pub(crate) fn finish(&self, tid: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        st.phase[tid] = Phase::Finished;
        if st.granted == Some(tid) {
            st.granted = None;
        }
        self.cv.notify_all();
    }

    /// Records a defect (first reporter wins) and aborts the run.
    pub(crate) fn report(&self, defect: Defect) {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.violation.is_none() {
            st.violation = Some(defect);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    pub(crate) fn aborted(&self) -> bool {
        self.state.lock().expect("scheduler lock").abort
    }
}

/// Result of driving one schedule to completion.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The defect, if the schedule provoked one.
    pub violation: Option<Violation>,
    /// The full grant sequence that was executed.
    pub schedule: Vec<usize>,
    /// Total steps executed.
    pub steps: u64,
}

/// Picks the next thread to run at each scheduling decision.
pub trait Strategy {
    /// Chooses among `runnable` (ascending thread ids); `last` is the
    /// previously granted thread. Returns an index into `runnable`.
    fn choose(&mut self, runnable: &[usize], last: Option<usize>) -> usize;
}

/// Drives one schedule: repeatedly waits for quiescence, consults
/// `strategy`, grants a step. Returns once every virtual thread finished.
///
/// The caller must have handed each virtual thread's body to an OS thread
/// that yields through this `shared` (see `explore::Pool`).
pub fn run_schedule(shared: &Shared, strategy: &mut dyn Strategy, step_limit: u64) -> RunResult {
    let mut last: Option<usize> = None;
    let mut st = shared.state.lock().expect("scheduler lock");
    loop {
        // Quiescence: nobody executing, no grant outstanding.
        while st.granted.is_some() || st.phase.contains(&Phase::Running) {
            st = shared.cv.wait(st).expect("scheduler lock");
        }
        if st.abort {
            while !st.phase.iter().all(|p| *p == Phase::Finished) {
                st = shared.cv.wait(st).expect("scheduler lock");
            }
            return take_result(&mut st);
        }
        if st.steps >= step_limit {
            st.violation
                .get_or_insert(Defect::StepLimit { limit: step_limit });
            st.abort = true;
            shared.cv.notify_all();
            continue;
        }
        let runnable: Vec<usize> = st
            .phase
            .iter()
            .enumerate()
            .filter_map(|(tid, p)| match *p {
                Phase::Ready => Some(tid),
                Phase::Blocked { at_gen } if st.write_gen > at_gen => Some(tid),
                _ => None,
            })
            .collect();
        if runnable.is_empty() {
            if st.phase.iter().all(|p| *p == Phase::Finished) {
                return take_result(&mut st);
            }
            let blocked: Vec<usize> = st
                .phase
                .iter()
                .enumerate()
                .filter(|(_, p)| !matches!(p, Phase::Finished))
                .map(|(tid, _)| tid)
                .collect();
            st.violation.get_or_insert(Defect::Deadlock { blocked });
            st.abort = true;
            shared.cv.notify_all();
            continue;
        }
        let idx = strategy.choose(&runnable, last).min(runnable.len() - 1);
        let tid = runnable[idx];
        st.schedule.push(tid);
        st.granted = Some(tid);
        last = Some(tid);
        shared.cv.notify_all();
    }
}

fn take_result(st: &mut State) -> RunResult {
    let schedule = std::mem::take(&mut st.schedule);
    let steps = st.steps;
    let violation = st.violation.take().map(|defect| Violation {
        defect,
        schedule: schedule.clone(),
        steps,
    });
    RunResult {
        violation,
        schedule,
        steps,
    }
}
