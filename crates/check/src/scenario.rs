//! Checkable scenarios: the protocol workloads the explorer drives.
//!
//! Every scenario couples a barrier (instantiated in the [`ShadowSync`]
//! domain) with a **ledger** of real (uninstrumented) atomics that records
//! ground truth about arrivals. The fuzzy-barrier correctness property is
//! checked against the ledger: `wait(token)` returning implies every
//! masked participant's `arrive()` for that episode already executed.
//! Because a thread increments its `begun` counter *immediately before*
//! calling `arrive`, and threads are sequentialized, a completed `arrive`
//! always implies a visible `begun` — the check can never false-positive,
//! and any schedule in which a `wait` returns past a participant that has
//! not even begun is a genuine semantics violation.

use crate::ctx;
use crate::explore::{Job, Scenario, ScheduleRun};
use crate::sched::Defect;
use crate::shadow::{ShadowSync, ShadowU32};
use fuzzy_barrier::sync::{Atomic, SyncOps};
use fuzzy_barrier::{
    AsyncBarrier, BarrierError, CentralBarrier, CountingBarrier, Deadline, DisseminationBarrier,
    GroupRegistry, HierBarrier, JoinTicket, MemberHandle, ProcMask, ReconfigBarrier, SplitBarrier,
    StallPolicy, SubsetBarrier, Tag, TopLevel, TreeBarrier, WaitOutcome,
};
use fuzzy_net::{LoopbackMesh, NetBarrier, NetConfig};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Which backend a protocol scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Sense-reversing centralized counter.
    Central,
    /// Flat epoch-counting barrier.
    Counting,
    /// Dissemination barrier (log₂ n rounds).
    Dissemination,
    /// Combining tree, fan-in 2.
    Tree,
    /// Hierarchical barrier: arrival shards of two members with a
    /// dissemination top level over the shard leaders.
    Hier,
}

impl BackendKind {
    /// All five backends, in canonical order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Central,
        BackendKind::Counting,
        BackendKind::Dissemination,
        BackendKind::Tree,
        BackendKind::Hier,
    ];

    /// CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Central => "central",
            BackendKind::Counting => "counting",
            BackendKind::Dissemination => "dissemination",
            BackendKind::Tree => "tree",
            BackendKind::Hier => "hier",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendKind> {
        Self::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Builds this backend for `n` participants in the shadow domain.
    #[must_use]
    pub fn build_shadow(self, n: usize) -> Arc<dyn SplitBarrier> {
        // The shadow wait_until ignores the stall policy; Spin documents
        // the intent (no real sleeping inside the checker).
        let policy = StallPolicy::Spin;
        match self {
            BackendKind::Central => {
                Arc::new(CentralBarrier::<ShadowSync>::with_policy_in(n, policy))
            }
            BackendKind::Counting => {
                Arc::new(CountingBarrier::<ShadowSync>::with_policy_in(n, policy))
            }
            BackendKind::Dissemination => Arc::new(
                DisseminationBarrier::<ShadowSync>::with_policy_in(n, policy),
            ),
            BackendKind::Tree => Arc::new(TreeBarrier::<ShadowSync>::with_fan_in_in(n, 2, policy)),
            // Shards of two with a dissemination top keep the hierarchy
            // non-trivial (multiple shards, leader rounds) at the small n
            // the explorer can exhaust.
            BackendKind::Hier => Arc::new(HierBarrier::<ShadowSync>::with_shards_in(
                n,
                2,
                TopLevel::Dissemination,
                policy,
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

/// Ground-truth arrival record for one barrier, kept in *real* atomics so
/// ledger updates are not themselves scheduling points.
#[derive(Debug)]
pub struct Ledger {
    /// Global thread ids of the barrier's members, in rank order.
    members: Vec<usize>,
    /// `begun[rank]`: episodes this member has *started arriving* for
    /// (incremented immediately before `arrive`).
    begun: Vec<AtomicU64>,
    /// Episode each member is currently waiting for (valid while
    /// `in_wait`).
    wait_target: Vec<AtomicU64>,
    in_wait: Vec<AtomicBool>,
}

impl Ledger {
    /// Creates a ledger for the given members (global thread ids).
    #[must_use]
    pub fn new(members: Vec<usize>) -> Self {
        let n = members.len();
        Ledger {
            members,
            begun: (0..n).map(|_| AtomicU64::new(0)).collect(),
            wait_target: (0..n).map(|_| AtomicU64::new(0)).collect(),
            in_wait: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Marks `rank` as beginning its next episode. Call immediately before
    /// `arrive`.
    pub fn begin(&self, rank: usize) {
        self.begun[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Marks `rank` as entering `wait` for `episode`.
    pub fn enter_wait(&self, rank: usize, episode: u64) {
        self.wait_target[rank].store(episode, Ordering::Relaxed);
        self.in_wait[rank].store(true, Ordering::Relaxed);
    }

    /// Marks `rank` as returned from `wait`.
    pub fn exit_wait(&self, rank: usize) {
        self.in_wait[rank].store(false, Ordering::Relaxed);
    }

    /// Asserts the fuzzy-barrier property after `rank`'s `wait(episode)`
    /// returned: every member must have begun episode `episode` (begun
    /// count > episode). Reports a [`Defect::FuzzyViolation`] otherwise.
    pub fn check_fuzzy(&self, rank: usize, episode: u64) {
        let missing: Vec<usize> = (0..self.members.len())
            .filter(|&j| self.begun[j].load(Ordering::Relaxed) < episode + 1)
            .map(|j| self.members[j])
            .collect();
        if !missing.is_empty() {
            ctx::report(Defect::FuzzyViolation {
                thread: self.members[rank],
                episode,
                missing,
            });
        }
    }

    /// True if global thread `tid` is stuck waiting on this barrier even
    /// though every member already began the awaited episode — i.e. the
    /// release signal was produced and lost.
    fn stuck_despite_full_arrival(&self, tid: usize) -> bool {
        let Some(rank) = self.members.iter().position(|&m| m == tid) else {
            return false;
        };
        if !self.in_wait[rank].load(Ordering::Relaxed) {
            return false;
        }
        let target = self.wait_target[rank].load(Ordering::Relaxed);
        (0..self.members.len()).all(|j| self.begun[j].load(Ordering::Relaxed) > target)
    }
}

/// Upgrades a [`Defect::Deadlock`] to [`Defect::LostWakeup`] when every
/// stuck thread sits in some ledger's wait with its episode fully arrived.
/// Other defects pass through unchanged.
#[must_use]
pub fn classify(ledgers: &[Arc<Ledger>], defect: Option<Defect>) -> Option<Defect> {
    match defect {
        Some(Defect::Deadlock { blocked }) => {
            let all_lost = !blocked.is_empty()
                && blocked
                    .iter()
                    .all(|&t| ledgers.iter().any(|l| l.stuck_despite_full_arrival(t)));
            Some(if all_lost {
                Defect::LostWakeup { blocked }
            } else {
                Defect::Deadlock { blocked }
            })
        }
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Protocol scenario
// ---------------------------------------------------------------------------

/// The core scenario: `n` participants drive `episodes` episodes of the
/// split-phase protocol on a fresh barrier per schedule, with the fuzzy
/// property checked after every `wait`.
///
/// `factory` builds the barrier; use [`protocol`] for the stock backends
/// and pass a mutant factory from tests.
pub fn protocol_with(
    name: impl Into<String>,
    n: usize,
    episodes: u64,
    mut factory: impl FnMut() -> Arc<dyn SplitBarrier> + 'static,
) -> Scenario {
    Scenario {
        name: name.into(),
        threads: n,
        build: Box::new(move || {
            let barrier = factory();
            assert_eq!(barrier.participants(), n, "factory/participant mismatch");
            let ledger = Arc::new(Ledger::new((0..n).collect()));
            let bodies: Vec<Job> = (0..n)
                .map(|id| {
                    let barrier = Arc::clone(&barrier);
                    let ledger = Arc::clone(&ledger);
                    Box::new(move || {
                        protocol_body(&*barrier, &ledger, id, episodes);
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&ledger)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// [`protocol_with`] over a stock backend.
#[must_use]
pub fn protocol(backend: BackendKind, n: usize, episodes: u64) -> Scenario {
    protocol_with(
        format!("protocol/{}/n{n}/e{episodes}", backend.name()),
        n,
        episodes,
        move || backend.build_shadow(n),
    )
}

fn protocol_body(barrier: &dyn SplitBarrier, ledger: &Ledger, id: usize, episodes: u64) {
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        ledger.begin(id);
        let token = barrier.arrive(id);
        ledger.enter_wait(id, e);
        let outcome = barrier.wait(token);
        // On abort the drain protocol fakes wait's return; leave the
        // ledger's `in_wait` intact so `classify` sees the stuck state.
        if ctx::aborted() {
            return;
        }
        ledger.exit_wait(id);
        if outcome.episode != e {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!("expected episode {e}, wait returned {}", outcome.episode),
            });
            return;
        }
        ledger.check_fuzzy(id, e);
        if ctx::aborted() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Net-round scenario (distributed NetBarrier over an in-process mesh)
// ---------------------------------------------------------------------------

/// Distributed episode scenario: each virtual thread is one endpoint of a
/// loopback mesh, driving its own [`fuzzy_net::NetBarrier`] (instantiated
/// in the shadow domain) through `episodes` dissemination episodes as the
/// endpoint's sole local participant. Loopback delivery is synchronous, so
/// every frame lands inside some thread's atomic step and the explorer
/// interleaves the endpoints' sends, receives, and releases like any other
/// shared-memory schedule. The ledger checks the fuzzy property *across
/// the mesh*: an endpoint's `wait` may not return before every endpoint's
/// `arrive` for that episode.
///
/// `factory` builds the per-endpoint barriers, in rank order; use
/// [`net_round`] for the real transport+barrier stack and pass a wrapping
/// factory from tests (see `MutantNetSkipRound`).
pub fn net_round_with(
    name: impl Into<String>,
    nodes: usize,
    episodes: u64,
    mut factory: impl FnMut() -> Vec<Arc<dyn SplitBarrier>> + 'static,
) -> Scenario {
    Scenario {
        name: name.into(),
        threads: nodes,
        build: Box::new(move || {
            let barriers = factory();
            assert_eq!(barriers.len(), nodes, "factory/endpoint mismatch");
            let ledger = Arc::new(Ledger::new((0..nodes).collect()));
            let bodies: Vec<Job> = barriers
                .into_iter()
                .enumerate()
                .map(|(rank, barrier)| {
                    let ledger = Arc::clone(&ledger);
                    Box::new(move || {
                        net_round_body(&*barrier, &ledger, rank, episodes);
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&ledger)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// [`net_round_with`] over the real loopback transport and `NetBarrier`.
///
/// The recovery machinery (round timeouts, nacks, peer-death declarations)
/// is wall-clock-driven and stays off under the checker: the shadow
/// domain's waits ignore time budgets, `round_timeout` is `None`, and a
/// genuinely lost release surfaces as a deadlock/lost-wakeup defect rather
/// than a masking retransmission.
#[must_use]
pub fn net_round(nodes: usize, episodes: u64) -> Scenario {
    net_round_with(
        format!("net/loopback/n{nodes}/e{episodes}"),
        nodes,
        episodes,
        move || {
            let mesh = LoopbackMesh::new(nodes);
            mesh.endpoints()
                .into_iter()
                .map(|t| {
                    NetBarrier::<ShadowSync>::start_in(
                        Arc::new(t),
                        NetConfig::new()
                            .policy(StallPolicy::Spin)
                            .round_timeout(None),
                    ) as Arc<dyn SplitBarrier>
                })
                .collect()
        },
    )
}

fn net_round_body(barrier: &dyn SplitBarrier, ledger: &Ledger, rank: usize, episodes: u64) {
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        ledger.begin(rank);
        let token = barrier.arrive(0);
        ledger.enter_wait(rank, e);
        // Block at scenario level on `is_complete` rather than inside
        // `wait`: NetBarrier's wait loop re-checks its own predicate
        // around the shadow wait, so the drain protocol's faked wakeups
        // would never unwind it after an abort. `is_complete` also pumps
        // `drive()`, so probing here makes the same protocol progress a
        // real waiter would.
        ShadowSync::wait_until(StallPolicy::Spin, || barrier.is_complete(&token));
        if ctx::aborted() {
            return;
        }
        let outcome = barrier.wait(token);
        ledger.exit_wait(rank);
        if outcome.episode != e {
            ctx::report(Defect::ProtocolError {
                thread: rank,
                message: format!("expected episode {e}, wait returned {}", outcome.episode),
            });
            return;
        }
        ledger.check_fuzzy(rank, e);
        if ctx::aborted() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Subset scenario (masks + tags)
// ---------------------------------------------------------------------------

type Subset = SubsetBarrier<CentralBarrier<ShadowSync>>;

fn subset(tag: u16, mask: &[usize]) -> Arc<Subset> {
    let tag = Tag::new(tag).expect("non-zero tag");
    let mask: ProcMask = mask.iter().copied().collect();
    Arc::new(SubsetBarrier::with_policy_in(tag, mask, StallPolicy::Spin).expect("non-empty mask"))
}

fn report_err(id: usize, what: &str, err: &BarrierError) {
    ctx::report(Defect::ProtocolError {
        thread: id,
        message: format!("{what}: unexpected error {err:?}"),
    });
}

/// Masked/tagged synchronization over every non-empty subset of two
/// participants — each thread synchronizes alone on a private singleton
/// barrier and with its peer on a shared one, presenting tags explicitly.
/// A deliberate wrong-tag arrival checks that the tag-match logic rejects
/// cross-barrier synchronization (the paper's Fig. 6 bug).
#[must_use]
pub fn subset_pair(episodes: u64) -> Scenario {
    Scenario {
        name: format!("subset/pair/e{episodes}"),
        threads: 2,
        build: Box::new(move || {
            let shared = subset(3, &[0, 1]);
            let privates = [subset(1, &[0]), subset(2, &[1])];
            let ledger = Arc::new(Ledger::new(vec![0, 1]));
            let bodies: Vec<Job> = (0..2)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    let private = Arc::clone(&privates[id]);
                    let ledger = Arc::clone(&ledger);
                    Box::new(move || {
                        subset_pair_body(&shared, &private, &ledger, id, episodes);
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&ledger)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

fn subset_pair_body(shared: &Subset, private: &Subset, ledger: &Ledger, id: usize, episodes: u64) {
    let my_tag = private.tag();
    let shared_tag = shared.tag();
    // Presenting the private tag at the shared barrier must be rejected —
    // tags are what keep Fig. 6's P3-at-B1 from synchronizing with
    // P1-at-B2. The error path touches no shadow state, so this probe is
    // deterministic and free.
    match shared.arrive(id, my_tag) {
        Err(BarrierError::TagMismatch { .. }) => {}
        Ok(_) => {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: "wrong tag accepted by shared barrier".into(),
            });
            return;
        }
        Err(err) => {
            report_err(id, "wrong-tag probe", &err);
            return;
        }
    }
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        // Solo synchronization on the private singleton barrier.
        match private.point(id, my_tag) {
            Ok(outcome) if outcome.episode == e => {}
            Ok(outcome) => {
                ctx::report(Defect::ProtocolError {
                    thread: id,
                    message: format!(
                        "private barrier: expected episode {e}, got {}",
                        outcome.episode
                    ),
                });
                return;
            }
            Err(err) => {
                report_err(id, "private point", &err);
                return;
            }
        }
        if ctx::aborted() {
            return;
        }
        // Shared fuzzy synchronization.
        ledger.begin(id);
        let token = match shared.arrive(id, shared_tag) {
            Ok(t) => t,
            Err(err) => {
                report_err(id, "shared arrive", &err);
                return;
            }
        };
        ledger.enter_wait(id, e);
        let outcome = shared.wait(token);
        if ctx::aborted() {
            return;
        }
        ledger.exit_wait(id);
        if outcome.episode != e {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!(
                    "shared barrier: expected episode {e}, got {}",
                    outcome.episode
                ),
            });
            return;
        }
        ledger.check_fuzzy(id, e);
        if ctx::aborted() {
            return;
        }
    }
}

/// Fig. 6 stream-merge topology: three threads, two *overlapping* masked
/// barriers — A over {0,1}, B over {1,2} — with the middle thread a member
/// of both. The middle thread arrives at both barriers before waiting on
/// either, so its barrier regions overlap and no cross-barrier circular
/// wait is possible; the fuzzy property is asserted per barrier over its
/// own mask.
#[must_use]
pub fn subset_overlap(episodes: u64) -> Scenario {
    Scenario {
        name: format!("subset/overlap/e{episodes}"),
        threads: 3,
        build: Box::new(move || {
            let a = subset(1, &[0, 1]);
            let b = subset(2, &[1, 2]);
            let ledger_a = Arc::new(Ledger::new(vec![0, 1]));
            let ledger_b = Arc::new(Ledger::new(vec![1, 2]));
            let mut bodies: Vec<Job> = Vec::new();
            {
                let a = Arc::clone(&a);
                let ledger_a = Arc::clone(&ledger_a);
                bodies.push(Box::new(move || {
                    edge_body(&a, &ledger_a, 0, 0, episodes);
                }));
            }
            {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                let ledger_a = Arc::clone(&ledger_a);
                let ledger_b = Arc::clone(&ledger_b);
                bodies.push(Box::new(move || {
                    middle_body(&a, &b, &ledger_a, &ledger_b, episodes);
                }));
            }
            {
                let b = Arc::clone(&b);
                let ledger_b = Arc::clone(&ledger_b);
                bodies.push(Box::new(move || {
                    edge_body(&b, &ledger_b, 2, 1, episodes);
                }));
            }
            let ledgers = vec![Arc::clone(&ledger_a), Arc::clone(&ledger_b)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// Body for a thread that belongs to exactly one masked barrier.
fn edge_body(barrier: &Subset, ledger: &Ledger, id: usize, rank: usize, episodes: u64) {
    let tag = barrier.tag();
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        ledger.begin(rank);
        let token = match barrier.arrive(id, tag) {
            Ok(t) => t,
            Err(err) => {
                report_err(id, "arrive", &err);
                return;
            }
        };
        ledger.enter_wait(rank, e);
        let outcome = barrier.wait(token);
        if ctx::aborted() {
            return;
        }
        ledger.exit_wait(rank);
        if outcome.episode != e {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!("expected episode {e}, got {}", outcome.episode),
            });
            return;
        }
        ledger.check_fuzzy(rank, e);
        if ctx::aborted() {
            return;
        }
    }
}

/// Body for the thread in both barriers: arrive at both, then wait both.
fn middle_body(a: &Subset, b: &Subset, ledger_a: &Ledger, ledger_b: &Ledger, episodes: u64) {
    let id = 1usize;
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        ledger_a.begin(1);
        let token_a = match a.arrive(id, a.tag()) {
            Ok(t) => t,
            Err(err) => {
                report_err(id, "arrive A", &err);
                return;
            }
        };
        ledger_b.begin(0);
        let token_b = match b.arrive(id, b.tag()) {
            Ok(t) => t,
            Err(err) => {
                report_err(id, "arrive B", &err);
                return;
            }
        };
        ledger_b.enter_wait(0, e);
        let outcome_b = b.wait(token_b);
        if ctx::aborted() {
            return;
        }
        ledger_b.exit_wait(0);
        ledger_a.enter_wait(1, e);
        let outcome_a = a.wait(token_a);
        if ctx::aborted() {
            return;
        }
        ledger_a.exit_wait(1);
        if outcome_a.episode != e || outcome_b.episode != e {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!(
                    "expected episode {e}, got A={} B={}",
                    outcome_a.episode, outcome_b.episode
                ),
            });
            return;
        }
        ledger_b.check_fuzzy(0, e);
        ledger_a.check_fuzzy(1, e);
        if ctx::aborted() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Registry scenario (dynamic streams, N−1 bound, tag reuse)
// ---------------------------------------------------------------------------

/// Two streams against a [`GroupRegistry`] sized for four streams
/// (capacity 3 = N−1): a shared barrier lives for the whole run while each
/// thread repeatedly allocates, synchronizes on, and releases a private
/// singleton barrier under an explicitly reused tag. The N−1 bound
/// (`live_barriers() <= capacity()`) is asserted at every step of every
/// schedule, and after clean runs the `finish` hook fills the registry to
/// capacity and demands `RegistryFull`.
///
/// Registry calls go through a plain mutex (no shadow atomics), so they
/// execute atomically within a thread's scheduling slice — which is why
/// the scenario is written coordination-free: no thread ever retries an
/// allocation in a loop, because a retry could never be woken by a shadow
/// write.
#[must_use]
pub fn registry(episodes: u64) -> Scenario {
    Scenario {
        name: format!("registry/e{episodes}"),
        threads: 2,
        build: Box::new(move || {
            let reg = Arc::new(GroupRegistry::<ShadowSync>::with_policy_in(
                4,
                StallPolicy::Spin,
            ));
            let shared_tag = Tag::new(7).expect("non-zero");
            let shared = reg
                .allocate_tagged(shared_tag, [0, 1].into_iter().collect())
                .expect("fresh registry has room");
            let ledger = Arc::new(Ledger::new(vec![0, 1]));
            let bodies: Vec<Job> = (0..2)
                .map(|id| {
                    let reg = Arc::clone(&reg);
                    let shared = Arc::clone(&shared);
                    let ledger = Arc::clone(&ledger);
                    Box::new(move || {
                        registry_body(&reg, &shared, &ledger, id, episodes);
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&ledger)];
            let reg = Arc::clone(&reg);
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| {
                    let defect = classify(&ledgers, defect);
                    if defect.is_some() {
                        return defect;
                    }
                    registry_capacity_check(&reg)
                }),
            }
        }),
    }
}

fn registry_body(
    reg: &GroupRegistry<ShadowSync>,
    shared: &Subset,
    ledger: &Ledger,
    id: usize,
    episodes: u64,
) {
    let private_tag = Tag::new(10 + id as u16).expect("non-zero");
    let shared_tag = shared.tag();
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        // Allocate a private singleton barrier under an explicitly reused
        // tag. Capacity is 3 (shared + one private per thread), so this
        // must succeed in every interleaving.
        let private = match reg.allocate_tagged(private_tag, ProcMask::single(id)) {
            Ok(b) => b,
            Err(err) => {
                report_err(id, "allocate private", &err);
                return;
            }
        };
        if reg.live_barriers() > reg.capacity() {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!(
                    "N-1 bound violated: {} live barriers > capacity {}",
                    reg.live_barriers(),
                    reg.capacity()
                ),
            });
            return;
        }
        // Solo sync on the private barrier (never blocks: one member).
        // The barrier is freshly allocated each episode, so it always
        // completes *its* episode 0.
        match private.point(id, private_tag) {
            Ok(outcome) if outcome.episode == 0 => {}
            Ok(outcome) => {
                ctx::report(Defect::ProtocolError {
                    thread: id,
                    message: format!(
                        "fresh private barrier completed episode {}",
                        outcome.episode
                    ),
                });
                return;
            }
            Err(err) => {
                report_err(id, "private point", &err);
                return;
            }
        }
        if ctx::aborted() {
            return;
        }
        // Fuzzy sync with the peer stream on the long-lived shared barrier.
        ledger.begin(id);
        let token = match shared.arrive(id, shared_tag) {
            Ok(t) => t,
            Err(err) => {
                report_err(id, "shared arrive", &err);
                return;
            }
        };
        ledger.enter_wait(id, e);
        let outcome = shared.wait(token);
        if ctx::aborted() {
            return;
        }
        ledger.exit_wait(id);
        if outcome.episode != e {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!("shared episode {e} != {}", outcome.episode),
            });
            return;
        }
        ledger.check_fuzzy(id, e);
        if ctx::aborted() {
            return;
        }
        // Release the slot; next episode re-allocates the same tag.
        if let Err(err) = reg.release(private_tag) {
            report_err(id, "release private", &err);
            return;
        }
    }
}

/// Post-run invariant: the registry must refuse the N-th barrier. Runs on
/// the controller after a clean schedule (all privates released; only the
/// shared barrier lives).
fn registry_capacity_check(reg: &GroupRegistry<ShadowSync>) -> Option<Defect> {
    // Hold every allocated handle: a dropped handle is an orphan the
    // registry may sweep to make room, which would defeat the fill.
    let mut allocated = Vec::new();
    let verdict = loop {
        if allocated.len() > reg.capacity() {
            break Some(Defect::ProtocolError {
                thread: 0,
                message: "registry never reported RegistryFull".into(),
            });
        }
        match reg.allocate(ProcMask::single(0)) {
            Ok(entry) => allocated.push(entry),
            Err(BarrierError::RegistryFull { capacity }) => {
                break (reg.live_barriers() != capacity).then(|| Defect::ProtocolError {
                    thread: 0,
                    message: format!(
                        "RegistryFull at {} live barriers, capacity {capacity}",
                        reg.live_barriers()
                    ),
                });
            }
            Err(err) => {
                break Some(Defect::ProtocolError {
                    thread: 0,
                    message: format!("capacity fill: unexpected error {err:?}"),
                })
            }
        }
    };
    for (tag, _handle) in allocated {
        let _ = reg.release(tag);
    }
    verdict
}

// ---------------------------------------------------------------------------
// Fault scenarios (poisoning and eviction)
// ---------------------------------------------------------------------------

/// Poisoning scenario: participant `n − 1` arrives for episode 0 and then
/// [`SplitBarrier::abort`]s (its arrival stands, the barrier is poisoned);
/// the survivors drive unbounded [`SplitBarrier::wait_deadline`] calls.
///
/// What must hold in **every** interleaving:
///
/// * episode 0 either completes (`Ok`, fuzzy property checked against the
///   full ledger — completion wins over poison) or reports
///   [`BarrierError::Poisoned`];
/// * episode 1 can never complete (the aborter never re-arrives), so each
///   survivor's wait must end in `Poisoned` — a backend that forgets to
///   poison deadlocks here, which is exactly how the checker catches
///   [`crate::mutants::MutantNoPoison`];
/// * no wait returns [`BarrierError::Timeout`] (no deadline was armed).
pub fn poison_with(
    name: impl Into<String>,
    n: usize,
    mut factory: impl FnMut() -> Arc<dyn SplitBarrier> + 'static,
) -> Scenario {
    assert!(n >= 2, "the poison scenario needs a survivor");
    Scenario {
        name: name.into(),
        threads: n,
        build: Box::new(move || {
            let barrier = factory();
            assert_eq!(barrier.participants(), n, "factory/participant mismatch");
            let ledger = Arc::new(Ledger::new((0..n).collect()));
            let bodies: Vec<Job> = (0..n)
                .map(|id| {
                    let barrier = Arc::clone(&barrier);
                    let ledger = Arc::clone(&ledger);
                    Box::new(move || {
                        if id == n - 1 {
                            aborter_body(&*barrier, &ledger, id);
                        } else {
                            poison_survivor_body(&*barrier, &ledger, id);
                        }
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&ledger)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// [`poison_with`] over a stock backend.
#[must_use]
pub fn poison(backend: BackendKind, n: usize) -> Scenario {
    poison_with(format!("poison/{}/n{n}", backend.name()), n, move || {
        backend.build_shadow(n)
    })
}

fn aborter_body(barrier: &dyn SplitBarrier, ledger: &Ledger, id: usize) {
    ledger.begin(id);
    let token = barrier.arrive(id);
    if ctx::aborted() {
        return;
    }
    // Panic path: the arrival stands, the token is consumed, peers are
    // released with `Poisoned` instead of hanging on the next episode.
    barrier.abort(token);
}

fn poison_survivor_body(barrier: &dyn SplitBarrier, ledger: &Ledger, id: usize) {
    // Episode 0: everyone (including the aborter) arrives, so either
    // completion or poisoning can win the race.
    ledger.begin(id);
    let token = barrier.arrive(id);
    ledger.enter_wait(id, 0);
    let result = barrier.wait_deadline(token, Deadline::never());
    if ctx::aborted() {
        return;
    }
    match result {
        Ok(outcome) => {
            ledger.exit_wait(id);
            if outcome.episode != 0 {
                ctx::report(Defect::ProtocolError {
                    thread: id,
                    message: format!("expected episode 0, wait returned {}", outcome.episode),
                });
                return;
            }
            ledger.check_fuzzy(id, 0);
        }
        Err(BarrierError::Poisoned { .. }) => {
            ledger.exit_wait(id);
            // Poison won before episode 0 completed; nothing further to
            // assert — the wait did not hang and did not return Ok early.
            return;
        }
        Err(err) => {
            report_err(id, "episode-0 wait", &err);
            return;
        }
    }
    if ctx::aborted() {
        return;
    }
    // Episode 1: the aborter never re-arrives, so completion is
    // impossible; the only legal exit from an unbounded wait is Poisoned.
    ledger.begin(id);
    let token = barrier.arrive(id);
    ledger.enter_wait(id, 1);
    let result = barrier.wait_deadline(token, Deadline::never());
    if ctx::aborted() {
        return;
    }
    match result {
        Err(BarrierError::Poisoned { .. }) => {
            ledger.exit_wait(id);
        }
        Ok(outcome) => {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!(
                    "episode 1 completed (episode {}) without the aborter",
                    outcome.episode
                ),
            });
        }
        Err(err) => report_err(id, "episode-1 wait", &err),
    }
}

/// Eviction scenario: all `n` participants complete episode 0 at full
/// strength; participant `n − 1` then evicts itself (a stand-in for a
/// supervisor evicting a stuck-before-arrival straggler) and the survivors
/// drive `episodes` more episodes without it.
///
/// What must hold in **every** interleaving:
///
/// * episode 0 completes with the fuzzy property over the full ledger;
/// * every survivor episode completes with the fuzzy property over the
///   *survivor* ledger — the eviction can neither lose the survivors'
///   wakeups (deadlock) nor let their waits return before every survivor
///   arrived;
/// * an eviction that forgets to shrink the mask
///   ([`crate::mutants::MutantEvictNoMask`]) strands the second
///   post-eviction episode: the survivor ledger shows everyone arrived,
///   so the checker classifies it as a lost wakeup.
pub fn evict_with(
    name: impl Into<String>,
    n: usize,
    episodes: u64,
    mut factory: impl FnMut() -> Arc<dyn SplitBarrier> + 'static,
) -> Scenario {
    assert!(n >= 2, "the evict scenario needs a survivor");
    Scenario {
        name: name.into(),
        threads: n,
        build: Box::new(move || {
            let barrier = factory();
            assert_eq!(barrier.participants(), n, "factory/participant mismatch");
            let full = Arc::new(Ledger::new((0..n).collect()));
            // Post-eviction episodes are tracked against the survivors
            // only, re-numbered from zero (ledger episode = barrier
            // episode − 1).
            let survivors = Arc::new(Ledger::new((0..n - 1).collect()));
            let bodies: Vec<Job> = (0..n)
                .map(|id| {
                    let barrier = Arc::clone(&barrier);
                    let full = Arc::clone(&full);
                    let survivors = Arc::clone(&survivors);
                    Box::new(move || {
                        if id == n - 1 {
                            evictee_body(&*barrier, &full, id);
                        } else {
                            evict_survivor_body(&*barrier, &full, &survivors, id, episodes);
                        }
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&full), Arc::clone(&survivors)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// [`evict_with`] over a stock backend.
#[must_use]
pub fn evict(backend: BackendKind, n: usize, episodes: u64) -> Scenario {
    evict_with(
        format!("evict/{}/n{n}/e{episodes}", backend.name()),
        n,
        episodes,
        move || backend.build_shadow(n),
    )
}

fn evictee_body(barrier: &dyn SplitBarrier, full: &Ledger, id: usize) {
    full.begin(id);
    let token = barrier.arrive(id);
    full.enter_wait(id, 0);
    let result = barrier.wait_deadline(token, Deadline::never());
    if ctx::aborted() {
        return;
    }
    match result {
        Ok(outcome) if outcome.episode == 0 => {
            full.exit_wait(id);
            full.check_fuzzy(id, 0);
        }
        Ok(outcome) => {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!("expected episode 0, wait returned {}", outcome.episode),
            });
            return;
        }
        Err(err) => {
            report_err(id, "evictee episode-0 wait", &err);
            return;
        }
    }
    if ctx::aborted() {
        return;
    }
    // Contract honored: the evictee has not arrived for the in-flight
    // episode (it only ever arrived for the completed episode 0).
    if let Err(err) = barrier.evict(id) {
        report_err(id, "self-evict", &err);
    }
}

fn evict_survivor_body(
    barrier: &dyn SplitBarrier,
    full: &Ledger,
    survivors: &Ledger,
    id: usize,
    episodes: u64,
) {
    // Episode 0 at full strength.
    full.begin(id);
    let token = barrier.arrive(id);
    full.enter_wait(id, 0);
    let result = barrier.wait_deadline(token, Deadline::never());
    if ctx::aborted() {
        return;
    }
    match result {
        Ok(outcome) if outcome.episode == 0 => {
            full.exit_wait(id);
            full.check_fuzzy(id, 0);
        }
        Ok(outcome) => {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!("expected episode 0, wait returned {}", outcome.episode),
            });
            return;
        }
        Err(err) => {
            report_err(id, "episode-0 wait", &err);
            return;
        }
    }
    // Post-eviction episodes: the evictee's ghost must keep the barrier
    // completing for the survivors alone.
    for e in 1..=episodes {
        if ctx::aborted() {
            return;
        }
        survivors.begin(id);
        let token = barrier.arrive(id);
        survivors.enter_wait(id, e - 1);
        let result = barrier.wait_deadline(token, Deadline::never());
        if ctx::aborted() {
            return;
        }
        match result {
            Ok(outcome) if outcome.episode == e => {
                survivors.exit_wait(id);
                survivors.check_fuzzy(id, e - 1);
            }
            Ok(outcome) => {
                ctx::report(Defect::ProtocolError {
                    thread: id,
                    message: format!("expected episode {e}, wait returned {}", outcome.episode),
                });
                return;
            }
            Err(err) => {
                report_err(id, "survivor wait", &err);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Async waker-handoff scenario
// ---------------------------------------------------------------------------

/// Boxed split-phase arrival future, the unit the async scenario polls.
pub type AsyncArrival = Pin<Box<dyn Future<Output = Result<WaitOutcome, BarrierError>> + Send>>;

/// Abstraction over an async barrier frontend, so the waker-handoff
/// scenario can drive both the real [`fuzzy_barrier::AsyncBarrier`] and
/// seeded-bug replicas like [`crate::mutants::MutantNoDrain`].
pub trait AsyncFrontend: Send + Sync {
    /// Number of participants.
    fn participants(&self) -> usize;

    /// Eagerly arrives `id` (the split-phase arrival half) and returns the
    /// future whose completion is the release half.
    fn arrive_future(self: Arc<Self>, id: usize) -> AsyncArrival;
}

impl AsyncFrontend for AsyncBarrier<Arc<dyn SplitBarrier>, ShadowSync> {
    fn participants(&self) -> usize {
        SplitBarrier::participants(self)
    }

    fn arrive_future(self: Arc<Self>, id: usize) -> AsyncArrival {
        Box::pin(self.arrive_async(id))
    }
}

/// A checker-visible parking flag: `wake` performs a *shadow* store, so a
/// task blocked in [`ShadowSync::wait_until`] on the flag is a genuine
/// blocked thread to the deadlock detector, and a wake is a genuine
/// scheduling event. A frontend that forgets to invoke the waker leaves
/// the flag at zero forever — exactly a lost wakeup.
struct WakeFlag(ShadowU32);

impl WakeFlag {
    fn new() -> Self {
        WakeFlag(ShadowU32::new(0))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Release);
    }

    fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire) != 0
    }
}

impl Wake for WakeFlag {
    fn wake(self: Arc<Self>) {
        self.0.store(1, Ordering::Release);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.store(1, Ordering::Release);
    }
}

/// The async waker-handoff scenario: `n` logical participants drive
/// `episodes` split-phase episodes through an [`AsyncFrontend`], each
/// parking on a checker-visible wake flag (a shadow word, so a parked
/// task is a genuinely blocked thread to the detector) whenever its future
/// returns `Pending`.
///
/// This model-checks the handoff the executor relies on: a `Pending` poll
/// registers the task's waker against the episode word; whoever completes
/// the episode must drain the registry and invoke those wakers. In
/// **every** interleaving each episode must complete with the fuzzy
/// property intact. A frontend that completes an episode without draining
/// — [`crate::mutants::MutantNoDrain`] — strands an earlier-parked peer
/// whose episode has fully arrived, which the checker classifies as a
/// lost wakeup.
pub fn async_handoff_with(
    name: impl Into<String>,
    n: usize,
    episodes: u64,
    mut factory: impl FnMut() -> Arc<dyn AsyncFrontend> + 'static,
) -> Scenario {
    Scenario {
        name: name.into(),
        threads: n,
        build: Box::new(move || {
            let frontend = factory();
            assert_eq!(frontend.participants(), n, "factory/participant mismatch");
            let ledger = Arc::new(Ledger::new((0..n).collect()));
            let bodies: Vec<Job> = (0..n)
                .map(|id| {
                    let frontend = Arc::clone(&frontend);
                    let ledger = Arc::clone(&ledger);
                    Box::new(move || {
                        async_body(&frontend, &ledger, id, episodes);
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&ledger)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// [`async_handoff_with`] over the real [`AsyncBarrier`] frontend on a
/// stock backend.
#[must_use]
pub fn async_handoff(backend: BackendKind, n: usize, episodes: u64) -> Scenario {
    async_handoff_with(
        format!("async/{}/n{n}/e{episodes}", backend.name()),
        n,
        episodes,
        move || {
            Arc::new(AsyncBarrier::<_, ShadowSync>::new_in(
                backend.build_shadow(n),
            ))
        },
    )
}

fn async_body(frontend: &Arc<dyn AsyncFrontend>, ledger: &Ledger, id: usize, episodes: u64) {
    // One flag per participant, reset before every poll. The waker handed
    // to the frontend is stable across polls of one future, matching how
    // an executor reuses a task's waker.
    let flag = Arc::new(WakeFlag::new());
    let waker = Waker::from(Arc::clone(&flag));
    for e in 0..episodes {
        if ctx::aborted() {
            return;
        }
        ledger.begin(id);
        let mut future = Arc::clone(frontend).arrive_future(id);
        ledger.enter_wait(id, e);
        let result = loop {
            // Reset *before* polling so a wake delivered during the poll
            // itself is observed by the park below rather than lost.
            flag.reset();
            let mut cx = Context::from_waker(&waker);
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(result) => break result,
                Poll::Pending => {
                    // Park until woken: a blocked shadow wait, visible to
                    // the deadlock detector.
                    ShadowSync::wait_until(StallPolicy::Spin, || flag.is_set());
                    if ctx::aborted() {
                        return;
                    }
                }
            }
        };
        if ctx::aborted() {
            return;
        }
        ledger.exit_wait(id);
        match result {
            Ok(outcome) if outcome.episode == e => {}
            Ok(outcome) => {
                ctx::report(Defect::ProtocolError {
                    thread: id,
                    message: format!("expected episode {e}, future resolved {}", outcome.episode),
                });
                return;
            }
            Err(err) => {
                report_err(id, "async arrival", &err);
                return;
            }
        }
        ledger.check_fuzzy(id, e);
        if ctx::aborted() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Dynamic-membership (reconfig) scenarios
// ---------------------------------------------------------------------------

/// Object-safe view of a dynamic-membership barrier, so the reconfig
/// scenarios can drive the real [`ReconfigBarrier`] and seeded mutants
/// like [`crate::mutants::MutantJoinMidEpoch`] through one interface.
///
/// Credentials travel as plain `(slot, generation)` pairs, and `sync`
/// performs one whole episode (arrive, then wait for release). The
/// checker interleaves at shadow-atomic granularity, so a combined call
/// explores exactly the same membership races as split arrive/wait.
pub trait ReconfigOps: Send + Sync {
    /// Stages a join; returns the claimed `(slot, generation)`.
    fn join(&self) -> Result<(usize, u64), BarrierError>;

    /// Blocks until the staged join activates at an episode boundary.
    fn wait_active(&self, slot: usize, generation: u64);

    /// One full episode under the credential: arrive, then wait. Returns
    /// the wrapper epoch the release happened for.
    fn sync(&self, slot: usize, generation: u64) -> Result<u64, BarrierError>;

    /// Voluntary departure.
    fn leave(&self, slot: usize, generation: u64) -> Result<(), BarrierError>;

    /// Supervisor-driven eviction of a member that will never arrive.
    fn evict(&self, slot: usize, generation: u64) -> Result<(), BarrierError>;

    /// Live member count.
    fn members(&self) -> usize;

    /// Completed wrapper epochs.
    fn epoch(&self) -> u64;
}

impl ReconfigOps for ReconfigBarrier<ShadowSync> {
    fn join(&self) -> Result<(usize, u64), BarrierError> {
        let ticket = ReconfigBarrier::join(self)?;
        Ok((ticket.slot(), ticket.generation()))
    }

    fn wait_active(&self, slot: usize, generation: u64) {
        let handle = ReconfigBarrier::wait_active(self, &JoinTicket::from_parts(slot, generation));
        debug_assert_eq!(handle.slot(), slot);
    }

    fn sync(&self, slot: usize, generation: u64) -> Result<u64, BarrierError> {
        let handle = MemberHandle::from_parts(slot, generation);
        let token = self.arrive(&handle)?;
        self.wait(&token).map(|outcome| outcome.episode)
    }

    fn leave(&self, slot: usize, generation: u64) -> Result<(), BarrierError> {
        ReconfigBarrier::leave(self, MemberHandle::from_parts(slot, generation))
    }

    fn evict(&self, slot: usize, generation: u64) -> Result<(), BarrierError> {
        ReconfigBarrier::evict(self, slot, generation)
    }

    fn members(&self) -> usize {
        ReconfigBarrier::members(self)
    }

    fn epoch(&self) -> u64 {
        ReconfigBarrier::epoch(self)
    }
}

/// The default shadow-domain group: a [`ReconfigBarrier`] whose factory
/// rebuilds a shadow central backend at every growth boundary. The
/// membership protocol under test is the wrapper's own; the inner
/// backend just needs to be a correct barrier.
fn shadow_group(capacity: usize, initial: usize) -> Arc<dyn ReconfigOps> {
    let (group, _founders) =
        ReconfigBarrier::<ShadowSync>::with_policy_in(capacity, initial, StallPolicy::Spin, |n| {
            Arc::new(CentralBarrier::<ShadowSync>::with_policy_in(
                n,
                StallPolicy::Spin,
            )) as Arc<dyn SplitBarrier>
        });
    Arc::new(group)
}

/// One checked episode through a [`ReconfigOps`] group: ledger `begin`
/// before the arrival, fuzzy check after the release, release epoch
/// asserted against `epoch`. Returns `false` once the body should stop
/// (abort or reported defect). `id` is both the global thread id and the
/// member's rank in `ledger`; `ledger_episode` is the episode number in
/// the ledger's own (possibly re-based) numbering.
///
/// `enter_wait` brackets the whole combined call — the arrival half is
/// gate-bounded and never blocks on peers, so treating the span as "in
/// wait" keeps the lost-wakeup classification sound.
fn reconfig_sync_checked(
    group: &dyn ReconfigOps,
    ledger: &Ledger,
    id: usize,
    ledger_episode: u64,
    epoch: u64,
    slot: usize,
    generation: u64,
) -> bool {
    if ctx::aborted() {
        return false;
    }
    ledger.begin(id);
    ledger.enter_wait(id, ledger_episode);
    let result = group.sync(slot, generation);
    if ctx::aborted() {
        return false;
    }
    match result {
        Ok(e) if e == epoch => {
            ledger.exit_wait(id);
            ledger.check_fuzzy(id, ledger_episode);
            !ctx::aborted()
        }
        Ok(e) => {
            ctx::report(Defect::ProtocolError {
                thread: id,
                message: format!("expected release at epoch {epoch}, sync returned {e}"),
            });
            false
        }
        Err(err) => {
            report_err(id, "membership sync", &err);
            false
        }
    }
}

/// Join-during-episode scenario: two founders and one joiner over a
/// three-slot group. The founders hold epoch 0 until the join is staged,
/// so on **every** schedule the membership the installer sees at the
/// first boundary is the same: epoch 0 must run at the founding pair and
/// epoch 1 at the grown trio. A protocol that admits the joiner
/// mid-episode ([`crate::mutants::MutantJoinMidEpoch`]) either releases
/// a founder past its peer (fuzzy violation) or skews the arrival
/// counts into a deadlock.
pub fn join_mid_episode_with(
    name: impl Into<String>,
    mut factory: impl FnMut() -> Arc<dyn ReconfigOps> + 'static,
) -> Scenario {
    Scenario {
        name: name.into(),
        threads: 3,
        build: Box::new(move || {
            let group = factory();
            let joined = Arc::new(ShadowU32::new(0));
            let founders = Arc::new(Ledger::new(vec![0, 1]));
            let grown = Arc::new(Ledger::new(vec![0, 1, 2]));
            let bodies: Vec<Job> = (0..3)
                .map(|id| {
                    let group = Arc::clone(&group);
                    let joined = Arc::clone(&joined);
                    let founders = Arc::clone(&founders);
                    let grown = Arc::clone(&grown);
                    Box::new(move || {
                        if id == 2 {
                            join_mid_episode_joiner(&*group, &joined, &grown);
                        } else {
                            join_mid_episode_founder(&*group, &joined, &founders, &grown, id);
                        }
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&founders), Arc::clone(&grown)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

/// [`join_mid_episode_with`] over the real shadow-domain group.
#[must_use]
pub fn join_mid_episode() -> Scenario {
    join_mid_episode_with("reconfig/join-mid-episode", || shadow_group(3, 2))
}

fn join_mid_episode_founder(
    group: &dyn ReconfigOps,
    joined: &ShadowU32,
    founders: &Ledger,
    grown: &Ledger,
    id: usize,
) {
    // Hold epoch 0 until the join is staged: the installer at the first
    // boundary then sees the pending join on every schedule.
    ShadowSync::wait_until(StallPolicy::Spin, || joined.load(Ordering::Acquire) == 1);
    if ctx::aborted() {
        return;
    }
    // Epoch 0 at the founding pair; founders hold slot `id`, generation 0.
    if !reconfig_sync_checked(group, founders, id, 0, 0, id, 0) {
        return;
    }
    // Epoch 1 at the grown trio (the grown ledger numbers from zero).
    reconfig_sync_checked(group, grown, id, 0, 1, id, 0);
}

fn join_mid_episode_joiner(group: &dyn ReconfigOps, joined: &ShadowU32, grown: &Ledger) {
    let (slot, generation) = match group.join() {
        Ok(credential) => credential,
        Err(err) => {
            report_err(2, "join", &err);
            return;
        }
    };
    joined.store(1, Ordering::Release);
    if ctx::aborted() {
        return;
    }
    group.wait_active(slot, generation);
    if ctx::aborted() {
        return;
    }
    // The joiner's first episode is the grown trio's epoch 1.
    if !reconfig_sync_checked(group, grown, 2, 0, 1, slot, generation) {
        return;
    }
    // The staged join must actually have landed: three live members.
    let members = group.members();
    if ctx::aborted() {
        return;
    }
    if members != 3 {
        ctx::report(Defect::ProtocolError {
            thread: 2,
            message: format!("expected 3 members after activation, found {members}"),
        });
    }
}

/// Stale-generation scenario over a two-slot group: member A leaves, its
/// slot is re-claimed by joiner J at a bumped generation, and A's retained
/// credential must then be refused with exactly
/// [`BarrierError::StaleGeneration`] — on every schedule, including those
/// where the probe races J's activation. A membership layer that forgets
/// the generation check ([`crate::mutants::MutantStaleGeneration`]) lets
/// the stale arrival into the re-occupied slot, which this scenario
/// reports as a protocol error the moment the probe returns anything
/// else.
pub fn stale_generation_with(
    name: impl Into<String>,
    mut factory: impl FnMut() -> Arc<dyn ReconfigOps> + 'static,
) -> Scenario {
    Scenario {
        name: name.into(),
        threads: 3,
        build: Box::new(move || {
            let group = factory();
            let joined = Arc::new(ShadowU32::new(0));
            let a_done = Arc::new(ShadowU32::new(0));
            let j_done = Arc::new(ShadowU32::new(0));
            let pump = Arc::new(ShadowU32::new(0));
            let bodies: Vec<Job> = (0..3)
                .map(|id| {
                    let group = Arc::clone(&group);
                    let joined = Arc::clone(&joined);
                    let a_done = Arc::clone(&a_done);
                    let j_done = Arc::clone(&j_done);
                    let pump = Arc::clone(&pump);
                    Box::new(move || match id {
                        0 => stale_generation_leaver(&*group, &joined, &a_done, &pump),
                        1 => stale_generation_driver(&*group, &j_done, &pump),
                        _ => stale_generation_reuser(&*group, &joined, &a_done, &j_done, &pump),
                    }) as Job
                })
                .collect();
            // No fuzzy ledger: this scenario checks the credential
            // lifecycle, so a hang is reported as the deadlock it is.
            ScheduleRun {
                bodies,
                finish: Box::new(|defect| defect),
            }
        }),
    }
}

/// [`stale_generation_with`] over the real shadow-domain group.
#[must_use]
pub fn stale_generation() -> Scenario {
    stale_generation_with("reconfig/stale-generation", || shadow_group(2, 2))
}

fn stale_generation_leaver(
    group: &dyn ReconfigOps,
    joined: &ShadowU32,
    a_done: &ShadowU32,
    pump: &ShadowU32,
) {
    // Epoch 0 at full strength, then depart. The departure bumps the slot
    // generation immediately, so the retained (0, 0) credential is stale
    // from here on.
    match group.sync(0, 0) {
        Ok(0) => {}
        Ok(e) => {
            ctx::report(Defect::ProtocolError {
                thread: 0,
                message: format!("expected release at epoch 0, sync returned {e}"),
            });
            return;
        }
        Err(err) => {
            report_err(0, "pre-leave sync", &err);
            return;
        }
    }
    if ctx::aborted() {
        return;
    }
    if let Err(err) = group.leave(0, 0) {
        report_err(0, "leave", &err);
        return;
    }
    // The freed slot installs at the next boundary: ask the driver for
    // one.
    pump.fetch_add(1, Ordering::AcqRel);
    if ctx::aborted() {
        return;
    }
    // Probe only once the slot has been re-claimed, so the stale arrival
    // races a live re-occupant rather than an empty slot.
    ShadowSync::wait_until(StallPolicy::Spin, || joined.load(Ordering::Acquire) == 1);
    if ctx::aborted() {
        return;
    }
    match group.sync(0, 0) {
        Err(BarrierError::StaleGeneration {
            slot,
            held,
            current,
        }) if slot == 0 && held == 0 && current >= 1 => {}
        Ok(e) => {
            ctx::report(Defect::ProtocolError {
                thread: 0,
                message: format!("stale credential accepted; released at epoch {e}"),
            });
            return;
        }
        Err(err) => {
            report_err(0, "stale probe", &err);
            return;
        }
    }
    a_done.store(1, Ordering::Release);
}

fn stale_generation_driver(group: &dyn ReconfigOps, j_done: &ShadowU32, pump: &ShadowU32) {
    // Epoch 0 at full strength alongside the leaver.
    match group.sync(1, 0) {
        Ok(0) => {}
        Ok(e) => {
            ctx::report(Defect::ProtocolError {
                thread: 1,
                message: format!("expected release at epoch 0, sync returned {e}"),
            });
            return;
        }
        Err(err) => {
            report_err(1, "driver sync", &err);
            return;
        }
    }
    // Drive one boundary per request so departures free, joins install,
    // and the reuser activates. Each pump is *requested* (the driver
    // blocks between them): an ungated loop would spin solo boundaries
    // forever and never yield the schedule to the other threads.
    let mut served = 0u32;
    let mut next_epoch = 1u64;
    loop {
        ShadowSync::wait_until(StallPolicy::Spin, || {
            j_done.load(Ordering::Acquire) == 1 || pump.load(Ordering::Acquire) > served
        });
        if ctx::aborted() || j_done.load(Ordering::Acquire) == 1 {
            return;
        }
        match group.sync(1, 0) {
            Ok(e) if e >= next_epoch => next_epoch = e + 1,
            Ok(e) => {
                ctx::report(Defect::ProtocolError {
                    thread: 1,
                    message: format!("release epoch went backwards: {e} < {next_epoch}"),
                });
                return;
            }
            Err(err) => {
                report_err(1, "driver sync", &err);
                return;
            }
        }
        served += 1;
    }
}

fn stale_generation_reuser(
    group: &dyn ReconfigOps,
    joined: &ShadowU32,
    a_done: &ShadowU32,
    j_done: &ShadowU32,
    pump: &ShadowU32,
) {
    // The departed slot frees at the boundary after the leave: epoch 2
    // implies the installer processed it, so the join below cannot see
    // GroupFull.
    ShadowSync::wait_until(StallPolicy::Spin, || group.epoch() >= 2);
    if ctx::aborted() {
        return;
    }
    let (slot, generation) = match group.join() {
        Ok(credential) => credential,
        Err(err) => {
            report_err(2, "reuse join", &err);
            return;
        }
    };
    if slot != 0 || generation == 0 {
        ctx::report(Defect::ProtocolError {
            thread: 2,
            message: format!(
                "expected to reuse slot 0 at a bumped generation, got slot {slot} \
                 generation {generation}"
            ),
        });
        return;
    }
    joined.store(1, Ordering::Release);
    // Activation installs at the boundary after the staging: request it.
    pump.fetch_add(1, Ordering::AcqRel);
    if ctx::aborted() {
        return;
    }
    group.wait_active(slot, generation);
    if ctx::aborted() {
        return;
    }
    // The sync below needs the driver as a partner: request a boundary.
    pump.fetch_add(1, Ordering::AcqRel);
    if let Err(err) = group.sync(slot, generation) {
        report_err(2, "reuser sync", &err);
        return;
    }
    if ctx::aborted() {
        return;
    }
    // Leave only after the stale probe resolved, so the probe always
    // races a live re-occupant.
    ShadowSync::wait_until(StallPolicy::Spin, || a_done.load(Ordering::Acquire) == 1);
    if ctx::aborted() {
        return;
    }
    if let Err(err) = group.leave(slot, generation) {
        report_err(2, "reuse leave", &err);
        return;
    }
    j_done.store(1, Ordering::Release);
}

/// Join/evict-race scenario: a joiner stages into a three-slot group with
/// no ordering constraints while the driver evicts the idle founder, so
/// the pending join and the pending free race into the same (or
/// adjacent) boundary installs across schedules. Liveness and final
/// agreement are asserted: every sync returns, the joiner activates and
/// departs cleanly, and the group converges to the driver alone.
#[must_use]
pub fn join_evict_race() -> Scenario {
    Scenario {
        name: "reconfig/join-evict-race".into(),
        threads: 3,
        build: Box::new(|| {
            let group = shadow_group(3, 2);
            let j_done = Arc::new(ShadowU32::new(0));
            let pump = Arc::new(ShadowU32::new(0));
            let full = Arc::new(Ledger::new(vec![0, 1]));
            let bodies: Vec<Job> = (0..3)
                .map(|id| {
                    let group = Arc::clone(&group);
                    let j_done = Arc::clone(&j_done);
                    let pump = Arc::clone(&pump);
                    let full = Arc::clone(&full);
                    Box::new(move || match id {
                        0 => {
                            // The evictee synchronizes once and goes
                            // silent; the driver removes it. Arriving only
                            // for the completed epoch 0 honors the
                            // eviction contract on every schedule.
                            reconfig_sync_checked(&*group, &full, 0, 0, 0, 0, 0);
                        }
                        1 => join_evict_race_driver(&*group, &full, &j_done, &pump),
                        _ => join_evict_race_joiner(&*group, &j_done, &pump),
                    }) as Job
                })
                .collect();
            let ledgers = vec![Arc::clone(&full)];
            ScheduleRun {
                bodies,
                finish: Box::new(move |defect| classify(&ledgers, defect)),
            }
        }),
    }
}

fn join_evict_race_driver(
    group: &dyn ReconfigOps,
    full: &Ledger,
    j_done: &ShadowU32,
    pump: &ShadowU32,
) {
    if !reconfig_sync_checked(group, full, 1, 0, 0, 1, 0) {
        return;
    }
    // Epoch 0 is complete, so the founder's last arrival is behind the
    // in-flight epoch and the eviction contract holds.
    if let Err(err) = group.evict(0, 0) {
        report_err(1, "evict", &err);
        return;
    }
    // Drive one boundary per joiner request (activation, then
    // partnership) until the joiner has activated, synchronized, and
    // departed; the eviction's stand-in covers the founder's arrival.
    // Gating each pump on a request keeps the driver blocked between
    // boundaries — an ungated loop would spin solo epochs forever
    // without ever yielding the schedule to the joiner.
    let mut served = 0u32;
    let mut next_epoch = 1u64;
    loop {
        ShadowSync::wait_until(StallPolicy::Spin, || {
            j_done.load(Ordering::Acquire) == 1 || pump.load(Ordering::Acquire) > served
        });
        if ctx::aborted() {
            return;
        }
        if j_done.load(Ordering::Acquire) == 1 {
            break;
        }
        match group.sync(1, 0) {
            Ok(e) if e >= next_epoch => next_epoch = e + 1,
            Ok(e) => {
                ctx::report(Defect::ProtocolError {
                    thread: 1,
                    message: format!("release epoch went backwards: {e} < {next_epoch}"),
                });
                return;
            }
            Err(err) => {
                report_err(1, "driver sync", &err);
                return;
            }
        }
        served += 1;
    }
    if ctx::aborted() {
        return;
    }
    // Convergence: the evictee is gone and the joiner left — the driver
    // must be alone, on every schedule.
    let members = group.members();
    if ctx::aborted() {
        return;
    }
    if members != 1 {
        ctx::report(Defect::ProtocolError {
            thread: 1,
            message: format!("expected 1 member after convergence, found {members}"),
        });
    }
}

fn join_evict_race_joiner(group: &dyn ReconfigOps, j_done: &ShadowU32, pump: &ShadowU32) {
    // No gating: the join races the founders' epoch 0 and the eviction
    // across schedules. Slot 2 is free on every one of them.
    let (slot, generation) = match group.join() {
        Ok(credential) => credential,
        Err(err) => {
            report_err(2, "race join", &err);
            return;
        }
    };
    // Activation installs at the boundary after the staging: request one.
    pump.fetch_add(1, Ordering::AcqRel);
    group.wait_active(slot, generation);
    if ctx::aborted() {
        return;
    }
    // The sync below needs the driver as a partner: request a boundary.
    pump.fetch_add(1, Ordering::AcqRel);
    if let Err(err) = group.sync(slot, generation) {
        report_err(2, "joiner sync", &err);
        return;
    }
    if ctx::aborted() {
        return;
    }
    if let Err(err) = group.leave(slot, generation) {
        report_err(2, "joiner leave", &err);
        return;
    }
    j_done.store(1, Ordering::Release);
}
