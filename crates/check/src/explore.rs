//! Schedule exploration: exhaustive bounded-preemption DFS and seeded
//! random walks over the scheduler's decision tree.
//!
//! A *decision point* is an instant where the controller chose among the
//! runnable virtual threads. The canonical exploration order at each point
//! puts the **default** choice first — keep running the last thread if it
//! is still runnable, otherwise the lowest thread id — and the remaining
//! runnable indices after it, ascending. A schedule is identified by the
//! sequence of *positions* chosen in that order, so position `0` everywhere
//! is the natural round-robin-free execution and every deviation at a
//! non-forced point is a **preemption** (CHESS-style). DFS backtracks over
//! positions depth-first; an optional preemption bound prunes subtrees that
//! would exceed the budget, which is what keeps small-N state spaces
//! tractable without sacrificing the empirically bug-rich low-preemption
//! schedules.

use crate::ctx;
use crate::sched::{self, Defect, OpKind, RunResult, Shared, Strategy, Violation};
use fuzzy_util::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A virtual-thread body.
pub type Job = Box<dyn FnOnce() + Send>;

/// One concrete run of a scenario: the per-thread bodies plus a
/// post-classification hook.
pub struct ScheduleRun {
    /// One body per virtual thread (index = thread id).
    pub bodies: Vec<Job>,
    /// Runs on the controller after the schedule finishes. Receives the
    /// defect found (if any) and may reclassify it (e.g. deadlock →
    /// lost wakeup), clear it, or raise one of its own from final-state
    /// invariants.
    pub finish: Box<dyn FnOnce(Option<Defect>) -> Option<Defect>>,
}

impl std::fmt::Debug for ScheduleRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleRun")
            .field("bodies", &self.bodies.len())
            .finish_non_exhaustive()
    }
}

/// A checkable scenario: a factory producing a fresh [`ScheduleRun`]
/// (fresh barrier, fresh ledger) for every schedule the explorer tries.
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Number of virtual threads.
    pub threads: usize,
    /// Builds a fresh run.
    pub build: Box<dyn FnMut() -> ScheduleRun>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Exploration budget and bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Stop after this many schedules even if the space is not exhausted.
    pub max_schedules: usize,
    /// Per-schedule step budget (livelock backstop).
    pub step_limit: u64,
    /// CHESS-style preemption bound; `None` = unbounded (full DFS).
    pub preemption_bound: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_schedules: 10_000,
            step_limit: sched::DEFAULT_STEP_LIMIT,
            preemption_bound: None,
        }
    }
}

/// Result of exploring a scenario.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// No schedule provoked a defect.
    Pass {
        /// Schedules executed. Under DFS every schedule is distinct by
        /// construction (each corresponds to a different position prefix).
        schedules: usize,
        /// True if the (bounded) decision tree was fully explored rather
        /// than cut off by `max_schedules`.
        exhausted: bool,
    },
    /// A schedule provoked a defect.
    Fail {
        /// The defect and its replayable schedule.
        violation: Violation,
        /// Schedules executed up to and including the failing one.
        schedules: usize,
    },
}

impl Outcome {
    /// True if no defect was found.
    #[must_use]
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }

    /// Schedules executed.
    #[must_use]
    pub fn schedules(&self) -> usize {
        match self {
            Outcome::Pass { schedules, .. } | Outcome::Fail { schedules, .. } => *schedules,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

struct Worker {
    tx: Option<mpsc::Sender<(Arc<Shared>, Job)>>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of OS threads, one per virtual-thread slot, reused across every
/// schedule of an exploration (spawning threads per schedule would dominate
/// the runtime at tens of thousands of schedules).
pub struct Pool {
    workers: Vec<Worker>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Pool {
    /// Spawns `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let workers = (0..threads)
            .map(|tid| {
                let (tx, rx) = mpsc::channel::<(Arc<Shared>, Job)>();
                let handle = std::thread::Builder::new()
                    .name(format!("vthread-{tid}"))
                    .spawn(move || {
                        for (shared, job) in rx {
                            ctx::install(Arc::clone(&shared), tid);
                            // Park until first scheduled, so job-delivery
                            // timing never leaks into the interleaving.
                            shared.yield_op(tid, OpKind::Spawn);
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                                shared.report(Defect::Panic {
                                    thread: tid,
                                    message: panic_message(&payload),
                                });
                            }
                            shared.finish(tid);
                            ctx::clear();
                        }
                    })
                    .expect("spawn checker worker");
                Worker {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        Pool { workers }
    }

    fn len(&self) -> usize {
        self.workers.len()
    }

    fn dispatch(&self, shared: &Arc<Shared>, bodies: Vec<Job>) {
        assert_eq!(bodies.len(), self.len(), "one body per worker");
        for (worker, body) in self.workers.iter().zip(bodies) {
            worker
                .tx
                .as_ref()
                .expect("pool not shut down")
                .send((Arc::clone(shared), body))
                .expect("checker worker alive");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            drop(worker.tx.take());
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one schedule of `run` on `pool` under `strategy`.
fn run_one(
    pool: &Pool,
    run: ScheduleRun,
    strategy: &mut dyn Strategy,
    step_limit: u64,
) -> RunResult {
    let shared = Arc::new(Shared::new(pool.len()));
    pool.dispatch(&shared, run.bodies);
    let mut result = sched::run_schedule(&shared, strategy, step_limit);
    let reclassified = (run.finish)(result.violation.as_ref().map(|v| v.defect.clone()));
    result.violation = match (reclassified, result.violation.take()) {
        (Some(defect), Some(mut v)) => {
            v.defect = defect;
            Some(v)
        }
        (Some(defect), None) => Some(Violation {
            defect,
            schedule: result.schedule.clone(),
            steps: result.steps,
        }),
        (None, _) => None,
    };
    result
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Maps a canonical-order position to an index into the runnable set.
/// Order: `[default, 0, 1, .., default-1, default+1, .., len-1]`.
fn pos_to_index(default_idx: usize, pos: usize) -> usize {
    if pos == 0 {
        default_idx
    } else if pos - 1 < default_idx {
        pos - 1
    } else {
        pos
    }
}

#[derive(Debug, Clone, Copy)]
struct PointRec {
    len: usize,
    chosen_pos: usize,
    forced: bool,
    preemptions_before: usize,
}

struct DfsWalk<'a> {
    prefix: &'a [usize],
    depth: usize,
    preemptions: usize,
    points: Vec<PointRec>,
}

impl Strategy for DfsWalk<'_> {
    fn choose(&mut self, runnable: &[usize], last: Option<usize>) -> usize {
        let default_idx = last
            .and_then(|l| runnable.iter().position(|&t| t == l))
            .unwrap_or(0);
        // A switch is "forced" when the previous thread cannot continue;
        // only unforced switches count against the preemption bound.
        let forced = match last {
            None => true,
            Some(l) => !runnable.contains(&l),
        };
        let mut pos = if self.depth < self.prefix.len() {
            self.prefix[self.depth]
        } else {
            0
        };
        if pos >= runnable.len() {
            // Divergence guard; a well-formed prefix never hits this.
            pos = 0;
        }
        self.points.push(PointRec {
            len: runnable.len(),
            chosen_pos: pos,
            forced,
            preemptions_before: self.preemptions,
        });
        if pos != 0 && !forced {
            self.preemptions += 1;
        }
        self.depth += 1;
        pos_to_index(default_idx, pos)
    }
}

/// Computes the next DFS position prefix from the last run's decision
/// points, or `None` when the (bounded) tree is exhausted.
fn next_prefix(points: &mut Vec<PointRec>, bound: Option<usize>) -> Option<Vec<usize>> {
    while let Some(point) = points.pop() {
        let next_pos = point.chosen_pos + 1;
        if next_pos >= point.len {
            continue;
        }
        // Every alternative position at this point preempts (unless the
        // switch was forced anyway), so one bound check covers them all.
        if !point.forced {
            if let Some(b) = bound {
                if point.preemptions_before + 1 > b {
                    continue;
                }
            }
        }
        let mut prefix: Vec<usize> = points.iter().map(|q| q.chosen_pos).collect();
        prefix.push(next_pos);
        return Some(prefix);
    }
    None
}

struct RandomWalk {
    rng: SplitMix64,
}

impl Strategy for RandomWalk {
    fn choose(&mut self, runnable: &[usize], _last: Option<usize>) -> usize {
        self.rng.below(runnable.len())
    }
}

/// Replays a recorded grant sequence (thread ids); falls back to the
/// default choice — and flags divergence — if a requested thread is not
/// runnable.
struct ReplayWalk {
    schedule: Vec<usize>,
    depth: usize,
    diverged: bool,
}

impl Strategy for ReplayWalk {
    fn choose(&mut self, runnable: &[usize], last: Option<usize>) -> usize {
        let default_idx = last
            .and_then(|l| runnable.iter().position(|&t| t == l))
            .unwrap_or(0);
        if self.depth < self.schedule.len() {
            let want = self.schedule[self.depth];
            self.depth += 1;
            match runnable.iter().position(|&t| t == want) {
                Some(idx) => return idx,
                None => self.diverged = true,
            }
        }
        default_idx
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Exhaustive (optionally preemption-bounded) depth-first exploration.
pub fn explore_dfs(scenario: &mut Scenario, opts: &ExploreOptions) -> Outcome {
    let pool = Pool::new(scenario.threads);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let run = (scenario.build)();
        let mut strategy = DfsWalk {
            prefix: &prefix,
            depth: 0,
            preemptions: 0,
            points: Vec::new(),
        };
        let result = run_one(&pool, run, &mut strategy, opts.step_limit);
        let mut points = strategy.points;
        schedules += 1;
        if let Some(violation) = result.violation {
            return Outcome::Fail {
                violation,
                schedules,
            };
        }
        if schedules >= opts.max_schedules {
            return Outcome::Pass {
                schedules,
                exhausted: false,
            };
        }
        match next_prefix(&mut points, opts.preemption_bound) {
            Some(p) => prefix = p,
            None => {
                return Outcome::Pass {
                    schedules,
                    exhausted: true,
                }
            }
        }
    }
}

/// Seeded random sampling: schedule `i` uses seed `seed + i`, so any
/// failure is reproducible from the reported seed alone (and from the
/// recorded grant sequence via [`replay`]).
pub fn explore_random(scenario: &mut Scenario, opts: &ExploreOptions, seed: u64) -> Outcome {
    let pool = Pool::new(scenario.threads);
    for i in 0..opts.max_schedules {
        let run = (scenario.build)();
        let mut strategy = RandomWalk {
            rng: SplitMix64::seed_from_u64(seed.wrapping_add(i as u64)),
        };
        let result = run_one(&pool, run, &mut strategy, opts.step_limit);
        if let Some(violation) = result.violation {
            return Outcome::Fail {
                violation,
                schedules: i + 1,
            };
        }
    }
    Outcome::Pass {
        schedules: opts.max_schedules,
        exhausted: false,
    }
}

/// Re-executes one recorded schedule. Returns the run result plus whether
/// the replay diverged from the recording.
pub fn replay(scenario: &mut Scenario, schedule: Vec<usize>, step_limit: u64) -> (RunResult, bool) {
    let pool = Pool::new(scenario.threads);
    let run = (scenario.build)();
    let mut strategy = ReplayWalk {
        schedule,
        depth: 0,
        diverged: false,
    };
    let result = run_one(&pool, run, &mut strategy, step_limit);
    let diverged = strategy.diverged;
    (result, diverged)
}
