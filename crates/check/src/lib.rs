//! # fuzzy-check
//!
//! A dependency-free, loom-lite **model checker** for the fuzzy-barrier
//! backends. It runs the *real* backend code — `CentralBarrier`,
//! `CountingBarrier`, `DisseminationBarrier`, `TreeBarrier`,
//! `HierBarrier`, plus the mask/tag/registry layers — on virtual threads
//! under a deterministic
//! scheduler, and explores the interleavings of their atomic operations:
//! exhaustively (bounded-preemption DFS) or by seeded random sampling.
//!
//! ## How it works
//!
//! The backends in `fuzzy-barrier` are generic over
//! [`fuzzy_barrier::SyncOps`]. Production code instantiates them with
//! `RealSync` (plain `std` atomics — zero cost). The checker instantiates
//! them with [`ShadowSync`], whose atomics *announce every access to a
//! scheduler* before performing it. One OS thread per virtual thread,
//! exactly one allowed to move at a time: every run is a sequentially
//! consistent interleaving identified by the grant sequence, which is
//! printed on failure and replayable with `check --replay`.
//!
//! What it detects:
//!
//! * **deadlock** — nothing runnable, not everything finished;
//! * **lost wakeup** — a deadlock in which every stuck waiter's episode
//!   had fully arrived (the release signal existed and was lost);
//! * **fuzzy violation** — `wait(token)` returned before every masked
//!   participant's `arrive()` for the token's episode;
//! * **protocol errors**, **panics**, and **step-limit** blowups
//!   (livelock suspicion).
//!
//! What it does **not** explore: weak-memory reorderings. Shadow atomics
//! execute sequentially consistently regardless of the `Ordering`
//! arguments, so a bug that requires an actual `Relaxed` reordering is out
//! of scope — this is a loom-lite, not a loom.
//!
//! ## Trying it
//!
//! ```text
//! cargo run -p fuzzy-check --bin check -- --backend all -n 3 --schedules 10000
//! ```
//!
//! The [`mutants`] module carries twelve seeded-bug backends the checker
//! must catch — six concurrency races (including a hierarchical shard
//! leader that releases early), two fault-handling bugs (a no-op poison
//! and a mask-preserving eviction), an async frontend that forgets
//! to drain its parked-waker registry on release, two
//! dynamic-membership bugs (a join admitted mid-episode and a forgotten
//! generation check), and a distributed bug (a transport that forges the
//! higher dissemination rounds, releasing a `NetBarrier` endpoint on
//! first contact); `cargo test -p fuzzy-check` proves it does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod explore;
pub mod mutants;
pub mod scenario;
pub mod sched;
pub mod shadow;

pub use explore::{
    explore_dfs, explore_random, replay, ExploreOptions, Outcome, Scenario, ScheduleRun,
};
pub use scenario::{
    async_handoff, async_handoff_with, classify, evict, evict_with, join_evict_race,
    join_mid_episode, join_mid_episode_with, net_round, net_round_with, poison, poison_with,
    protocol, protocol_with, registry, stale_generation, stale_generation_with, subset_overlap,
    subset_pair, AsyncArrival, AsyncFrontend, BackendKind, Ledger, ReconfigOps,
};
pub use sched::{Defect, RunResult, Violation, DEFAULT_STEP_LIMIT};
pub use shadow::ShadowSync;
