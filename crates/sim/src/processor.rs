//! Processor execution context.

use crate::barrier_hw::BarrierUnit;
use crate::isa::NUM_REGS;
use crate::stats::ProcStats;

/// Maximum call/handler nesting depth per processor.
pub const MAX_CALL_DEPTH: usize = 128;

/// A control-stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// A procedure call; `ret` resumes at `return_pc`.
    Call {
        /// Instruction index to resume at.
        return_pc: usize,
    },
    /// An interrupt or trap handler; while any handler frame is live the
    /// barrier unit's state is frozen (region transitions are suspended) —
    /// this crate's resolution of the paper's Sec. 9 open question.
    Handler {
        /// Instruction index to resume at.
        return_pc: usize,
    },
}

/// One simulated processor: registers, program counter, barrier unit and
/// (in pipelined mode) the set of in-flight non-barrier instructions.
#[derive(Debug, Clone)]
pub struct Processor {
    /// Processor id (index into the machine's processor array).
    pub id: usize,
    /// General-purpose registers.
    pub regs: [i64; NUM_REGS],
    /// Program counter: index of the next instruction in this stream.
    pub pc: usize,
    /// Whether the processor has executed `halt` (or run off the end of
    /// its stream).
    pub halted: bool,
    /// The fuzzy-barrier hardware attached to this processor.
    pub unit: BarrierUnit,
    /// First cycle at which the processor may issue again (serial mode) —
    /// models multi-cycle instruction occupancy.
    pub busy_until: u64,
    /// Completion cycles of in-flight **non-barrier** instructions
    /// (pipelined mode). While non-empty the processor has not yet *exited*
    /// the preceding non-barrier region, so its ready line is vetoed.
    pub outstanding_plain: Vec<u64>,
    /// Control stack for `call`/`ret` and interrupt/trap handlers.
    pub frames: Vec<Frame>,
    /// Number of live [`Frame::Handler`] frames; region transitions are
    /// suspended while non-zero.
    pub handler_depth: u32,
    /// Barrier-region instructions executed since the current region was
    /// entered — the processor's *position* inside the region, sampled at
    /// synchronization time (Fig. 1: "the processors could be executing
    /// at any point in their respective barrier regions").
    pub region_progress: u64,
    /// Cycle at which the current stall (state iv) began, if stalled.
    /// Cleared when the stall resolves; its duration feeds the machine's
    /// stall histogram.
    pub stall_started: Option<u64>,
    /// Cycle at which the current barrier region was entered, if inside
    /// one. The first-to-last spread of these values across a synchronizing
    /// group is the arrival spread recorded per sync event.
    pub region_entered_at: Option<u64>,
    /// Statistics.
    pub stats: ProcStats,
}

impl Processor {
    /// Creates a processor with the given barrier unit configuration.
    #[must_use]
    pub fn new(id: usize, unit: BarrierUnit) -> Self {
        Processor {
            id,
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            unit,
            busy_until: 0,
            outstanding_plain: Vec::new(),
            frames: Vec::new(),
            handler_depth: 0,
            region_progress: 0,
            stall_started: None,
            region_entered_at: None,
            stats: ProcStats::default(),
        }
    }

    /// Whether the processor is currently inside an interrupt/trap
    /// handler (barrier-region transitions suspended).
    #[must_use]
    pub fn in_handler(&self) -> bool {
        self.handler_depth > 0
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: u8) -> i64 {
        self.regs[r as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: u8, value: i64) {
        self.regs[r as usize] = value;
    }

    /// Drops in-flight non-barrier instructions that have completed by
    /// `cycle`.
    pub fn retire(&mut self, cycle: u64) {
        self.outstanding_plain.retain(|&done| done > cycle);
    }

    /// Whether the processor has exited its preceding non-barrier region:
    /// true once no non-barrier instructions remain in flight. Serial mode
    /// keeps this vacuously true.
    #[must_use]
    pub fn exited_non_barrier(&self) -> bool {
        self.outstanding_plain.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_drops_completed_ops() {
        let mut p = Processor::new(0, BarrierUnit::default());
        p.outstanding_plain = vec![5, 10, 15];
        p.retire(10);
        assert_eq!(p.outstanding_plain, vec![15]);
        assert!(!p.exited_non_barrier());
        p.retire(20);
        assert!(p.exited_non_barrier());
    }

    #[test]
    fn register_file_round_trips() {
        let mut p = Processor::new(1, BarrierUnit::default());
        p.set_reg(7, -3);
        assert_eq!(p.reg(7), -3);
        assert_eq!(p.reg(0), 0);
    }
}
