//! The multiprocessor machine: common clock, processors, memory and the
//! broadcast barrier network.
//!
//! "It is assumed that all processors use a common clock and are reset
//! simultaneously" (Sec. 6). [`Machine::step`] advances that clock by one
//! cycle: every processor attempts to issue, then the synchronization
//! condition is evaluated once, broadcast-style, so all members of a
//! barrier group discover synchronization in the same cycle.

use crate::barrier_hw::{evaluate_sync, BarrierState, BarrierUnit};
use crate::fault::{EvictionEvent, FaultPlan, FaultState};
use crate::isa::Instr;
use crate::memory::{Memory, MemoryConfig, OutOfBounds};
use crate::processor::Processor;
use crate::program::{Program, ProgramError};
use crate::stats::{MachineStats, ProcStats, SyncTelemetry};
use crate::trace::{EventKind, TraceLog};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Machine-level configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Memory system configuration.
    pub memory: MemoryConfig,
    /// Pipelined issue: instructions overlap, and "a processor may enter
    /// the barrier region before exiting the preceding non-barrier region"
    /// (Sec. 6). When false, instructions execute serially to completion.
    pub pipelined: bool,
    /// Latency of `mul`/`muli` in cycles.
    pub mul_latency: u64,
    /// Enable the event trace.
    pub trace: bool,
    /// Maximum trace events retained.
    pub trace_capacity: usize,
    /// Run the static validator when loading the program. Disable only to
    /// demonstrate what invalid programs (Fig. 2) do to the hardware.
    pub validate: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            memory: MemoryConfig::default(),
            pipelined: false,
            mul_latency: 3,
            trace: false,
            trace_capacity: 1 << 16,
            validate: true,
        }
    }
}

/// Why a [`Machine::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every processor halted.
    Halted {
        /// Cycles elapsed.
        cycles: u64,
    },
    /// No processor can ever make progress again: every live processor is
    /// stalled at a barrier and the synchronization condition cannot fire
    /// (e.g. Fig. 2's invalid branch).
    Deadlock {
        /// Cycle at which deadlock was detected.
        cycle: u64,
    },
    /// The cycle budget ran out first.
    CycleLimit {
        /// Cycles elapsed.
        cycles: u64,
    },
}

impl RunOutcome {
    /// Whether the program ran to completion.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        matches!(self, RunOutcome::Halted { .. })
    }

    /// Whether the machine deadlocked.
    #[must_use]
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunOutcome::Deadlock { .. })
    }

    /// Cycles elapsed when the run ended.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match self {
            RunOutcome::Halted { cycles } | RunOutcome::CycleLimit { cycles } => *cycles,
            RunOutcome::Deadlock { cycle } => *cycle,
        }
    }
}

/// Simulation errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The loaded program failed static validation.
    InvalidProgram(ProgramError),
    /// A processor accessed memory out of bounds.
    Memory {
        /// Offending processor.
        proc: usize,
        /// Cycle of the access.
        cycle: u64,
        /// The underlying bounds error.
        source: OutOfBounds,
    },
    /// The call/handler stack exceeded [`crate::processor::MAX_CALL_DEPTH`].
    CallDepthExceeded {
        /// Offending processor.
        proc: usize,
        /// Cycle of the call.
        cycle: u64,
    },
    /// `ret` executed with no frame to return to.
    ReturnWithoutFrame {
        /// Offending processor.
        proc: usize,
        /// Cycle of the return.
        cycle: u64,
    },
    /// `trap` executed with no trap handler registered for the processor.
    UnhandledTrap {
        /// Offending processor.
        proc: usize,
        /// Cycle of the trap.
        cycle: u64,
        /// The trap cause.
        cause: u16,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SimError::Memory {
                proc,
                cycle,
                source,
            } => write!(f, "processor {proc} at cycle {cycle}: {source}"),
            SimError::CallDepthExceeded { proc, cycle } => {
                write!(f, "processor {proc} at cycle {cycle}: call stack overflow")
            }
            SimError::ReturnWithoutFrame { proc, cycle } => {
                write!(
                    f,
                    "processor {proc} at cycle {cycle}: ret with empty call stack"
                )
            }
            SimError::UnhandledTrap { proc, cycle, cause } => {
                write!(
                    f,
                    "processor {proc} at cycle {cycle}: trap {cause} with no handler registered"
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidProgram(e) => Some(e),
            SimError::Memory { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::InvalidProgram(e)
    }
}

/// The simulated multiprocessor.
#[derive(Debug)]
pub struct Machine {
    program: Program,
    procs: Vec<Processor>,
    memory: Memory,
    cfg: MachineConfig,
    cycle: u64,
    sync_events: u64,
    trace: TraceLog,
    /// Per-processor trap handler entry points (`trap` faults without one).
    trap_handlers: Vec<Option<usize>>,
    /// Pending asynchronous interrupts: `(deliver_at_cycle, proc, handler)`.
    interrupts: Vec<(u64, usize, usize)>,
    /// Samples of each synchronizing processor's position inside its
    /// barrier region (instructions already executed from the region) at
    /// the moment synchronization occurred.
    sync_positions: Vec<u64>,
    /// Machine-level stall histogram and arrival-spread accumulators —
    /// the cycle-domain mirror of the thread library's telemetry.
    telemetry: SyncTelemetry,
    /// Injected ready-line faults (see [`crate::fault`]).
    faults: Vec<FaultState>,
    /// Watchdog-triggered evictions, in firing order.
    evictions: Vec<EvictionEvent>,
}

impl Machine {
    /// Loads `program` onto a machine with one processor per stream.
    /// Every processor's mask defaults to "all other processors" and its
    /// tag to 1; use [`crate::builder::MachineBuilder`] or `setmask` /
    /// `settag` instructions to change that.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] if validation is enabled and
    /// the program violates the Sec. 3 branch rules.
    pub fn new(program: Program, cfg: MachineConfig) -> Result<Self, SimError> {
        if cfg.validate {
            program.validate()?;
        }
        let n = program.num_procs();
        let all = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let procs = (0..n)
            .map(|id| {
                let mask = all & !(1u64 << id);
                Processor::new(id, BarrierUnit::new(mask, 1))
            })
            .collect();
        Ok(Machine {
            memory: Memory::new(cfg.memory.clone(), n),
            trace: TraceLog::new(cfg.trace, cfg.trace_capacity),
            procs,
            program,
            cfg,
            cycle: 0,
            sync_events: 0,
            trap_handlers: vec![None; n],
            interrupts: Vec::new(),
            sync_positions: Vec::new(),
            telemetry: SyncTelemetry::default(),
            faults: Vec::new(),
            evictions: Vec::new(),
        })
    }

    /// Registers a trap handler entry point for `proc`. A `trap`
    /// instruction jumps there with the cause code in `r31`; the barrier
    /// unit's state is frozen until the matching `ret`.
    pub fn set_trap_handler(&mut self, proc: usize, handler: usize) {
        self.trap_handlers[proc] = Some(handler);
    }

    /// Schedules an asynchronous interrupt: at the first cycle ≥ `cycle`
    /// where `proc` is live and not already in a handler, control
    /// transfers to `handler` (with a handler frame pushed). Barrier
    /// state is frozen for the handler's duration — a stalled processor
    /// takes the interrupt, runs the handler, and resumes its stall.
    pub fn schedule_interrupt(&mut self, proc: usize, cycle: u64, handler: usize) {
        self.interrupts.push((cycle, proc, handler));
    }

    /// Injects a ready-line fault: from `plan.onset` onward the victim's
    /// outgoing ready broadcast misbehaves per [`crate::fault::ReadyFault`].
    /// Suppression is applied at the broadcast network, so no unit —
    /// including the victim's own — observes the suppressed line.
    pub fn inject_ready_fault(&mut self, plan: FaultPlan) {
        assert!(plan.victim < self.procs.len(), "fault victim out of range");
        self.faults.push(FaultState::new(plan));
    }

    /// Watchdog-triggered evictions recorded so far, in firing order.
    #[must_use]
    pub fn evictions(&self) -> &[EvictionEvent] {
        &self.evictions
    }

    /// Creates a machine and applies per-processor initial masks and tags.
    ///
    /// # Errors
    ///
    /// Like [`Machine::new`].
    ///
    /// # Panics
    ///
    /// Panics if `units.len()` differs from the number of streams.
    pub fn with_units(
        program: Program,
        cfg: MachineConfig,
        units: Vec<BarrierUnit>,
    ) -> Result<Self, SimError> {
        assert_eq!(
            units.len(),
            program.num_procs(),
            "one barrier unit per stream"
        );
        let mut machine = Machine::new(program, cfg)?;
        for (proc, unit) in machine.procs.iter_mut().zip(units) {
            proc.unit = unit;
        }
        Ok(machine)
    }

    /// The current cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Shared memory access (host side).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable shared memory access (host side), e.g. to load input data.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The processors.
    #[must_use]
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// The event trace.
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Samples of processors’ positions inside their barrier regions at
    /// the moment each synchronization occurred: 0 means the processor
    /// had only just entered the region; larger values mean it was deep
    /// inside. The spread of these samples is the "fuzziness" of Fig. 1.
    #[must_use]
    pub fn sync_positions(&self) -> &[u64] {
        &self.sync_positions
    }

    /// Whether every processor has halted.
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.procs.iter().all(|p| p.halted)
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.cycle,
            sync_events: self.sync_events,
            sync: self.telemetry,
            procs: self.procs.iter().map(|p| p.stats).collect(),
        }
    }

    /// Per-processor statistics.
    #[must_use]
    pub fn proc_stats(&self, proc: usize) -> ProcStats {
        self.procs[proc].stats
    }

    /// Advances the machine one cycle. Returns true if any processor is
    /// still live (not halted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Memory`] on an out-of-bounds access.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let cycle = self.cycle;
        for i in 0..self.procs.len() {
            self.step_proc(i, cycle)?;
        }

        // Broadcast synchronization evaluation, once per cycle, after all
        // processors have acted — "all processors simultaneously discover
        // the occurrence of synchronization".
        let mut ready_override: Vec<bool> = self
            .procs
            .iter()
            .map(|p| {
                if self.cfg.pipelined {
                    p.outstanding_plain.iter().all(|&done| done <= cycle)
                } else {
                    true
                }
            })
            .collect();
        for fault in &mut self.faults {
            if fault.suppresses(cycle) {
                ready_override[fault.victim()] = false;
            }
        }
        let mut units: Vec<BarrierUnit> = self.procs.iter().map(|p| p.unit.clone()).collect();
        let synced = evaluate_sync(&mut units, &ready_override);
        if !synced.is_empty() {
            for ev in &mut self.evictions {
                if ev.recovered_at.is_none() && synced.contains(&ev.watchdog) {
                    ev.recovered_at = Some(cycle);
                }
            }
            let tags: BTreeSet<u16> = synced.iter().map(|&i| units[i].tag).collect();
            self.sync_events += tags.len() as u64;
            // Arrival spread per tag group: first-to-last barrier-region
            // entry cycle among the group's members.
            for &tag in &tags {
                let mut first: Option<u64> = None;
                let mut last: Option<u64> = None;
                for &i in &synced {
                    if units[i].tag != tag {
                        continue;
                    }
                    if let Some(entered) = self.procs[i].region_entered_at {
                        first = Some(first.map_or(entered, |f: u64| f.min(entered)));
                        last = Some(last.map_or(entered, |l: u64| l.max(entered)));
                    }
                }
                if let (Some(f), Some(l)) = (first, last) {
                    self.telemetry.record_spread(l - f);
                }
            }
            for &i in &synced {
                self.procs[i].unit.state = BarrierState::Synced;
                self.procs[i].stats.syncs += 1;
                if let Some(start) = self.procs[i].stall_started.take() {
                    // Inclusive: a stall that starts and resolves in the
                    // same cycle costs one stall cycle.
                    self.telemetry.stall_hist.record(cycle - start + 1);
                }
                if self.sync_positions.len() < (1 << 20) {
                    self.sync_positions.push(self.procs[i].region_progress);
                }
                self.trace.record(cycle, i, EventKind::Sync);
            }
        }

        self.maintain_watchdogs(cycle, &ready_override, &synced);

        self.cycle += 1;
        Ok(!self.all_halted())
    }

    /// Advances every armed watchdog register and evicts stragglers once a
    /// budget is exceeded — the paper's Sec. 5 mask update for dynamically
    /// terminating streams, applied here to a *failed* stream: the
    /// non-responsive partner is cleared from every unit's mask and its tag
    /// zeroed, so survivors synchronize without it from the next broadcast
    /// evaluation onward. The watchdog processor's trap handler (if
    /// registered) is raised as an eviction interrupt on the next cycle.
    fn maintain_watchdogs(&mut self, cycle: u64, ready_override: &[bool], synced: &[usize]) {
        let n = self.procs.len();
        let effective_ready: Vec<bool> = (0..n)
            .map(|i| self.procs[i].unit.ready_line() && ready_override[i])
            .collect();
        for (i, p) in self.procs.iter_mut().enumerate() {
            if synced.contains(&i) || p.halted || p.unit.tag == 0 || !p.unit.ready_line() {
                p.unit.waiting = 0;
            } else {
                p.unit.waiting += 1;
            }
        }

        let mut fired: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            if self.procs[i].halted || !self.procs[i].unit.watchdog_expired() {
                continue;
            }
            let unit = &self.procs[i].unit;
            let stragglers: Vec<usize> = (0..n)
                .filter(|&j| j != i && unit.mask & (1u64 << j) != 0)
                .filter(|&j| !effective_ready[j] || self.procs[j].unit.tag != unit.tag)
                .collect();
            if stragglers.is_empty() {
                // Every partner looks healthy from here; the wait must be
                // someone else's fault (e.g. our own broadcast is the one
                // being suppressed). Re-arm rather than evict the innocent.
                self.procs[i].unit.waiting = 0;
                continue;
            }
            for j in stragglers {
                fired.push((i, j));
            }
        }

        let mut evicted_now: BTreeSet<usize> = BTreeSet::new();
        for (watchdog, victim) in fired {
            if !evicted_now.insert(victim) {
                continue; // several watchdogs named the same straggler
            }
            for p in &mut self.procs {
                p.unit.mask &= !(1u64 << victim);
            }
            let v = &mut self.procs[victim].unit;
            v.mask = 0;
            v.tag = 0;
            v.waiting = 0;
            self.evictions.push(EvictionEvent {
                victim,
                watchdog,
                fired_at: cycle,
                recovered_at: None,
            });
            self.trace.record(cycle, victim, EventKind::Evict);
            if let Some(handler) = self.trap_handlers[watchdog] {
                self.interrupts.push((cycle + 1, watchdog, handler));
            }
        }
    }

    /// Runs until halt, deadlock or `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Memory`] on an out-of-bounds access.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunOutcome, SimError> {
        while self.cycle < max_cycles {
            let live = self.step()?;
            if !live {
                return Ok(RunOutcome::Halted { cycles: self.cycle });
            }
            if self.is_deadlocked() {
                return Ok(RunOutcome::Deadlock { cycle: self.cycle });
            }
        }
        Ok(RunOutcome::CycleLimit { cycles: self.cycle })
    }

    /// True when no future cycle can change any processor's state: every
    /// live processor is stalled at a barrier exit with nothing in flight,
    /// and the synchronization condition just failed to fire.
    fn is_deadlocked(&self) -> bool {
        // A pending interrupt can still unblock a stalled processor.
        if !self.interrupts.is_empty() {
            return false;
        }
        // An armed watchdog staring at a straggler will evict it within a
        // finite number of cycles.
        if self.eviction_pending() {
            return false;
        }
        let mut any_live = false;
        for p in &self.procs {
            if p.halted {
                continue;
            }
            any_live = true;
            if p.unit.state != BarrierState::Stalled || p.in_handler() {
                return false;
            }
            if !p.outstanding_plain.is_empty() {
                return false;
            }
        }
        if !any_live {
            return false;
        }
        // Probe whether a future broadcast evaluation could fire before
        // declaring the machine stuck: state relevant to synchronization
        // may have changed *after* this cycle's evaluation (an eviction
        // just updated the masks), and a transient fault may heal or
        // glitch through. The probe is optimistic — only a permanently
        // severed line counts as suppression — so a delay waiting to heal
        // or a stutter (p < 1) that could let one evaluation through both
        // defer deadlock, while a dead line does not mask a real deadlock.
        let mut units: Vec<BarrierUnit> = self.procs.iter().map(|p| p.unit.clone()).collect();
        let ready: Vec<bool> = (0..units.len())
            .map(|i| {
                !self
                    .faults
                    .iter()
                    .any(|f| f.victim() == i && f.severed_from(self.cycle))
            })
            .collect();
        evaluate_sync(&mut units, &ready).is_empty()
    }

    /// Whether some armed watchdog currently sees a straggler it will
    /// eventually evict. Mirrors the straggler test in
    /// [`Self::maintain_watchdogs`] for the quiescent state deadlock
    /// detection runs in (nothing in flight, transient faults inert).
    fn eviction_pending(&self) -> bool {
        for (i, p) in self.procs.iter().enumerate() {
            if p.halted || p.unit.watchdog.is_none() || p.unit.tag == 0 || !p.unit.ready_line() {
                continue;
            }
            for (j, q) in self.procs.iter().enumerate() {
                if j == i || p.unit.mask & (1u64 << j) == 0 {
                    continue;
                }
                let suppressed = self
                    .faults
                    .iter()
                    .any(|f| f.victim() == j && f.suppresses_deterministic(self.cycle));
                if suppressed || !q.unit.ready_line() || q.unit.tag != p.unit.tag {
                    return true;
                }
            }
        }
        false
    }

    fn step_proc(&mut self, i: usize, cycle: u64) -> Result<(), SimError> {
        if self.procs[i].halted {
            return Ok(());
        }
        if self.cfg.pipelined {
            self.procs[i].retire(cycle);
        } else if self.procs[i].busy_until > cycle {
            self.procs[i].stats.busy_cycles += 1;
            return Ok(());
        }

        // Deliver a pending interrupt (one at a time; never nested).
        if !self.procs[i].in_handler() {
            if let Some(idx) = self
                .interrupts
                .iter()
                .position(|&(at, proc, _)| proc == i && at <= cycle)
            {
                let (_, _, handler) = self.interrupts.swap_remove(idx);
                let return_pc = self.procs[i].pc;
                self.procs[i]
                    .frames
                    .push(crate::processor::Frame::Handler { return_pc });
                self.procs[i].handler_depth += 1;
                self.procs[i].pc = handler;
                self.trace.record(cycle, i, EventKind::Interrupt);
            }
        }

        let pc = self.procs[i].pc;
        let stream = &self.program.streams()[i];
        if pc >= stream.len() {
            self.procs[i].halted = true;
            self.procs[i].unit.state = BarrierState::NonBarrier;
            self.trace.record(cycle, i, EventKind::Halt);
            return Ok(());
        }
        let op = stream.ops()[pc];

        // Region transitions at issue time. Suspended while inside an
        // interrupt/trap handler: the handler's instructions execute with
        // the barrier unit frozen, so a stalled processor can service an
        // interrupt and resume its stall afterwards (our resolution of the
        // paper's Sec. 9 open question).
        match (
            op.barrier && !self.procs[i].in_handler(),
            if self.procs[i].in_handler() {
                BarrierState::NonBarrier // disables the transition arms below
            } else {
                self.procs[i].unit.state
            },
        ) {
            (true, BarrierState::NonBarrier) => {
                self.procs[i].unit.state = BarrierState::ReadyUnsynced;
                self.procs[i].stats.barrier_entries += 1;
                self.procs[i].region_progress = 0;
                self.procs[i].region_entered_at = Some(cycle);
                self.trace.record(cycle, i, EventKind::EnterBarrier);
            }
            (false, BarrierState::ReadyUnsynced) => {
                // Reached the barrier-region exit before synchronization:
                // stall (state iv).
                self.procs[i].unit.state = BarrierState::Stalled;
                self.procs[i].stats.stall_cycles += 1;
                self.procs[i].stats.stall_events += 1;
                self.procs[i].stall_started = Some(cycle);
                self.trace.record(cycle, i, EventKind::StallStart);
                return Ok(());
            }
            (false, BarrierState::Stalled) => {
                self.procs[i].stats.stall_cycles += 1;
                return Ok(());
            }
            (false, BarrierState::Synced) => {
                // Crossing the barrier: first non-barrier instruction after
                // synchronization (state iii → i).
                self.procs[i].unit.state = BarrierState::NonBarrier;
                self.trace.record(cycle, i, EventKind::Cross);
            }
            _ => {}
        }

        // Execute.
        let latency = self.execute(i, op.instr, cycle)?;
        self.procs[i].stats.instructions += 1;
        if op.barrier && !self.procs[i].in_handler() {
            self.procs[i].region_progress += 1;
        }
        if self.cfg.pipelined {
            if !op.barrier && latency > 1 {
                self.procs[i].outstanding_plain.push(cycle + latency);
            }
        } else {
            self.procs[i].busy_until = cycle + latency;
        }
        Ok(())
    }

    /// Executes one instruction functionally, returning its latency.
    fn execute(&mut self, i: usize, instr: Instr, cycle: u64) -> Result<u64, SimError> {
        let mem_err = |source: OutOfBounds| SimError::Memory {
            proc: i,
            cycle,
            source,
        };
        let mut next_pc = self.procs[i].pc + 1;
        let latency = match instr {
            Instr::Li { rd, imm } => {
                self.procs[i].set_reg(rd, imm);
                1
            }
            Instr::Mov { rd, rs } => {
                let v = self.procs[i].reg(rs);
                self.procs[i].set_reg(rd, v);
                1
            }
            Instr::Add { rd, rs1, rs2 } => {
                let v = self.procs[i].reg(rs1).wrapping_add(self.procs[i].reg(rs2));
                self.procs[i].set_reg(rd, v);
                1
            }
            Instr::Sub { rd, rs1, rs2 } => {
                let v = self.procs[i].reg(rs1).wrapping_sub(self.procs[i].reg(rs2));
                self.procs[i].set_reg(rd, v);
                1
            }
            Instr::Mul { rd, rs1, rs2 } => {
                let v = self.procs[i].reg(rs1).wrapping_mul(self.procs[i].reg(rs2));
                self.procs[i].set_reg(rd, v);
                self.cfg.mul_latency
            }
            Instr::Addi { rd, rs, imm } => {
                let v = self.procs[i].reg(rs).wrapping_add(imm);
                self.procs[i].set_reg(rd, v);
                1
            }
            Instr::Muli { rd, rs, imm } => {
                let v = self.procs[i].reg(rs).wrapping_mul(imm);
                self.procs[i].set_reg(rd, v);
                self.cfg.mul_latency
            }
            Instr::Divi { rd, rs, imm } => {
                // Division by zero is defined to produce 0 rather than
                // trapping (the simulated machine has no trap model).
                let v = if imm == 0 {
                    0
                } else {
                    self.procs[i].reg(rs).wrapping_div(imm)
                };
                self.procs[i].set_reg(rd, v);
                self.cfg.mul_latency
            }
            Instr::Load { rd, rs, offset } => {
                let addr = self.procs[i].reg(rs).wrapping_add(offset);
                let (v, lat) = self.memory.read(i, addr, cycle).map_err(mem_err)?;
                self.procs[i].set_reg(rd, v);
                lat
            }
            Instr::Store { rs, rb, offset } => {
                let addr = self.procs[i].reg(rb).wrapping_add(offset);
                let v = self.procs[i].reg(rs);
                self.memory.write(i, addr, v, cycle).map_err(mem_err)?
            }
            Instr::FetchAdd {
                rd,
                rb,
                offset,
                imm,
            } => {
                let addr = self.procs[i].reg(rb).wrapping_add(offset);
                let (old, lat) = self
                    .memory
                    .fetch_add(i, addr, imm, cycle)
                    .map_err(mem_err)?;
                self.procs[i].set_reg(rd, old);
                lat
            }
            Instr::Jump { target } => {
                next_pc = target;
                1
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.procs[i].reg(rs1), self.procs[i].reg(rs2)) {
                    next_pc = target;
                }
                1
            }
            Instr::SetMask { mask } => {
                self.procs[i].unit.mask = mask;
                1
            }
            Instr::SetTag { tag } => {
                let unit = &mut self.procs[i].unit;
                // Changing the tag while inside a barrier region begins a
                // new logical barrier: the state machine re-arms so the
                // processor must synchronize again under the new identity.
                // This implements the paper's observation that the Fig. 2
                // problem "will not arise in an implementation which
                // explicitly specifies unique identifiers for barriers in
                // the code" (Sec. 3).
                let rearmed = tag != unit.tag
                    && matches!(
                        unit.state,
                        BarrierState::Synced | BarrierState::ReadyUnsynced
                    );
                if rearmed {
                    unit.state = BarrierState::ReadyUnsynced;
                }
                unit.tag = tag;
                if rearmed {
                    // A new logical barrier starts here for spread purposes.
                    self.procs[i].region_entered_at = Some(cycle);
                }
                1
            }
            Instr::Nop => 1,
            Instr::Call { target } => {
                if self.procs[i].frames.len() >= crate::processor::MAX_CALL_DEPTH {
                    return Err(SimError::CallDepthExceeded { proc: i, cycle });
                }
                let return_pc = self.procs[i].pc + 1;
                self.procs[i]
                    .frames
                    .push(crate::processor::Frame::Call { return_pc });
                next_pc = target;
                1
            }
            Instr::Ret => match self.procs[i].frames.pop() {
                Some(crate::processor::Frame::Call { return_pc }) => {
                    next_pc = return_pc;
                    1
                }
                Some(crate::processor::Frame::Handler { return_pc }) => {
                    self.procs[i].handler_depth -= 1;
                    next_pc = return_pc;
                    1
                }
                None => return Err(SimError::ReturnWithoutFrame { proc: i, cycle }),
            },
            Instr::Trap { cause } => {
                let handler = self.trap_handlers[i].ok_or(SimError::UnhandledTrap {
                    proc: i,
                    cycle,
                    cause,
                })?;
                if self.procs[i].frames.len() >= crate::processor::MAX_CALL_DEPTH {
                    return Err(SimError::CallDepthExceeded { proc: i, cycle });
                }
                self.procs[i].set_reg(31, i64::from(cause));
                let return_pc = self.procs[i].pc + 1;
                self.procs[i]
                    .frames
                    .push(crate::processor::Frame::Handler { return_pc });
                self.procs[i].handler_depth += 1;
                self.trace.record(cycle, i, EventKind::Trap);
                next_pc = handler;
                1
            }
            Instr::Halt => {
                self.procs[i].halted = true;
                self.procs[i].unit.state = BarrierState::NonBarrier;
                self.trace.record(cycle, i, EventKind::Halt);
                1
            }
        };
        self.procs[i].pc = next_pc;
        Ok(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ReadyFault;
    use crate::isa::{Cond, Instr, Op};
    use crate::program::{Stream, StreamBuilder};

    fn quiet_memory() -> MemoryConfig {
        MemoryConfig {
            banks: 8,
            bank_occupancy: 1,
            hit_latency: 1,
            miss_penalty: 0,
            ..MemoryConfig::default()
        }
    }

    fn config() -> MachineConfig {
        MachineConfig {
            memory: quiet_memory(),
            ..MachineConfig::default()
        }
    }

    fn single(stream: Stream) -> Machine {
        Machine::new(Program::new(vec![stream]), config()).unwrap()
    }

    #[test]
    fn arithmetic_executes() {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 6 });
        b.plain(Instr::Li { rd: 2, imm: 7 });
        b.plain(Instr::Mul {
            rd: 3,
            rs1: 1,
            rs2: 2,
        });
        b.plain(Instr::Addi {
            rd: 3,
            rs: 3,
            imm: -2,
        });
        b.plain(Instr::Halt);
        let mut m = single(b.finish().unwrap());
        let out = m.run(1000).unwrap();
        assert!(out.is_halted());
        assert_eq!(m.procs()[0].reg(3), 40);
    }

    #[test]
    fn loop_counts_to_ten() {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 0 });
        b.plain(Instr::Li { rd: 2, imm: 10 });
        b.label("loop");
        b.plain(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b.plain_branch(Cond::Lt, 1, 2, "loop");
        b.plain(Instr::Halt);
        let mut m = single(b.finish().unwrap());
        assert!(m.run(1000).unwrap().is_halted());
        assert_eq!(m.procs()[0].reg(1), 10);
    }

    #[test]
    fn memory_round_trip_through_machine() {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 100 });
        b.plain(Instr::Li { rd: 2, imm: 55 });
        b.plain(Instr::Store {
            rs: 2,
            rb: 1,
            offset: 3,
        });
        b.plain(Instr::Load {
            rd: 3,
            rs: 1,
            offset: 3,
        });
        b.plain(Instr::Halt);
        let mut m = single(b.finish().unwrap());
        m.run(1000).unwrap();
        assert_eq!(m.procs()[0].reg(3), 55);
        assert_eq!(m.memory().peek(103), 55);
    }

    #[test]
    fn out_of_bounds_is_reported_with_context() {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Load {
            rd: 1,
            rs: 0,
            offset: -5,
        });
        let mut m = single(b.finish().unwrap());
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, SimError::Memory { proc: 0, .. }));
        assert!(err.to_string().contains("processor 0"));
    }

    /// Two processors, each: non-barrier work of different lengths, then a
    /// barrier region, then a store that must not execute until both
    /// finished their pre-barrier work (Fig. 1 semantics).
    #[test]
    fn barrier_orders_cross_processor_phases() {
        let mk = |work: i64| {
            let mut b = StreamBuilder::new();
            // UNSHADED1: busy loop of `work` iterations.
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: work });
            b.label("w");
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, "w");
            // Mark the end of phase 1 in memory.
            b.plain(Instr::Li { rd: 3, imm: 1 });
            b.plain(Instr::Store {
                rs: 3,
                rb: 0,
                offset: 10, // both write their own cell via offset+id trick below
            });
            // Barrier region (a couple of overlap instructions).
            b.fuzzy(Instr::Nop);
            b.fuzzy(Instr::Nop);
            // UNSHADED2: read the *other* processor's flag.
            b.plain(Instr::Load {
                rd: 4,
                rs: 0,
                offset: 11,
            });
            b.plain(Instr::Halt);
            b
        };
        // Proc 0 writes word 10 and reads word 11; proc 1 vice versa.
        let b0 = mk(5);
        let b1 = mk(200);
        // Patch offsets by rebuilding proc 1's store/load.
        let s0 = b0.finish().unwrap();
        let ops1: Vec<Op> = b1
            .finish()
            .unwrap()
            .ops()
            .iter()
            .map(|op| {
                let instr = match op.instr {
                    Instr::Store { rs, rb, offset: 10 } => Instr::Store { rs, rb, offset: 11 },
                    Instr::Load { rd, rs, offset: 11 } => Instr::Load { rd, rs, offset: 10 },
                    other => other,
                };
                Op {
                    instr,
                    barrier: op.barrier,
                }
            })
            .collect();
        let s1 = Stream::from_ops(ops1);
        let mut m = Machine::new(Program::new(vec![s0, s1]), config()).unwrap();
        let out = m.run(100_000).unwrap();
        assert!(out.is_halted(), "outcome: {out:?}");
        // Each processor must have seen the other's flag — impossible
        // without the barrier ordering, since proc 0 finishes its work ~40x
        // earlier.
        assert_eq!(m.procs()[0].reg(4), 1);
        assert_eq!(m.procs()[1].reg(4), 1);
        // The fast processor stalled; the slow one (last arriver) did not.
        assert!(m.proc_stats(0).stall_cycles > 0);
        assert_eq!(m.proc_stats(1).stall_cycles, 0);
        assert_eq!(m.stats().sync_events, 1);
    }

    #[test]
    fn fuzzy_region_absorbs_skew() {
        // Same structure, but the fast processor's barrier region is long
        // enough to cover the slow processor's extra work: nobody stalls.
        let mk = |work: i64, region: i64| {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: work });
            b.label("w");
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, "w");
            // Barrier region: busy loop of `region` iterations.
            b.fuzzy(Instr::Li { rd: 5, imm: 0 });
            b.fuzzy(Instr::Li { rd: 6, imm: region });
            b.label("r");
            b.fuzzy(Instr::Addi {
                rd: 5,
                rs: 5,
                imm: 1,
            });
            b.fuzzy_branch(Cond::Lt, 5, 6, "r");
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        // Proc 0: 10 work + huge region. Proc 1: 300 work + tiny region.
        let p = Program::new(vec![mk(10, 400), mk(300, 2)]);
        let mut m = Machine::new(p, config()).unwrap();
        assert!(m.run(100_000).unwrap().is_halted());
        assert_eq!(m.proc_stats(0).stall_cycles, 0, "region must absorb skew");
        assert_eq!(m.proc_stats(1).stall_cycles, 0);
        assert_eq!(m.stats().sync_events, 1);
        // No stalls → an empty stall histogram; one sync event → one
        // spread sample, covering the 290-cycle arrival skew.
        let stats = m.stats();
        assert!(stats.sync.stall_hist.is_empty());
        assert_eq!(stats.sync.spread_events, 1);
        assert!(stats.sync.spread_max_cycles > 200, "{stats:?}");
    }

    #[test]
    fn telemetry_histogram_matches_stall_accounting() {
        // Proc 0: 10 work + 2-instruction region (stalls ~290 cycles).
        // Proc 1: 300 work + 2-instruction region (last arriver, no stall).
        let mk = |work: i64| {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: work });
            b.label("w");
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, "w");
            b.fuzzy(Instr::Nop);
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(10), mk(300)]);
        let mut m = Machine::new(p, config()).unwrap();
        assert!(m.run(100_000).unwrap().is_halted());
        let stats = m.stats();
        // One stall episode, recorded once in the histogram, with a
        // duration equal to the stalling processor's stall-cycle count.
        assert_eq!(stats.procs[0].stall_events, 1);
        assert_eq!(stats.procs[1].stall_events, 0);
        assert_eq!(stats.sync.stall_hist.total(), 1);
        let stall = stats.procs[0].stall_cycles;
        assert!(stall > 0);
        let bucket = crate::stats::CycleHistogram::bucket_index(stall);
        assert_eq!(
            stats.sync.stall_hist.buckets[bucket], 1,
            "stall of {stall} cycles must land in bucket {bucket}: {stats:?}"
        );
        // One sync event → one spread sample; the two region entries are
        // ~290 cycles apart.
        assert_eq!(stats.sync.spread_events, stats.sync_events);
        assert!(stats.sync.spread_last_cycles > 200, "{stats:?}");
    }

    #[test]
    fn invalid_branch_program_is_rejected_by_default() {
        let mut b = StreamBuilder::new();
        b.fuzzy(Instr::Nop);
        b.jump("b2", true);
        b.plain(Instr::Nop);
        b.label("b2");
        b.fuzzy(Instr::Nop);
        b.plain(Instr::Halt);
        let p = Program::new(vec![b.finish().unwrap()]);
        assert!(matches!(
            Machine::new(p, config()),
            Err(SimError::InvalidProgram(_))
        ));
    }

    #[test]
    fn mismatched_tags_deadlock_and_are_detected() {
        // Both processors reach barrier regions but with different tags:
        // the sync condition can never fire.
        let mk = |tag: u16| {
            let mut b = StreamBuilder::new();
            b.plain(Instr::SetTag { tag });
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(1), mk(2)]);
        let mut m = Machine::new(p, config()).unwrap();
        let out = m.run(10_000).unwrap();
        assert!(out.is_deadlock(), "outcome: {out:?}");
    }

    #[test]
    fn halted_partner_deadlocks_waiter() {
        // Proc 1 halts without entering any barrier; proc 0 waits forever.
        let mut b0 = StreamBuilder::new();
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt);
        let mut b1 = StreamBuilder::new();
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut m = Machine::new(p, config()).unwrap();
        assert!(m.run(10_000).unwrap().is_deadlock());
    }

    #[test]
    fn repeated_synchronization_in_a_loop() {
        // Two procs, 50 iterations, one barrier per iteration.
        let mk = || {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: 50 });
            b.label("loop");
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            // Barrier region at end of each iteration, including the
            // back-edge branch (regions may span the back edge, Sec. 3).
            b.fuzzy(Instr::Nop);
            b.fuzzy_branch(Cond::Lt, 1, 2, "loop");
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(), mk()]);
        let mut m = Machine::new(p, config()).unwrap();
        assert!(m.run(100_000).unwrap().is_halted());
        assert_eq!(m.stats().sync_events, 50);
        assert_eq!(m.proc_stats(0).syncs, 50);
    }

    #[test]
    fn trace_records_barrier_lifecycle() {
        let mut cfg = config();
        cfg.trace = true;
        let mk = || {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Nop);
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let mut m = Machine::new(Program::new(vec![mk(), mk()]), cfg).unwrap();
        m.run(1000).unwrap();
        use crate::trace::EventKind as K;
        assert_eq!(m.trace().of_kind(K::EnterBarrier).count(), 2);
        assert_eq!(m.trace().of_kind(K::Sync).count(), 2);
        assert_eq!(m.trace().of_kind(K::Cross).count(), 2);
        assert_eq!(m.trace().of_kind(K::Halt).count(), 2);
    }

    #[test]
    fn tag_change_inside_barrier_region_rearms_the_barrier() {
        // P0 branches from barrier 1 directly into barrier 2's code
        // (contiguous barrier bits), but barrier 2 announces a new tag:
        // the tag change re-arms the state machine, so P0 synchronizes
        // twice like its partner and the run completes (Sec. 3's
        // "unique identifiers" remedy for Fig. 2).
        let mut b0 = StreamBuilder::new();
        b0.plain(Instr::SetTag { tag: 1 });
        b0.fuzzy(Instr::Nop); // barrier 1
        b0.jump("skip", true);
        b0.plain(Instr::Nop); // skipped non-barrier region
        b0.label("skip");
        b0.fuzzy(Instr::SetTag { tag: 2 }); // barrier 2's identity
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt);
        let mut b1 = StreamBuilder::new();
        b1.plain(Instr::SetTag { tag: 1 });
        b1.fuzzy(Instr::Nop); // barrier 1
        b1.plain(Instr::Nop);
        b1.plain(Instr::SetTag { tag: 2 });
        b1.fuzzy(Instr::Nop); // barrier 2
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut cfg = config();
        cfg.validate = false; // contains the Fig. 2 branch shape
        let mut m = Machine::new(p, cfg).unwrap();
        let out = m.run(100_000).unwrap();
        assert!(out.is_halted(), "outcome {out:?}");
        assert_eq!(m.proc_stats(0).syncs, 2);
        assert_eq!(m.proc_stats(1).syncs, 2);
    }

    #[test]
    fn procedure_call_and_return() {
        // main: r1 = 5; call double; halt.  double: r1 = r1 * 2; ret.
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 5 });
        b.call("double", false);
        b.plain(Instr::Halt);
        b.label("double");
        b.plain(Instr::Muli {
            rd: 1,
            rs: 1,
            imm: 2,
        });
        b.plain(Instr::Ret);
        let mut m = single(b.finish().unwrap());
        assert!(m.run(1000).unwrap().is_halted());
        assert_eq!(m.procs()[0].reg(1), 10);
    }

    #[test]
    fn recursive_calls_compute_factorial() {
        // fact(n): if n <= 1 return 1 in r2 else r2 = n * fact(n-1).
        // Iterative-recursive via explicit stack of calls on r1.
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 6 }); // n
        b.plain(Instr::Li { rd: 2, imm: 1 }); // acc
        b.call("fact", false);
        b.plain(Instr::Halt);
        b.label("fact");
        b.plain(Instr::Li { rd: 3, imm: 1 });
        b.plain_branch(Cond::Le, 1, 3, "base");
        b.plain(Instr::Mul {
            rd: 2,
            rs1: 2,
            rs2: 1,
        });
        b.plain(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: -1,
        });
        b.call("fact", false);
        b.label("base");
        b.plain(Instr::Ret);
        let mut m = single(b.finish().unwrap());
        assert!(m.run(10_000).unwrap().is_halted());
        assert_eq!(m.procs()[0].reg(2), 720);
    }

    #[test]
    fn call_inside_barrier_region_extends_the_region() {
        // Both procs enter a barrier region and CALL a procedure whose
        // body is barrier-region code (Sec. 9's "parallel procedure
        // calls"); synchronization happens while inside the callee, and
        // both return and cross normally.
        let mk = |work: i64| {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: work });
            b.label("w");
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, "w");
            b.fuzzy(Instr::Nop); // enter barrier region
            b.call("helper", true); // call from the region
            b.plain(Instr::Halt); // crossing requires sync
            b.label("helper");
            b.fuzzy(Instr::Addi {
                rd: 5,
                rs: 5,
                imm: 1,
            }); // region code
            b.fuzzy(Instr::Ret);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(5), mk(60)]);
        let mut m = Machine::new(p, config()).unwrap();
        let out = m.run(100_000).unwrap();
        assert!(out.is_halted(), "{out:?}");
        assert_eq!(m.stats().sync_events, 1);
        assert_eq!(m.procs()[0].reg(5), 1, "helper body executed once");
    }

    #[test]
    fn ret_without_frame_is_an_error() {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Ret);
        let mut m = single(b.finish().unwrap());
        assert!(matches!(
            m.run(100).unwrap_err(),
            SimError::ReturnWithoutFrame { proc: 0, .. }
        ));
    }

    #[test]
    fn runaway_recursion_overflows_call_stack() {
        let mut b = StreamBuilder::new();
        b.label("f");
        b.call("f", false);
        let mut m = single(b.finish().unwrap());
        assert!(matches!(
            m.run(100_000).unwrap_err(),
            SimError::CallDepthExceeded { proc: 0, .. }
        ));
    }

    #[test]
    fn trap_without_handler_faults() {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Trap { cause: 7 });
        let mut m = single(b.finish().unwrap());
        assert!(matches!(
            m.run(100).unwrap_err(),
            SimError::UnhandledTrap { cause: 7, .. }
        ));
    }

    #[test]
    fn trap_inside_barrier_region_freezes_barrier_state() {
        // Proc 0 traps from inside its barrier region; the handler (plain
        // code) runs with the unit frozen, so synchronization with proc 1
        // still completes exactly once.
        let mut b0 = StreamBuilder::new();
        b0.plain(Instr::Nop);
        b0.fuzzy(Instr::Trap { cause: 3 }); // in barrier region
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt);
        b0.label("handler");
        b0.plain(Instr::Mov { rd: 7, rs: 31 }); // read cause (plain code!)
        b0.plain(Instr::Ret);
        let handler_pc = 4;
        let mut b1 = StreamBuilder::new();
        b1.plain(Instr::Nop);
        b1.fuzzy(Instr::Nop);
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut m = Machine::new(p, config()).unwrap();
        m.set_trap_handler(0, handler_pc);
        let out = m.run(10_000).unwrap();
        assert!(out.is_halted(), "{out:?}");
        assert_eq!(m.procs()[0].reg(7), 3, "handler saw the trap cause");
        assert_eq!(m.proc_stats(0).syncs, 1);
        assert_eq!(m.proc_stats(1).syncs, 1);
    }

    #[test]
    fn interrupt_during_stall_runs_handler_and_resumes_stall() {
        // Proc 0 stalls at its barrier exit; an interrupt arrives, the
        // handler runs (incrementing r6), and the stall resumes until
        // proc 1 finally arrives.
        let mut b0 = StreamBuilder::new();
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt); // will stall here
        b0.label("handler");
        b0.plain(Instr::Addi {
            rd: 6,
            rs: 6,
            imm: 1,
        });
        b0.plain(Instr::Ret);
        let handler_pc = 2;
        let mut b1 = StreamBuilder::new();
        // Proc 1: long work before its barrier.
        b1.plain(Instr::Li { rd: 1, imm: 0 });
        b1.plain(Instr::Li { rd: 2, imm: 100 });
        b1.label("w");
        b1.plain(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b1.plain_branch(Cond::Lt, 1, 2, "w");
        b1.fuzzy(Instr::Nop);
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut m = Machine::new(p, config()).unwrap();
        m.schedule_interrupt(0, 50, handler_pc);
        let out = m.run(100_000).unwrap();
        assert!(out.is_halted(), "{out:?}");
        assert_eq!(m.procs()[0].reg(6), 1, "handler ran exactly once");
        assert_eq!(m.proc_stats(0).syncs, 1);
        use crate::trace::EventKind as K;
        let _ = K::Interrupt; // (trace disabled in this config)
    }

    #[test]
    fn pending_interrupt_defers_deadlock_detection() {
        // Proc 0 stalls forever (partner halts immediately) but an
        // interrupt at cycle 30 runs a handler that HALTS the processor,
        // resolving the situation; deadlock must not fire before cycle 30.
        let mut b0 = StreamBuilder::new();
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Nop);
        b0.plain(Instr::Halt);
        b0.label("handler");
        b0.plain(Instr::Halt);
        let handler_pc = 3;
        let mut b1 = StreamBuilder::new();
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut m = Machine::new(p, config()).unwrap();
        m.schedule_interrupt(0, 30, handler_pc);
        let out = m.run(10_000).unwrap();
        assert!(
            out.is_halted(),
            "interrupt should resolve the stall: {out:?}"
        );
        assert!(out.cycles() >= 30);
    }

    #[test]
    fn sync_positions_show_the_fuzziness() {
        // Proc 0 reaches its (long) barrier region early and is deep
        // inside it when the late proc 1 enters; proc 1 is at its start.
        let mk = |work: i64, region: i64| {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: work });
            b.label("w");
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, "w");
            for _ in 0..region {
                b.fuzzy(Instr::Nop);
            }
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(2, 200), mk(50, 5)]);
        let mut m = Machine::new(p, config()).unwrap();
        assert!(m.run(100_000).unwrap().is_halted());
        let pos = m.sync_positions().to_vec();
        assert_eq!(pos.len(), 2);
        let (deep, shallow) = (pos.iter().max().unwrap(), pos.iter().min().unwrap());
        assert!(
            *deep > 50 && *shallow <= 1,
            "early proc should be deep in its region, late proc at the              start: {pos:?}"
        );
    }

    #[test]
    fn pipelined_readiness_waits_for_in_flight_non_barrier_ops() {
        // Sec. 2: "exiting this non-barrier region is not same as entering
        // the barrier region for a pipelined machine". Proc 0 issues a
        // long-latency load (plain) and immediately enters its barrier
        // region; proc 1 is ready from cycle 1. Synchronization must be
        // delayed until proc 0's load completes, even though proc 0
        // *entered* its region long before.
        let mut cfg = config();
        cfg.pipelined = true;
        cfg.trace = true;
        cfg.memory.miss_penalty = 40;
        cfg.memory.cache = Some(crate::memory::CacheConfig::default());
        let mut b0 = StreamBuilder::new();
        b0.plain(Instr::Load {
            rd: 3,
            rs: 0,
            offset: 9,
        }); // cold miss: ~40 cycles in flight
        b0.fuzzy(Instr::Nop); // enters the barrier region right away
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt);
        let mut b1 = StreamBuilder::new();
        b1.fuzzy(Instr::Nop);
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut m = Machine::new(p, cfg).unwrap();
        assert!(m.run(10_000).unwrap().is_halted());
        use crate::trace::EventKind as K;
        let enter0 = m
            .trace()
            .events()
            .iter()
            .find(|e| e.proc == 0 && e.kind == K::EnterBarrier)
            .unwrap()
            .cycle;
        let sync = m.trace().of_kind(K::Sync).next().unwrap().cycle;
        assert!(
            sync >= enter0 + 30,
            "sync at {sync} must wait for the in-flight load              (entered at {enter0}, load latency ~40)"
        );
    }

    #[test]
    fn serial_mode_readiness_is_at_entry() {
        // The same program in serial mode: the load completes before the
        // region is entered, so readiness and entry coincide.
        let mut cfg = config();
        cfg.trace = true;
        let mut b0 = StreamBuilder::new();
        b0.plain(Instr::Nop);
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt);
        let mut b1 = StreamBuilder::new();
        b1.fuzzy(Instr::Nop);
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let mut m = Machine::new(p, cfg).unwrap();
        assert!(m.run(10_000).unwrap().is_halted());
        use crate::trace::EventKind as K;
        let enter0 = m
            .trace()
            .events()
            .iter()
            .find(|e| e.proc == 0 && e.kind == K::EnterBarrier)
            .unwrap()
            .cycle;
        let sync = m.trace().of_kind(K::Sync).next().unwrap().cycle;
        assert_eq!(
            sync, enter0,
            "serial: ready the cycle the region is entered"
        );
    }

    #[test]
    fn pipelined_mode_reaches_same_results() {
        let mut cfg = config();
        cfg.pipelined = true;
        let mk = || {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Li { rd: 1, imm: 21 });
            b.plain(Instr::Muli {
                rd: 1,
                rs: 1,
                imm: 2,
            });
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Store {
                rs: 1,
                rb: 0,
                offset: 0,
            });
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let mut m = Machine::new(Program::new(vec![mk()]), cfg).unwrap();
        assert!(m.run(1000).unwrap().is_halted());
        assert_eq!(m.memory().peek(0), 42);
    }

    #[test]
    fn watchdog_evicts_a_stalled_victim_and_survivors_recover() {
        // Three processors, one barrier each. Proc 2's ready broadcast is
        // severed before it ever reaches the network; every unit carries an
        // armed watchdog. Procs 0 and 1 must cut the victim out of the
        // masks, synchronize with each other and halt, while the victim's
        // own watchdog keeps re-arming (its partners look healthy from its
        // side) and it idles forever — so the run ends in deadlock with the
        // survivors halted.
        let mk = || {
            let mut b = StreamBuilder::new();
            b.plain(Instr::Nop);
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Li { rd: 9, imm: 1 });
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(), mk(), mk()]);
        let units = vec![
            BarrierUnit::new(0b110, 1).with_watchdog(8),
            BarrierUnit::new(0b101, 1).with_watchdog(8),
            BarrierUnit::new(0b011, 1).with_watchdog(8),
        ];
        let mut m = Machine::with_units(p, config(), units).unwrap();
        m.inject_ready_fault(FaultPlan {
            victim: 2,
            onset: 0,
            fault: ReadyFault::Stall,
        });
        let out = m.run(10_000).unwrap();
        assert!(out.is_deadlock(), "victim idles forever: {out:?}");
        assert!(m.procs()[0].halted && m.procs()[1].halted);
        assert!(!m.procs()[2].halted);
        assert_eq!(m.evictions().len(), 1, "one eviction, deduplicated");
        let ev = m.evictions()[0];
        assert_eq!(ev.victim, 2);
        assert!(ev.watchdog < 2);
        // Survivors synchronize on the broadcast evaluation right after
        // the mask update.
        assert_eq!(ev.recovery_latency(), Some(1));
        assert_eq!(m.stats().sync_events, 1);
        assert_eq!(m.proc_stats(0).syncs, 1);
        assert_eq!(m.proc_stats(1).syncs, 1);
        assert_eq!(m.proc_stats(2).syncs, 0);
        assert_eq!(m.procs()[0].reg(9), 1, "survivor ran its post-barrier code");
    }

    #[test]
    fn transient_delay_heals_without_eviction() {
        // Proc 1's broadcast is suppressed for 40 cycles — well past both
        // arrivals — and no watchdog is armed anywhere. The machine must
        // not report deadlock while the fault can still heal; once it
        // does, the barrier fires normally.
        let mk = || {
            let mut b = StreamBuilder::new();
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(), mk()]);
        let mut m = Machine::new(p, config()).unwrap();
        m.inject_ready_fault(FaultPlan {
            victim: 1,
            onset: 0,
            fault: ReadyFault::Delay { cycles: 40 },
        });
        let out = m.run(10_000).unwrap();
        assert!(out.is_halted(), "{out:?}");
        assert!(out.cycles() >= 40, "sync had to wait out the glitch");
        assert!(m.evictions().is_empty());
        assert_eq!(m.stats().sync_events, 1);
    }

    #[test]
    fn generous_watchdog_tolerates_a_transient_delay() {
        // Same transient glitch, but now watchdogs ARE armed — with a
        // budget larger than the outage. The glitch must heal before any
        // eviction fires.
        let mk = || {
            let mut b = StreamBuilder::new();
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(), mk()]);
        let units = vec![
            BarrierUnit::new(0b10, 1).with_watchdog(100),
            BarrierUnit::new(0b01, 1).with_watchdog(100),
        ];
        let mut m = Machine::with_units(p, config(), units).unwrap();
        m.inject_ready_fault(FaultPlan {
            victim: 1,
            onset: 0,
            fault: ReadyFault::Delay { cycles: 40 },
        });
        let out = m.run(10_000).unwrap();
        assert!(out.is_halted(), "{out:?}");
        assert!(m.evictions().is_empty(), "budget outlasted the glitch");
        assert_eq!(m.stats().sync_events, 1);
    }

    #[test]
    fn eviction_raises_an_interrupt_on_the_watchdog_processor() {
        // Proc 0's trap handler increments r6. When its watchdog evicts
        // the dead proc 1, the eviction interrupt must run that handler
        // exactly once; proc 0 (mask now empty) then synchronizes alone
        // and halts.
        let mut b0 = StreamBuilder::new();
        b0.fuzzy(Instr::Nop);
        b0.plain(Instr::Halt);
        b0.label("handler");
        b0.plain(Instr::Addi {
            rd: 6,
            rs: 6,
            imm: 1,
        });
        b0.plain(Instr::Ret);
        let handler_pc = 2;
        let mut b1 = StreamBuilder::new();
        b1.fuzzy(Instr::Nop);
        b1.plain(Instr::Halt);
        let p = Program::new(vec![b0.finish().unwrap(), b1.finish().unwrap()]);
        let units = vec![
            BarrierUnit::new(0b10, 1).with_watchdog(5),
            BarrierUnit::new(0b01, 1),
        ];
        let mut m = Machine::with_units(p, config(), units).unwrap();
        m.set_trap_handler(0, handler_pc);
        m.inject_ready_fault(FaultPlan {
            victim: 1,
            onset: 0,
            fault: ReadyFault::Stall,
        });
        let out = m.run(10_000).unwrap();
        assert!(out.is_deadlock(), "the dead victim never halts: {out:?}");
        assert!(m.procs()[0].halted);
        assert_eq!(m.procs()[0].reg(6), 1, "eviction handler ran once");
        assert_eq!(m.evictions().len(), 1);
        assert_eq!(m.evictions()[0].victim, 1);
        assert!(m.evictions()[0].recovery_latency().is_some());
    }

    #[test]
    fn stutter_starves_partners_until_the_watchdog_fires() {
        // A heavy stutter (p = 0.95) keeps dropping proc 1's broadcast;
        // sooner or later the partners' ready cycles never line up long
        // enough and proc 0's watchdog evicts it. Deterministic per seed.
        let mk = || {
            let mut b = StreamBuilder::new();
            b.fuzzy(Instr::Nop);
            b.plain(Instr::Halt);
            b.finish().unwrap()
        };
        let p = Program::new(vec![mk(), mk()]);
        let units = vec![
            BarrierUnit::new(0b10, 1).with_watchdog(4),
            BarrierUnit::new(0b01, 1),
        ];
        let mut m = Machine::with_units(p, config(), units).unwrap();
        m.inject_ready_fault(FaultPlan {
            victim: 1,
            onset: 0,
            fault: ReadyFault::Stutter { p: 0.95, seed: 7 },
        });
        let out = m.run(10_000).unwrap();
        // Either the stutter let one evaluation through before the budget
        // ran out (sync) or the watchdog fired (eviction) — with p = 0.95
        // and a budget of 4 the eviction path is what the seed produces,
        // and determinism means it stays that way.
        assert_eq!(m.evictions().len(), 1, "{out:?}");
        assert_eq!(m.evictions()[0].victim, 1);
    }
}
