//! Instruction streams, programs and the static validator.
//!
//! "Instruction streams are viewed as consisting of barrier regions and
//! non-barrier regions" (Sec. 2). A [`Stream`] is one processor's
//! instruction sequence; a [`Program`] is the set of streams loaded onto
//! the machine. The validator enforces the compiler obligations of Sec. 3:
//! branch destinations must be "either an instruction in the same barrier
//! region or an instruction in a non-barrier region" — never a *different*
//! barrier region (Fig. 2's invalid branch, which deadlocks the machine).

use crate::isa::{Instr, Op};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A static (layout-order) region of a stream: a maximal run of
/// instructions with the same barrier bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticRegion {
    /// Index of this region within the stream (0-based, layout order).
    pub index: usize,
    /// First instruction index of the region.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Whether this is a barrier region.
    pub barrier: bool,
}

impl StaticRegion {
    /// Number of instructions in the region.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the region is empty (never produced by [`regions_of`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Computes the static regions of an instruction sequence.
#[must_use]
pub fn regions_of(ops: &[Op]) -> Vec<StaticRegion> {
    let mut regions = Vec::new();
    let mut start = 0usize;
    for i in 1..=ops.len() {
        if i == ops.len() || ops[i].barrier != ops[start].barrier {
            regions.push(StaticRegion {
                index: regions.len(),
                start,
                end: i,
                barrier: ops[start].barrier,
            });
            start = i;
        }
    }
    regions
}

/// One processor's instruction stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stream {
    ops: Vec<Op>,
    labels: HashMap<String, usize>,
}

impl Stream {
    /// Creates an empty stream. Use [`StreamBuilder`] for label support.
    #[must_use]
    pub fn new() -> Self {
        Stream::default()
    }

    /// Creates a stream from finished ops (targets already resolved).
    #[must_use]
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Stream {
            ops,
            labels: HashMap::new(),
        }
    }

    /// The instruction sequence.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The instruction index of a label, if defined.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// The static regions of this stream.
    #[must_use]
    pub fn regions(&self) -> Vec<StaticRegion> {
        regions_of(&self.ops)
    }

    /// The region containing instruction `pc`, if in range.
    #[must_use]
    pub fn region_at(&self, pc: usize) -> Option<StaticRegion> {
        self.regions()
            .into_iter()
            .find(|r| r.start <= pc && pc < r.end)
    }

    /// Validates the stream per the Sec. 3 rules. See [`ValidationError`].
    ///
    /// # Errors
    ///
    /// Returns the first rule violation found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let regions = self.regions();
        let region_of = |pc: usize| regions.iter().find(|r| r.start <= pc && pc < r.end);
        for (pc, op) in self.ops.iter().enumerate() {
            // Call targets only need a bounds check: the callee's own
            // barrier-region bits govern the region rules (a procedure is
            // compiled for the region class of its call sites).
            if let Some(target) = op.instr.call_target() {
                if target >= self.ops.len() {
                    return Err(ValidationError::BranchOutOfRange { pc, target });
                }
            }
            if let Some(target) = op.instr.branch_target() {
                if target >= self.ops.len() {
                    return Err(ValidationError::BranchOutOfRange { pc, target });
                }
                let src = region_of(pc).expect("pc in range");
                let dst = region_of(target).expect("target in range");
                // "The compiler should not generate code where control can
                // be transferred directly from one barrier to another"
                // (Fig. 2). A *forward* branch from one barrier region into
                // a later one skips the intervening non-barrier region, so
                // the branching processor crosses two logical barriers with
                // a single synchronization while its partners synchronize
                // twice — deadlock. A *backward* barrier→barrier branch is
                // the paper's own loop back edge (Fig. 4: `if k<10M go to
                // L1` sits in the barrier region and targets barrier code):
                // dynamically the two static regions fuse into one region
                // that "extends across consecutive iterations", so it is
                // allowed. Mismatches the static check cannot see are
                // caught at run time by the machine's deadlock detector.
                if src.barrier && dst.barrier && src.index != dst.index && target > pc {
                    return Err(ValidationError::BarrierToBarrierBranch {
                        pc,
                        target,
                        from_region: src.index,
                        to_region: dst.index,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builds a [`Stream`] with labels and forward references.
///
/// # Examples
///
/// ```
/// use fuzzy_sim::program::StreamBuilder;
/// use fuzzy_sim::isa::{Cond, Instr};
///
/// let mut b = StreamBuilder::new();
/// b.plain(Instr::Li { rd: 1, imm: 0 });
/// b.label("loop");
/// b.plain(Instr::Addi { rd: 1, rs: 1, imm: 1 });
/// b.plain_branch(Cond::Lt, 1, 2, "loop");
/// b.plain(Instr::Halt);
/// let stream = b.finish()?;
/// assert_eq!(stream.len(), 4);
/// # Ok::<(), fuzzy_sim::program::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct StreamBuilder {
    ops: Vec<Op>,
    labels: HashMap<String, usize>,
    /// (op index, label) pairs to patch at finish time.
    fixups: Vec<(usize, String)>,
}

impl StreamBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        StreamBuilder::default()
    }

    /// Number of instructions appended so far (also the index the next
    /// instruction will get — handy for minting unique labels).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no instructions have been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.labels.insert(name.into(), self.ops.len());
        self
    }

    /// Appends a non-barrier-region instruction.
    pub fn plain(&mut self, instr: Instr) -> &mut Self {
        self.ops.push(Op::plain(instr));
        self
    }

    /// Appends a barrier-region instruction.
    pub fn fuzzy(&mut self, instr: Instr) -> &mut Self {
        self.ops.push(Op::fuzzy(instr));
        self
    }

    /// Appends an instruction with an explicit barrier bit.
    pub fn op(&mut self, instr: Instr, barrier: bool) -> &mut Self {
        self.ops.push(Op { instr, barrier });
        self
    }

    /// Appends a non-barrier conditional branch to `label`.
    pub fn plain_branch(
        &mut self,
        cond: crate::isa::Cond,
        rs1: crate::isa::Reg,
        rs2: crate::isa::Reg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.branch_with_bit(cond, rs1, rs2, label, false)
    }

    /// Appends a barrier-region conditional branch to `label`.
    pub fn fuzzy_branch(
        &mut self,
        cond: crate::isa::Cond,
        rs1: crate::isa::Reg,
        rs2: crate::isa::Reg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.branch_with_bit(cond, rs1, rs2, label, true)
    }

    fn branch_with_bit(
        &mut self,
        cond: crate::isa::Cond,
        rs1: crate::isa::Reg,
        rs2: crate::isa::Reg,
        label: impl Into<String>,
        barrier: bool,
    ) -> &mut Self {
        self.fixups.push((self.ops.len(), label.into()));
        self.ops.push(Op {
            instr: Instr::Branch {
                cond,
                rs1,
                rs2,
                target: usize::MAX,
            },
            barrier,
        });
        self
    }

    /// Appends a jump to `label` with the given barrier bit.
    pub fn jump(&mut self, label: impl Into<String>, barrier: bool) -> &mut Self {
        self.fixups.push((self.ops.len(), label.into()));
        self.ops.push(Op {
            instr: Instr::Jump { target: usize::MAX },
            barrier,
        });
        self
    }

    /// Appends a procedure call to `label` with the given barrier bit.
    pub fn call(&mut self, label: impl Into<String>, barrier: bool) -> &mut Self {
        self.fixups.push((self.ops.len(), label.into()));
        self.ops.push(Op {
            instr: Instr::Call { target: usize::MAX },
            barrier,
        });
        self
    }

    /// Resolves labels and produces the stream.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UndefinedLabel`] if a branch references an
    /// undefined label.
    pub fn finish(mut self) -> Result<Stream, BuildError> {
        for (index, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel {
                    label: label.clone(),
                })?;
            match &mut self.ops[*index].instr {
                Instr::Jump { target: t } => *t = target,
                Instr::Branch { target: t, .. } => *t = target,
                Instr::Call { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(Stream {
            ops: self.ops,
            labels: self.labels,
        })
    }
}

/// Error from [`StreamBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
        }
    }
}

impl Error for BuildError {}

/// A whole-machine program: one stream per processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    streams: Vec<Stream>,
}

impl Program {
    /// Creates a program from per-processor streams.
    #[must_use]
    pub fn new(streams: Vec<Stream>) -> Self {
        Program { streams }
    }

    /// The streams.
    #[must_use]
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// Number of processors the program targets.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.streams.len()
    }

    /// Validates every stream.
    ///
    /// # Errors
    ///
    /// Returns the first violation together with the offending stream.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (proc, stream) in self.streams.iter().enumerate() {
            stream
                .validate()
                .map_err(|error| ProgramError { proc, error })?;
        }
        Ok(())
    }
}

impl FromIterator<Stream> for Program {
    fn from_iter<I: IntoIterator<Item = Stream>>(iter: I) -> Self {
        Program {
            streams: iter.into_iter().collect(),
        }
    }
}

/// Static validation failures (Sec. 3 rules).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// A branch target is outside the stream.
    BranchOutOfRange {
        /// Instruction index of the branch.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A forward branch transfers control directly from one barrier region
    /// to a later one — Fig. 2's invalid branch, which "can result in
    /// improper synchronization and deadlocks".
    BarrierToBarrierBranch {
        /// Instruction index of the branch.
        pc: usize,
        /// The destination instruction index.
        target: usize,
        /// Static region index of the source.
        from_region: usize,
        /// Static region index of the destination.
        to_region: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BranchOutOfRange { pc, target } => {
                write!(
                    f,
                    "branch at {pc} targets out-of-range instruction {target}"
                )
            }
            ValidationError::BarrierToBarrierBranch {
                pc,
                target,
                from_region,
                to_region,
            } => write!(
                f,
                "invalid branch at {pc} → {target}: control transfers directly from \
                 barrier region {from_region} to barrier region {to_region}"
            ),
        }
    }
}

impl Error for ValidationError {}

/// A [`ValidationError`] tagged with the offending processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramError {
    /// Processor whose stream failed validation.
    pub proc: usize,
    /// The underlying violation.
    pub error: ValidationError,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "processor {}: {}", self.proc, self.error)
    }
}

impl Error for ProgramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;

    fn nop(barrier: bool) -> Op {
        Op {
            instr: Instr::Nop,
            barrier,
        }
    }

    #[test]
    fn regions_alternate() {
        let ops = vec![nop(false), nop(false), nop(true), nop(false), nop(true)];
        let regions = regions_of(&ops);
        assert_eq!(regions.len(), 4);
        assert_eq!(
            (regions[0].start, regions[0].end, regions[0].barrier),
            (0, 2, false)
        );
        assert_eq!(
            (regions[1].start, regions[1].end, regions[1].barrier),
            (2, 3, true)
        );
        assert_eq!(
            (regions[2].start, regions[2].end, regions[2].barrier),
            (3, 4, false)
        );
        assert_eq!(
            (regions[3].start, regions[3].end, regions[3].barrier),
            (4, 5, true)
        );
        assert!(regions.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn empty_stream_has_no_regions() {
        assert!(regions_of(&[]).is_empty());
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = StreamBuilder::new();
        b.jump("end", false);
        b.label("mid");
        b.plain(Instr::Nop);
        b.label("end");
        b.plain_branch(Cond::Eq, 0, 0, "mid");
        let s = b.finish().unwrap();
        assert_eq!(s.ops()[0].instr.branch_target(), Some(2));
        assert_eq!(s.ops()[2].instr.branch_target(), Some(1));
        assert_eq!(s.label("mid"), Some(1));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = StreamBuilder::new();
        b.jump("nowhere", false);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UndefinedLabel {
                label: "nowhere".into()
            }
        );
    }

    #[test]
    fn branch_within_barrier_region_is_valid() {
        // A loop entirely inside one barrier region (Sec. 3: "entire
        // control structures, such as loops and if-statements, can be
        // included in a barrier region").
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 0 });
        b.label("loop");
        b.fuzzy(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b.fuzzy_branch(Cond::Lt, 1, 2, "loop");
        b.plain(Instr::Halt);
        let s = b.finish().unwrap();
        assert!(s.validate().is_ok());
    }

    #[test]
    fn barrier_to_barrier_branch_is_invalid() {
        // Fig. 2: a branch from barrier_1 directly into barrier_2.
        let mut b = StreamBuilder::new();
        b.fuzzy(Instr::Nop); // barrier region 0
        b.jump("second", true); // still barrier region 0
        b.plain(Instr::Nop); // non-barrier
        b.label("second");
        b.fuzzy(Instr::Nop); // barrier region 2
        b.plain(Instr::Halt);
        let s = b.finish().unwrap();
        let err = s.validate().unwrap_err();
        assert!(matches!(
            err,
            ValidationError::BarrierToBarrierBranch { .. }
        ));
    }

    #[test]
    fn backward_barrier_to_barrier_branch_is_the_loop_back_edge() {
        // Fig. 4's layout: barrier prefix at the loop head, non-barrier
        // body, barrier suffix ending in `if k <= hi goto L1` where L1 is
        // barrier code. The back edge fuses the two static regions into
        // one dynamic region spanning iterations — valid.
        let mut b = StreamBuilder::new();
        b.label("L1");
        b.fuzzy(Instr::Nop); // barrier prefix
        b.plain(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        }); // non-barrier body
        b.fuzzy(Instr::Nop); // barrier suffix
        b.fuzzy_branch(Cond::Lt, 1, 2, "L1"); // back edge, barrier → barrier
        b.plain(Instr::Halt);
        let s = b.finish().unwrap();
        assert!(s.validate().is_ok());
    }

    #[test]
    fn branch_from_barrier_to_non_barrier_is_valid() {
        // Multiple exits from a barrier region are explicitly allowed.
        let mut b = StreamBuilder::new();
        b.fuzzy(Instr::Nop);
        b.fuzzy_branch(Cond::Eq, 0, 0, "out");
        b.fuzzy(Instr::Nop);
        b.label("out");
        b.plain(Instr::Halt);
        let s = b.finish().unwrap();
        assert!(s.validate().is_ok());
    }

    #[test]
    fn out_of_range_branch_detected() {
        let s = Stream::from_ops(vec![Op::plain(Instr::Jump { target: 99 })]);
        assert!(matches!(
            s.validate().unwrap_err(),
            ValidationError::BranchOutOfRange { pc: 0, target: 99 }
        ));
    }

    #[test]
    fn program_validation_reports_processor() {
        let good = Stream::from_ops(vec![Op::plain(Instr::Halt)]);
        let bad = Stream::from_ops(vec![Op::plain(Instr::Jump { target: 5 })]);
        let p: Program = [good, bad].into_iter().collect();
        let err = p.validate().unwrap_err();
        assert_eq!(err.proc, 1);
        assert!(err.to_string().contains("processor 1"));
    }

    #[test]
    fn region_at_finds_enclosing_region() {
        let s = Stream::from_ops(vec![nop(false), nop(true), nop(true), nop(false)]);
        assert_eq!(s.region_at(0).unwrap().index, 0);
        assert_eq!(s.region_at(2).unwrap().index, 1);
        assert!(s.region_at(2).unwrap().barrier);
        assert_eq!(s.region_at(4), None);
    }
}
