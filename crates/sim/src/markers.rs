//! The alternative barrier-region encoding of Sec. 6.
//!
//! > "An alternative and less expensive approach is to use special
//! > instructions that when executed, indicate an entry or exit from a
//! > barrier region. If special instructions are used to mark the
//! > boundaries of a barrier region then the null operation is no longer
//! > needed to represent a null barrier region."
//!
//! This module converts between the bit-per-instruction form the machine
//! executes and the marker form: a flat instruction sequence with
//! [`MarkerItem::EnterRegion`] / [`MarkerItem::ExitRegion`] boundary
//! markers. Null barrier regions (a single placeholder `nop`) convert to
//! an adjacent Enter/Exit pair with **no** instruction between — the
//! saving the paper describes. [`encoding_overhead`] quantifies the
//! trade-off for a given stream.

use crate::isa::{Instr, Op};
use crate::program::regions_of;
use std::error::Error;
use std::fmt;

/// One element of the marker-form instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerItem {
    /// An ordinary instruction (its region membership is implied by the
    /// surrounding markers).
    Instr(Instr),
    /// Entry into a barrier region.
    EnterRegion,
    /// Exit from a barrier region.
    ExitRegion,
}

/// Errors reconstructing bit form from marker form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MarkerError {
    /// `EnterRegion` while already inside a region.
    NestedEnter {
        /// Item index.
        at: usize,
    },
    /// `ExitRegion` while outside any region.
    ExitOutsideRegion {
        /// Item index.
        at: usize,
    },
    /// The stream ended inside a region.
    UnclosedRegion,
}

impl fmt::Display for MarkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkerError::NestedEnter { at } => write!(f, "nested region entry at item {at}"),
            MarkerError::ExitOutsideRegion { at } => {
                write!(f, "region exit outside a region at item {at}")
            }
            MarkerError::UnclosedRegion => write!(f, "stream ends inside a barrier region"),
        }
    }
}

impl Error for MarkerError {}

/// Whether an instruction is a placeholder for an otherwise-empty barrier
/// region (the "null operation" of Sec. 6).
fn is_placeholder(instr: &Instr) -> bool {
    matches!(instr, Instr::Nop)
}

/// Converts a bit-per-instruction stream to marker form. Barrier regions
/// consisting solely of `nop` placeholders lose their nops — the marker
/// pair alone represents the (null) region.
#[must_use]
pub fn to_markers(ops: &[Op]) -> Vec<MarkerItem> {
    let mut out = Vec::with_capacity(ops.len() + 8);
    for region in regions_of(ops) {
        let slice = &ops[region.start..region.end];
        if region.barrier {
            out.push(MarkerItem::EnterRegion);
            let all_placeholders = slice.iter().all(|o| is_placeholder(&o.instr));
            if !all_placeholders {
                out.extend(slice.iter().map(|o| MarkerItem::Instr(o.instr)));
            }
            out.push(MarkerItem::ExitRegion);
        } else {
            out.extend(slice.iter().map(|o| MarkerItem::Instr(o.instr)));
        }
    }
    out
}

/// Reconstructs the bit-per-instruction form. An empty Enter/Exit pair
/// regenerates the placeholder `nop` the machine needs (a barrier region
/// must contain at least one instruction in bit form).
///
/// # Errors
///
/// Returns a [`MarkerError`] if the markers do not alternate properly.
pub fn from_markers(items: &[MarkerItem]) -> Result<Vec<Op>, MarkerError> {
    let mut out = Vec::with_capacity(items.len());
    let mut in_region = false;
    let mut region_len = 0usize;
    for (at, item) in items.iter().enumerate() {
        match item {
            MarkerItem::EnterRegion => {
                if in_region {
                    return Err(MarkerError::NestedEnter { at });
                }
                in_region = true;
                region_len = 0;
            }
            MarkerItem::ExitRegion => {
                if !in_region {
                    return Err(MarkerError::ExitOutsideRegion { at });
                }
                if region_len == 0 {
                    out.push(Op::fuzzy(Instr::Nop));
                }
                in_region = false;
            }
            MarkerItem::Instr(instr) => {
                if in_region {
                    region_len += 1;
                    out.push(Op::fuzzy(*instr));
                } else {
                    out.push(Op::plain(*instr));
                }
            }
        }
    }
    if in_region {
        return Err(MarkerError::UnclosedRegion);
    }
    Ok(out)
}

/// The cost comparison of Sec. 6: the bit form pays one bit on *every*
/// instruction; the marker form pays two extra instructions per barrier
/// region but drops the null-region placeholders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerStats {
    /// Barrier regions in the stream.
    pub regions: usize,
    /// Bit-form overhead: one bit per instruction.
    pub bit_overhead_bits: usize,
    /// Marker-form overhead: boundary instructions added.
    pub marker_instrs_added: usize,
    /// Placeholder `nop`s the marker form eliminates.
    pub placeholder_nops_saved: usize,
}

/// Computes the encoding trade-off for a stream.
#[must_use]
pub fn encoding_overhead(ops: &[Op]) -> MarkerStats {
    let regions: Vec<_> = regions_of(ops).into_iter().filter(|r| r.barrier).collect();
    let placeholder_nops_saved = regions
        .iter()
        .filter(|r| ops[r.start..r.end].iter().all(|o| is_placeholder(&o.instr)))
        .map(|r| r.len())
        .sum();
    MarkerStats {
        regions: regions.len(),
        bit_overhead_bits: ops.len(),
        marker_instrs_added: regions.len() * 2,
        placeholder_nops_saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;

    fn sample() -> Vec<Op> {
        vec![
            Op::plain(Instr::Li { rd: 1, imm: 0 }),
            Op::fuzzy(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            }),
            Op::fuzzy(Instr::Branch {
                cond: Cond::Lt,
                rs1: 1,
                rs2: 2,
                target: 1,
            }),
            Op::plain(Instr::Halt),
        ]
    }

    #[test]
    fn round_trips_plain_regions() {
        let ops = sample();
        let markers = to_markers(&ops);
        assert_eq!(from_markers(&markers).unwrap(), ops);
        assert_eq!(
            markers
                .iter()
                .filter(|m| matches!(m, MarkerItem::EnterRegion))
                .count(),
            1
        );
    }

    #[test]
    fn null_regions_lose_their_placeholder() {
        let ops = vec![
            Op::plain(Instr::Li { rd: 1, imm: 0 }),
            Op::fuzzy(Instr::Nop), // null barrier region
            Op::plain(Instr::Halt),
        ];
        let markers = to_markers(&ops);
        // No instruction between the markers.
        assert_eq!(
            markers,
            vec![
                MarkerItem::Instr(Instr::Li { rd: 1, imm: 0 }),
                MarkerItem::EnterRegion,
                MarkerItem::ExitRegion,
                MarkerItem::Instr(Instr::Halt),
            ]
        );
        // Reconstruction regenerates the placeholder.
        assert_eq!(from_markers(&markers).unwrap(), ops);
    }

    #[test]
    fn malformed_markers_rejected() {
        assert_eq!(
            from_markers(&[MarkerItem::ExitRegion]),
            Err(MarkerError::ExitOutsideRegion { at: 0 })
        );
        assert_eq!(
            from_markers(&[MarkerItem::EnterRegion, MarkerItem::EnterRegion]),
            Err(MarkerError::NestedEnter { at: 1 })
        );
        assert_eq!(
            from_markers(&[MarkerItem::EnterRegion]),
            Err(MarkerError::UnclosedRegion)
        );
    }

    #[test]
    fn overhead_accounting() {
        let ops = vec![
            Op::plain(Instr::Li { rd: 1, imm: 0 }),
            Op::fuzzy(Instr::Nop),
            Op::plain(Instr::Nop),
            Op::fuzzy(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            }),
            Op::plain(Instr::Halt),
        ];
        let stats = encoding_overhead(&ops);
        assert_eq!(stats.regions, 2);
        assert_eq!(stats.bit_overhead_bits, 5);
        assert_eq!(stats.marker_instrs_added, 4);
        assert_eq!(stats.placeholder_nops_saved, 1);
    }

    #[test]
    fn compiled_stream_round_trips() {
        use crate::assembler::assemble_stream;
        let s = assemble_stream(
            "li r1, 0\nli r2, 5\nloop:\naddi r1, r1, 1\nB: nop\nB: blt r1, r2, loop\nhalt\n",
        )
        .unwrap();
        let markers = to_markers(s.ops());
        let back = from_markers(&markers).unwrap();
        assert_eq!(back, s.ops());
    }
}
