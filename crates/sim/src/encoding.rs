//! Binary instruction encoding.
//!
//! The paper's implementation marks barrier-region membership with "a
//! single bit in each instruction" (Sec. 6). This module makes that
//! concrete: every [`Op`] encodes into one 64-bit word whose **top bit is
//! the barrier-region bit**, with an 8-bit opcode, three 8-bit register
//! fields and a 32-bit signed immediate/target. Round-tripping is exact
//! for all encodable programs; immediates outside ±2³¹ are rejected at
//! encode time.
//!
//! Layout (most significant bit first):
//!
//! ```text
//! | 63 | 62..56 |  55..48 | 47..40 | 39..32 | 31..0 |
//! | B  | unused | opcode  |   rd   |   rs   |  imm  |
//! ```
//!
//! (Three-register instructions place the second source in the low byte
//! of the immediate field.)

use crate::isa::{Cond, Instr, Op, Reg};
use std::error::Error;
use std::fmt;

/// Errors from encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The immediate/offset/target does not fit in 32 bits.
    ImmediateOutOfRange {
        /// The offending value.
        value: i64,
    },
    /// The word's opcode field is not a known instruction.
    BadOpcode {
        /// The opcode byte.
        opcode: u8,
    },
    /// A register field exceeds the register-file size.
    BadRegister {
        /// The register byte.
        reg: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::ImmediateOutOfRange { value } => {
                write!(f, "immediate {value} does not fit in 32 bits")
            }
            CodecError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode:#x}"),
            CodecError::BadRegister { reg } => write!(f, "register field {reg} out of range"),
        }
    }
}

impl Error for CodecError {}

const B_BIT: u64 = 1 << 63;

mod opcodes {
    pub const LI: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const ADD: u8 = 0x03;
    pub const SUB: u8 = 0x04;
    pub const MUL: u8 = 0x05;
    pub const ADDI: u8 = 0x06;
    pub const MULI: u8 = 0x07;
    pub const DIVI: u8 = 0x08;
    pub const LOAD: u8 = 0x09;
    pub const STORE: u8 = 0x0A;
    pub const FAA: u8 = 0x0B;
    pub const JUMP: u8 = 0x0C;
    pub const BEQ: u8 = 0x0D;
    pub const BNE: u8 = 0x0E;
    pub const BLT: u8 = 0x0F;
    pub const BGE: u8 = 0x10;
    pub const BLE: u8 = 0x11;
    pub const BGT: u8 = 0x12;
    pub const SETMASK: u8 = 0x13;
    pub const SETTAG: u8 = 0x14;
    pub const NOP: u8 = 0x15;
    pub const CALL: u8 = 0x16;
    pub const RET: u8 = 0x17;
    pub const TRAP: u8 = 0x18;
    pub const HALT: u8 = 0x19;
}

fn imm32(value: i64) -> Result<u32, CodecError> {
    i32::try_from(value)
        .map(|v| v as u32)
        .map_err(|_| CodecError::ImmediateOutOfRange { value })
}

fn pack(opcode: u8, rd: Reg, rs: Reg, imm: u32) -> u64 {
    (u64::from(opcode) << 48) | (u64::from(rd) << 40) | (u64::from(rs) << 32) | u64::from(imm)
}

/// Encodes one instruction+bit pair into a 64-bit word.
///
/// # Errors
///
/// Returns [`CodecError::ImmediateOutOfRange`] if an immediate, offset,
/// mask or branch target exceeds 32 bits. (Masks wider than 32 processors
/// cannot be encoded in this format; use the in-memory representation.)
pub fn encode(op: &Op) -> Result<u64, CodecError> {
    use opcodes::*;
    let word = match op.instr {
        Instr::Li { rd, imm } => pack(LI, rd, 0, imm32(imm)?),
        Instr::Mov { rd, rs } => pack(MOV, rd, rs, 0),
        Instr::Add { rd, rs1, rs2 } => pack(ADD, rd, rs1, u32::from(rs2)),
        Instr::Sub { rd, rs1, rs2 } => pack(SUB, rd, rs1, u32::from(rs2)),
        Instr::Mul { rd, rs1, rs2 } => pack(MUL, rd, rs1, u32::from(rs2)),
        Instr::Addi { rd, rs, imm } => pack(ADDI, rd, rs, imm32(imm)?),
        Instr::Muli { rd, rs, imm } => pack(MULI, rd, rs, imm32(imm)?),
        Instr::Divi { rd, rs, imm } => pack(DIVI, rd, rs, imm32(imm)?),
        Instr::Load { rd, rs, offset } => pack(LOAD, rd, rs, imm32(offset)?),
        Instr::Store { rs, rb, offset } => pack(STORE, rs, rb, imm32(offset)?),
        Instr::FetchAdd {
            rd,
            rb,
            offset,
            imm,
        } => {
            // Fetch-add packs the offset in the imm field's high half and
            // the addend in the low half; both must fit in 16 bits.
            let off = i16::try_from(offset)
                .map_err(|_| CodecError::ImmediateOutOfRange { value: offset })?;
            let add =
                i16::try_from(imm).map_err(|_| CodecError::ImmediateOutOfRange { value: imm })?;
            pack(
                FAA,
                rd,
                rb,
                (u32::from(off as u16) << 16) | u32::from(add as u16),
            )
        }
        Instr::Jump { target } => pack(JUMP, 0, 0, imm32(target as i64)?),
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let opcode = match cond {
                Cond::Eq => BEQ,
                Cond::Ne => BNE,
                Cond::Lt => BLT,
                Cond::Ge => BGE,
                Cond::Le => BLE,
                Cond::Gt => BGT,
            };
            // Branch packs rs1/rs2 in the register fields and the target
            // in the imm field's high 24 bits.
            let t = u32::try_from(target)
                .ok()
                .filter(|&t| t < (1 << 24))
                .ok_or(CodecError::ImmediateOutOfRange {
                    value: target as i64,
                })?;
            pack(opcode, rs1, rs2, t << 8)
        }
        Instr::SetMask { mask } => {
            let m = u32::try_from(mask)
                .map_err(|_| CodecError::ImmediateOutOfRange { value: mask as i64 })?;
            pack(SETMASK, 0, 0, m)
        }
        Instr::SetTag { tag } => pack(SETTAG, 0, 0, u32::from(tag)),
        Instr::Nop => pack(NOP, 0, 0, 0),
        Instr::Call { target } => pack(CALL, 0, 0, imm32(target as i64)?),
        Instr::Ret => pack(RET, 0, 0, 0),
        Instr::Trap { cause } => pack(TRAP, 0, 0, u32::from(cause)),
        Instr::Halt => pack(HALT, 0, 0, 0),
    };
    Ok(word | if op.barrier { B_BIT } else { 0 })
}

fn reg_checked(byte: u8) -> Result<Reg, CodecError> {
    if usize::from(byte) < crate::isa::NUM_REGS {
        Ok(byte)
    } else {
        Err(CodecError::BadRegister { reg: byte })
    }
}

/// Decodes one 64-bit word back into an instruction+bit pair.
///
/// # Errors
///
/// Returns [`CodecError::BadOpcode`] or [`CodecError::BadRegister`] on
/// malformed words.
pub fn decode(word: u64) -> Result<Op, CodecError> {
    use opcodes::*;
    let barrier = word & B_BIT != 0;
    let opcode = ((word >> 48) & 0xFF) as u8;
    let rd = reg_checked(((word >> 40) & 0xFF) as u8);
    let rs = reg_checked(((word >> 32) & 0xFF) as u8);
    let imm_u = (word & 0xFFFF_FFFF) as u32;
    let imm = i64::from(imm_u as i32);
    let instr = match opcode {
        LI => Instr::Li { rd: rd?, imm },
        MOV => Instr::Mov { rd: rd?, rs: rs? },
        ADD | SUB | MUL => {
            let rs2 = reg_checked((imm_u & 0xFF) as u8)?;
            let (rd, rs1) = (rd?, rs?);
            match opcode {
                ADD => Instr::Add { rd, rs1, rs2 },
                SUB => Instr::Sub { rd, rs1, rs2 },
                _ => Instr::Mul { rd, rs1, rs2 },
            }
        }
        ADDI => Instr::Addi {
            rd: rd?,
            rs: rs?,
            imm,
        },
        MULI => Instr::Muli {
            rd: rd?,
            rs: rs?,
            imm,
        },
        DIVI => Instr::Divi {
            rd: rd?,
            rs: rs?,
            imm,
        },
        LOAD => Instr::Load {
            rd: rd?,
            rs: rs?,
            offset: imm,
        },
        STORE => Instr::Store {
            rs: rd?,
            rb: rs?,
            offset: imm,
        },
        FAA => Instr::FetchAdd {
            rd: rd?,
            rb: rs?,
            offset: i64::from((imm_u >> 16) as u16 as i16),
            imm: i64::from((imm_u & 0xFFFF) as u16 as i16),
        },
        JUMP => Instr::Jump {
            target: imm_u as usize,
        },
        BEQ | BNE | BLT | BGE | BLE | BGT => {
            let cond = match opcode {
                BEQ => Cond::Eq,
                BNE => Cond::Ne,
                BLT => Cond::Lt,
                BGE => Cond::Ge,
                BLE => Cond::Le,
                _ => Cond::Gt,
            };
            Instr::Branch {
                cond,
                rs1: rd?,
                rs2: rs?,
                target: (imm_u >> 8) as usize,
            }
        }
        SETMASK => Instr::SetMask {
            mask: u64::from(imm_u),
        },
        SETTAG => Instr::SetTag {
            tag: (imm_u & 0xFFFF) as u16,
        },
        NOP => Instr::Nop,
        CALL => Instr::Call {
            target: imm_u as usize,
        },
        RET => Instr::Ret,
        TRAP => Instr::Trap {
            cause: (imm_u & 0xFFFF) as u16,
        },
        HALT => Instr::Halt,
        other => return Err(CodecError::BadOpcode { opcode: other }),
    };
    Ok(Op { instr, barrier })
}

/// Encodes a whole instruction sequence.
///
/// # Errors
///
/// Fails on the first unencodable instruction.
pub fn encode_stream(ops: &[Op]) -> Result<Vec<u64>, CodecError> {
    ops.iter().map(encode).collect()
}

/// Decodes a whole image back into instructions.
///
/// # Errors
///
/// Fails on the first malformed word.
pub fn decode_stream(words: &[u64]) -> Result<Vec<Op>, CodecError> {
    words.iter().copied().map(decode).collect()
}

/// Magic number identifying a fuzzy-barrier program image.
pub const IMAGE_MAGIC: u32 = 0xF022_1989;

/// Serializes a whole [`crate::program::Program`] into a binary image:
/// a small header (magic, stream count, per-stream lengths) followed by
/// the encoded instruction words, all little-endian.
///
/// # Errors
///
/// Fails on the first unencodable instruction.
pub fn encode_program(program: &crate::program::Program) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    out.extend_from_slice(&IMAGE_MAGIC.to_le_bytes());
    out.extend_from_slice(&(program.num_procs() as u32).to_le_bytes());
    for stream in program.streams() {
        out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
    }
    for stream in program.streams() {
        for op in stream.ops() {
            out.extend_from_slice(&encode(op)?.to_le_bytes());
        }
    }
    Ok(out)
}

/// Image deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The image is truncated or has a bad magic number.
    Malformed,
    /// A word failed to decode.
    Codec(CodecError),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Malformed => write!(f, "malformed program image"),
            ImageError::Codec(e) => write!(f, "bad instruction word: {e}"),
        }
    }
}

impl Error for ImageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImageError::Codec(e) => Some(e),
            ImageError::Malformed => None,
        }
    }
}

/// Deserializes a program image produced by [`encode_program`].
///
/// # Errors
///
/// Returns [`ImageError`] on truncation, bad magic or malformed words.
pub fn decode_program(bytes: &[u8]) -> Result<crate::program::Program, ImageError> {
    let take_u32 = |bytes: &[u8], at: usize| -> Result<u32, ImageError> {
        bytes
            .get(at..at + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .ok_or(ImageError::Malformed)
    };
    if take_u32(bytes, 0)? != IMAGE_MAGIC {
        return Err(ImageError::Malformed);
    }
    let streams = take_u32(bytes, 4)? as usize;
    let mut lens = Vec::with_capacity(streams);
    let mut pos = 8usize;
    for _ in 0..streams {
        lens.push(take_u32(bytes, pos)? as usize);
        pos += 4;
    }
    let mut out = Vec::with_capacity(streams);
    for len in lens {
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let w = bytes
                .get(pos..pos + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or(ImageError::Malformed)?;
            ops.push(decode(w).map_err(ImageError::Codec)?);
            pos += 8;
        }
        out.push(crate::program::Stream::from_ops(ops));
    }
    if pos != bytes.len() {
        return Err(ImageError::Malformed);
    }
    Ok(crate::program::Program::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_bit_is_the_top_bit() {
        let plain = encode(&Op::plain(Instr::Nop)).unwrap();
        let fuzzy = encode(&Op::fuzzy(Instr::Nop)).unwrap();
        assert_eq!(plain & B_BIT, 0);
        assert_eq!(fuzzy & B_BIT, B_BIT);
        assert_eq!(plain | B_BIT, fuzzy);
    }

    #[test]
    fn round_trips_every_shape() {
        let samples = vec![
            Op::plain(Instr::Li { rd: 3, imm: -70000 }),
            Op::fuzzy(Instr::Mov { rd: 1, rs: 2 }),
            Op::plain(Instr::Add {
                rd: 1,
                rs1: 2,
                rs2: 3,
            }),
            Op::fuzzy(Instr::Sub {
                rd: 4,
                rs1: 5,
                rs2: 6,
            }),
            Op::plain(Instr::Mul {
                rd: 7,
                rs1: 8,
                rs2: 9,
            }),
            Op::fuzzy(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: -1,
            }),
            Op::plain(Instr::Muli {
                rd: 2,
                rs: 3,
                imm: 12,
            }),
            Op::fuzzy(Instr::Divi {
                rd: 2,
                rs: 3,
                imm: 4,
            }),
            Op::plain(Instr::Load {
                rd: 9,
                rs: 0,
                offset: 12345,
            }),
            Op::fuzzy(Instr::Store {
                rs: 9,
                rb: 0,
                offset: -7,
            }),
            Op::plain(Instr::FetchAdd {
                rd: 25,
                rb: 24,
                offset: 1,
                imm: -2,
            }),
            Op::fuzzy(Instr::Jump { target: 99 }),
            Op::plain(Instr::Branch {
                cond: Cond::Lt,
                rs1: 1,
                rs2: 2,
                target: 1000,
            }),
            Op::fuzzy(Instr::Branch {
                cond: Cond::Ge,
                rs1: 30,
                rs2: 31,
                target: 0,
            }),
            Op::plain(Instr::SetMask { mask: 0b1011 }),
            Op::fuzzy(Instr::SetTag { tag: 65535 }),
            Op::plain(Instr::Nop),
            Op::fuzzy(Instr::Call { target: 7 }),
            Op::plain(Instr::Ret),
            Op::fuzzy(Instr::Trap { cause: 42 }),
            Op::plain(Instr::Halt),
        ];
        for op in samples {
            let word = encode(&op).unwrap();
            assert_eq!(decode(word).unwrap(), op, "word {word:#018x}");
        }
    }

    #[test]
    fn oversized_immediates_rejected() {
        assert!(matches!(
            encode(&Op::plain(Instr::Li {
                rd: 0,
                imm: 1 << 40
            })),
            Err(CodecError::ImmediateOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Op::plain(Instr::FetchAdd {
                rd: 0,
                rb: 0,
                offset: 1 << 20,
                imm: 0
            })),
            Err(CodecError::ImmediateOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Op::plain(Instr::Branch {
                cond: Cond::Eq,
                rs1: 0,
                rs2: 0,
                target: 1 << 25
            })),
            Err(CodecError::ImmediateOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_words_rejected() {
        assert!(matches!(
            decode(0xFF << 48),
            Err(CodecError::BadOpcode { opcode: 0xFF })
        ));
        // LI with register 200.
        let word = (u64::from(opcodes::LI) << 48) | (200u64 << 40);
        assert!(matches!(
            decode(word),
            Err(CodecError::BadRegister { reg: 200 })
        ));
    }

    #[test]
    fn program_image_round_trips() {
        use crate::assembler::assemble_program;
        let p =
            assemble_program(".stream\nli r1, 1\nB: nop\nhalt\n.stream\nli r1, 2\nB: nop\nhalt\n")
                .unwrap();
        let image = encode_program(&p).unwrap();
        let back = decode_program(&image).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn image_validation() {
        assert_eq!(decode_program(&[1, 2, 3]), Err(ImageError::Malformed));
        let mut bad_magic = vec![0u8; 8];
        bad_magic[0] = 9;
        assert_eq!(decode_program(&bad_magic), Err(ImageError::Malformed));
        // Truncated body.
        use crate::assembler::assemble_program;
        let p = assemble_program("nop\nhalt\n").unwrap();
        let mut image = encode_program(&p).unwrap();
        image.truncate(image.len() - 3);
        assert_eq!(decode_program(&image), Err(ImageError::Malformed));
        // Trailing garbage.
        let mut image = encode_program(&p).unwrap();
        image.push(0);
        assert_eq!(decode_program(&image), Err(ImageError::Malformed));
    }

    #[test]
    fn whole_stream_round_trips() {
        use crate::assembler::assemble_stream;
        let s = assemble_stream(
            "li r1, 0\nli r2, 5\nloop:\naddi r1, r1, 1\nB: nop\nB: blt r1, r2, loop\nhalt\n",
        )
        .unwrap();
        let words = encode_stream(s.ops()).unwrap();
        let back = decode_stream(&words).unwrap();
        assert_eq!(back, s.ops());
    }
}
