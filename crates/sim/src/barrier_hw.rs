//! The per-processor fuzzy-barrier hardware (Sec. 6).
//!
//! "Each processor contains an identical copy of the fuzzy barrier
//! hardware. This consists of a state machine that determines the status of
//! the barrier for the processor, an internal register that contains the
//! current tag and mask for the processor, and some combinational logic
//! which determines whether the processor's tag matches the tags of
//! processors with which it wishes to synchronize."

/// The four states of the paper's barrier state machine:
///
/// 1. executing instructions from a non-barrier region;
/// 2. in the barrier region and not synchronized;
/// 3. in the barrier region and synchronized;
/// 4. synchronization has not taken place and the processor is stalled,
///    having completed the barrier region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierState {
    /// State (i): executing non-barrier code.
    #[default]
    NonBarrier,
    /// State (ii): inside the barrier region, synchronization pending. The
    /// ready line is raised.
    ReadyUnsynced,
    /// State (iii): inside the barrier region, synchronization observed.
    Synced,
    /// State (iv): finished the barrier region without synchronization —
    /// the processor idles. The ready line stays raised.
    Stalled,
}

/// One processor's barrier unit: state machine plus mask/tag register.
#[derive(Debug, Clone, Default)]
pub struct BarrierUnit {
    /// Current state of the state machine.
    pub state: BarrierState,
    /// Participation mask: bit *j* set ⇔ this processor synchronizes with
    /// processor *j*.
    pub mask: u64,
    /// Barrier tag; 0 means "not participating".
    pub tag: u16,
    /// Watchdog register: the cycle budget this unit tolerates with its
    /// ready line raised and synchronization absent before raising an
    /// eviction interrupt. `None` disables the watchdog (the paper's
    /// hardware, which waits forever).
    pub watchdog: Option<u64>,
    /// Consecutive cycles spent ready-but-unsynchronized, maintained by
    /// the machine's broadcast evaluation. Compared against
    /// [`Self::watchdog`]; reset on synchronization or whenever the ready
    /// line drops.
    pub waiting: u64,
}

impl BarrierUnit {
    /// A unit configured to synchronize with the processors in `mask`
    /// under `tag`.
    #[must_use]
    pub fn new(mask: u64, tag: u16) -> Self {
        BarrierUnit {
            state: BarrierState::NonBarrier,
            mask,
            tag,
            watchdog: None,
            waiting: 0,
        }
    }

    /// The same unit with an armed watchdog register.
    #[must_use]
    pub fn with_watchdog(mut self, budget: u64) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// True once the unit has outwaited its watchdog budget.
    #[must_use]
    pub fn watchdog_expired(&self) -> bool {
        self.watchdog.is_some_and(|budget| self.waiting > budget)
    }

    /// The broadcast ready line: raised while the processor is ready to
    /// synchronize and synchronization has not occurred (states ii and iv).
    #[must_use]
    pub fn ready_line(&self) -> bool {
        matches!(
            self.state,
            BarrierState::ReadyUnsynced | BarrierState::Stalled
        )
    }

    /// Whether the processor is currently stalled at the barrier exit.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.state == BarrierState::Stalled
    }
}

/// Evaluates the broadcast synchronization condition across all units and
/// applies it simultaneously, exactly as the hardware does ("since the
/// signals are being broadcast and monitored by each processor
/// independently, all processors simultaneously discover the occurrence of
/// synchronization").
///
/// A processor synchronizes when its ready line is up, its tag is non-zero,
/// and every processor in its mask has its ready line up with a matching
/// tag. Returns the ids of processors that synchronized this cycle.
///
/// `ready_override` lets the machine veto a unit's ready line (used in the
/// pipelined model where "exiting the non-barrier region and entering the
/// barrier region are not equivalent": a processor that has *entered* the
/// barrier region may still have non-barrier instructions in flight).
pub fn evaluate_sync(units: &mut [BarrierUnit], ready_override: &[bool]) -> Vec<usize> {
    debug_assert_eq!(units.len(), ready_override.len());
    let effective_ready: Vec<bool> = units
        .iter()
        .zip(ready_override)
        .map(|(u, &ok)| u.ready_line() && ok)
        .collect();

    let mut synced = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        if !effective_ready[i] || unit.tag == 0 {
            continue;
        }
        let mut all_partners_ready = true;
        for j in 0..units.len() {
            if j == i || unit.mask & (1u64 << j) == 0 {
                continue;
            }
            if !effective_ready[j] || units[j].tag != unit.tag {
                all_partners_ready = false;
                break;
            }
        }
        if all_partners_ready {
            synced.push(i);
        }
    }
    for &i in &synced {
        units[i].state = BarrierState::Synced;
    }
    synced
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_unit(mask: u64, tag: u16) -> BarrierUnit {
        BarrierUnit {
            state: BarrierState::ReadyUnsynced,
            mask,
            tag,
            ..BarrierUnit::default()
        }
    }

    #[test]
    fn ready_line_follows_state() {
        let mut u = BarrierUnit::new(0, 1);
        assert!(!u.ready_line());
        u.state = BarrierState::ReadyUnsynced;
        assert!(u.ready_line());
        u.state = BarrierState::Stalled;
        assert!(u.ready_line());
        assert!(u.is_stalled());
        u.state = BarrierState::Synced;
        assert!(!u.ready_line());
    }

    #[test]
    fn two_ready_matching_units_sync() {
        let mut units = vec![ready_unit(0b10, 1), ready_unit(0b01, 1)];
        let synced = evaluate_sync(&mut units, &[true, true]);
        assert_eq!(synced, vec![0, 1]);
        assert!(units.iter().all(|u| u.state == BarrierState::Synced));
    }

    #[test]
    fn sync_waits_for_all_masked_partners() {
        let mut units = vec![
            ready_unit(0b110, 1),
            ready_unit(0b101, 1),
            BarrierUnit::new(0b011, 1), // not ready
        ];
        let synced = evaluate_sync(&mut units, &[true, true, true]);
        assert!(synced.is_empty());
        units[2].state = BarrierState::Stalled; // now ready (state iv)
        let synced = evaluate_sync(&mut units, &[true, true, true]);
        assert_eq!(synced, vec![0, 1, 2]);
    }

    #[test]
    fn tag_mismatch_blocks_sync() {
        // Fig. 2 / Fig. 6: processors must not synchronize at logically
        // different barriers.
        let mut units = vec![ready_unit(0b10, 1), ready_unit(0b01, 2)];
        assert!(evaluate_sync(&mut units, &[true, true]).is_empty());
    }

    #[test]
    fn zero_tag_never_participates() {
        let mut units = vec![ready_unit(0b10, 0), ready_unit(0b01, 0)];
        assert!(evaluate_sync(&mut units, &[true, true]).is_empty());
    }

    #[test]
    fn disjoint_groups_sync_independently() {
        // Processors {0,1} under tag 1 and {2,3} under tag 2; group 2 is
        // not ready, group 1 must still fire.
        let mut units = vec![
            ready_unit(0b0010, 1),
            ready_unit(0b0001, 1),
            ready_unit(0b1000, 2),
            BarrierUnit::new(0b0100, 2),
        ];
        let synced = evaluate_sync(&mut units, &[true; 4]);
        assert_eq!(synced, vec![0, 1]);
        assert_eq!(units[2].state, BarrierState::ReadyUnsynced);
    }

    #[test]
    fn pipeline_override_vetoes_ready_line() {
        let mut units = vec![ready_unit(0b10, 1), ready_unit(0b01, 1)];
        // Unit 0 has entered its barrier region but still has non-barrier
        // instructions in flight.
        assert!(evaluate_sync(&mut units, &[false, true]).is_empty());
        let synced = evaluate_sync(&mut units, &[true, true]);
        assert_eq!(synced, vec![0, 1]);
    }

    #[test]
    fn empty_mask_syncs_alone() {
        let mut units = vec![ready_unit(0, 1)];
        assert_eq!(evaluate_sync(&mut units, &[true]), vec![0]);
    }

    #[test]
    fn watchdog_register_expires_strictly_past_budget() {
        let mut u = BarrierUnit::new(0b10, 1).with_watchdog(3);
        assert!(!u.watchdog_expired());
        u.waiting = 3;
        assert!(!u.watchdog_expired(), "budget itself is still tolerated");
        u.waiting = 4;
        assert!(u.watchdog_expired());
        // A unit without a watchdog waits forever, like the paper's.
        let mut forever = BarrierUnit::new(0b10, 1);
        forever.waiting = u64::MAX;
        assert!(!forever.watchdog_expired());
    }

    #[test]
    fn masks_may_be_asymmetric_without_firing_prematurely() {
        // 0 waits for 1, but 1 waits for nobody: 1 syncs alone, 0 keeps
        // waiting until 1 is ready again — matching the hardware, where
        // correctness is the software's responsibility.
        let mut units = vec![ready_unit(0b10, 1), BarrierUnit::new(0, 1)];
        assert!(evaluate_sync(&mut units, &[true, true]).is_empty());
    }
}
