//! `fsim` — assemble and run a fuzzy-barrier machine program.
//!
//! ```text
//! fsim PROGRAM.fasm [options]
//!
//!   --cycles N       cycle budget (default 10_000_000)
//!   --pipelined      overlapped issue
//!   --trace          print the barrier event trace
//!   --miss-rate X    probabilistic cache-miss rate (0.0-1.0)
//!   --miss-penalty N miss penalty in cycles
//!   --banks N        memory banks
//!   --seed N         RNG seed for miss injection
//!   --dump A B       print memory words A..B after the run
//!   --stats-json P   write the full stats snapshot (stall histogram,
//!                    arrival spread, per-proc counters) as JSON to P
//! ```
//!
//! The program format is the `fuzzy_sim::assembler` syntax: `.stream`
//! separates processors, `B:` marks barrier-region instructions, `.word`
//! preloads memory.

use fuzzy_sim::assembler::assemble;
use fuzzy_sim::builder::MachineBuilder;
use std::process::ExitCode;

struct Options {
    path: String,
    cycles: u64,
    pipelined: bool,
    trace: bool,
    miss_rate: Option<f64>,
    miss_penalty: Option<u64>,
    banks: Option<usize>,
    seed: Option<u64>,
    dump: Option<(usize, usize)>,
    stats_json: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        cycles: 10_000_000,
        pipelined: false,
        trace: false,
        miss_rate: None,
        miss_penalty: None,
        banks: None,
        seed: None,
        dump: None,
        stats_json: None,
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cycles" => {
                opts.cycles = need(&mut args, "--cycles")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?;
            }
            "--pipelined" => opts.pipelined = true,
            "--trace" => opts.trace = true,
            "--miss-rate" => {
                opts.miss_rate = Some(
                    need(&mut args, "--miss-rate")?
                        .parse()
                        .map_err(|e| format!("--miss-rate: {e}"))?,
                );
            }
            "--miss-penalty" => {
                opts.miss_penalty = Some(
                    need(&mut args, "--miss-penalty")?
                        .parse()
                        .map_err(|e| format!("--miss-penalty: {e}"))?,
                );
            }
            "--banks" => {
                opts.banks = Some(
                    need(&mut args, "--banks")?
                        .parse()
                        .map_err(|e| format!("--banks: {e}"))?,
                );
            }
            "--seed" => {
                opts.seed = Some(
                    need(&mut args, "--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--dump" => {
                let a = need(&mut args, "--dump")?
                    .parse()
                    .map_err(|e| format!("--dump: {e}"))?;
                let b = need(&mut args, "--dump")?
                    .parse()
                    .map_err(|e| format!("--dump: {e}"))?;
                opts.dump = Some((a, b));
            }
            "--stats-json" => {
                opts.stats_json = Some(need(&mut args, "--stats-json")?);
            }
            "--help" | "-h" => return Err("usage".into()),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("no program file given".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("fsim: {msg}");
            eprintln!(
                "usage: fsim PROGRAM.fasm [--cycles N] [--pipelined] [--trace] \
                 [--miss-rate X] [--miss-penalty N] [--banks N] [--seed N] [--dump A B] \
                 [--stats-json PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fsim: cannot read `{}`: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let assembled = match assemble(&source) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fsim: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {} processor stream(s), {} data word(s)",
        opts.path,
        assembled.program.num_procs(),
        assembled.data.len()
    );

    let mut builder = MachineBuilder::new(assembled.program)
        .pipelined(opts.pipelined)
        .trace(opts.trace)
        .preload(assembled.data);
    if let Some(r) = opts.miss_rate {
        builder = builder.miss_rate(r);
    }
    if let Some(p) = opts.miss_penalty {
        builder = builder.miss_penalty(p);
    }
    if let Some(b) = opts.banks {
        builder = builder.banks(b);
    }
    if let Some(s) = opts.seed {
        builder = builder.seed(s);
    }
    let mut machine = match builder.build() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("fsim: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match machine.run(opts.cycles) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fsim: runtime fault: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stats = machine.stats();
    println!("outcome: {outcome:?}");
    println!(
        "cycles: {}, instructions: {}, syncs: {}, stall cycles: {} ({:.1}% of proc-cycles)",
        stats.cycles,
        stats.total_instructions(),
        stats.sync_events,
        stats.total_stall_cycles(),
        100.0 * stats.stall_fraction()
    );
    for (p, ps) in stats.procs.iter().enumerate() {
        println!(
            "  p{p}: {} instrs, {} stall, {} busy, {} barrier entries, {} syncs",
            ps.instructions, ps.stall_cycles, ps.busy_cycles, ps.barrier_entries, ps.syncs
        );
    }
    if opts.trace {
        println!("trace:");
        for e in machine.trace().events() {
            println!("  {e}");
        }
        if machine.trace().dropped() > 0 {
            println!("  … {} events dropped", machine.trace().dropped());
        }
    }
    if let Some((a, b)) = opts.dump {
        println!("memory[{a}..{b}]:");
        for w in a..b {
            println!("  [{w:>6}] = {}", machine.memory().peek(w));
        }
    }
    if let Some(path) = &opts.stats_json {
        let doc = fuzzy_util::Json::obj()
            .field("program", opts.path.as_str())
            .field("outcome", format!("{outcome:?}"))
            .field("stats", stats.to_json());
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("fsim: cannot create `{}`: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, doc.to_string_pretty() + "\n") {
            eprintln!("fsim: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("stats written to {path}");
    }
    if outcome.is_halted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
