//! A small text assembler for writing simulator programs by hand.
//!
//! One instruction per line. An instruction belongs to a **barrier region**
//! when its line starts with `B:`. Labels are `name:` on their own line or
//! before an instruction. `;` and `#` start comments. Streams are separated
//! by `.stream` directives; a file with no `.stream` produces a single
//! stream.
//!
//! ```text
//!     li   r1, 0
//!     li   r2, 10
//! loop:
//!     addi r1, r1, 1
//! B:  nop                  ; barrier region spans the back edge
//! B:  blt  r1, r2, loop
//!     halt
//! ```
//!
//! # Examples
//!
//! ```
//! use fuzzy_sim::assembler::assemble_stream;
//!
//! let s = assemble_stream("li r1, 42\nB: nop\nhalt\n")?;
//! assert_eq!(s.len(), 3);
//! assert!(s.ops()[1].barrier);
//! # Ok::<(), fuzzy_sim::assembler::AsmError>(())
//! ```

use crate::isa::{Cond, Instr, Reg};
use crate::program::{Program, Stream, StreamBuilder};
use std::error::Error;
use std::fmt;

/// Assembly error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    let digits = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let n: u32 = digits
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    if n >= crate::isa::NUM_REGS as u32 {
        return Err(err(line, format!("register r{n} out of range")));
    }
    Ok(n as Reg)
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// Parses a `[rB+off]` or `[rB-off]` or `[rB]` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [rB+off], got `{tok}`")))?;
    if let Some(pos) = inner.find('+') {
        Ok((
            parse_reg(&inner[..pos], line)?,
            parse_imm(&inner[pos + 1..], line)?,
        ))
    } else if let Some(pos) = inner.rfind('-') {
        if pos == 0 {
            return Err(err(line, format!("expected [rB+off], got `{tok}`")));
        }
        Ok((
            parse_reg(&inner[..pos], line)?,
            -parse_imm(&inner[pos + 1..], line)?,
        ))
    } else {
        Ok((parse_reg(inner, line)?, 0))
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    // Split on commas that are not inside brackets.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn cond_of(mnemonic: &str) -> Option<Cond> {
    match mnemonic {
        "beq" => Some(Cond::Eq),
        "bne" => Some(Cond::Ne),
        "blt" => Some(Cond::Lt),
        "bge" => Some(Cond::Ge),
        "ble" => Some(Cond::Le),
        "bgt" => Some(Cond::Gt),
        _ => None,
    }
}

/// Assembles a single stream.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line on any syntax problem or
/// undefined label.
pub fn assemble_stream(source: &str) -> Result<Stream, AsmError> {
    let mut builder = StreamBuilder::new();
    let mut last_line = 0usize;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        last_line = line;
        parse_line(raw, line, &mut builder)?;
    }
    builder.finish().map_err(|e| err(last_line, e.to_string()))
}

/// A fully assembled translation unit: the program plus its initial
/// memory image (from `.word` directives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembled {
    /// The per-processor streams.
    pub program: Program,
    /// Initial memory words: `(address, value)` pairs in source order.
    pub data: Vec<(usize, i64)>,
}

/// Assembles a whole program; `.stream` directives separate processors
/// and `.word <addr> <value>` directives preload shared memory.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line on any syntax problem
/// or undefined label.
pub fn assemble(source: &str) -> Result<Assembled, AsmError> {
    let mut streams = Vec::new();
    let mut data = Vec::new();
    let mut builder = StreamBuilder::new();
    let mut started = false;
    let mut last_line = 0usize;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        last_line = line;
        let stripped = strip_comment(raw).trim();
        if stripped == ".stream" {
            if started {
                streams.push(
                    std::mem::take(&mut builder)
                        .finish()
                        .map_err(|e| err(line, e.to_string()))?,
                );
            }
            started = true;
            continue;
        }
        if let Some(rest) = stripped.strip_prefix(".word") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 2 {
                return Err(err(line, "`.word` expects an address and a value"));
            }
            let addr = parse_imm(parts[0], line)?;
            let value = parse_imm(parts[1], line)?;
            let addr = usize::try_from(addr)
                .map_err(|_| err(line, "`.word` address must be non-negative"))?;
            data.push((addr, value));
            continue;
        }
        if !stripped.is_empty() {
            started = true;
        }
        parse_line(raw, line, &mut builder)?;
    }
    streams.push(
        builder
            .finish()
            .map_err(|e| err(last_line, e.to_string()))?,
    );
    Ok(Assembled {
        program: Program::new(streams),
        data,
    })
}

/// Assembles a whole program, discarding any `.word` data (use
/// [`assemble`] to keep it).
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line on any syntax problem
/// or undefined label.
pub fn assemble_program(source: &str) -> Result<Program, AsmError> {
    assemble(source).map(|a| a.program)
}

fn strip_comment(raw: &str) -> &str {
    let end = raw.find([';', '#']).unwrap_or(raw.len());
    &raw[..end]
}

fn parse_line(raw: &str, line: usize, builder: &mut StreamBuilder) -> Result<(), AsmError> {
    let mut text = strip_comment(raw).trim();
    if text.is_empty() {
        return Ok(());
    }

    // Barrier-region marker.
    let barrier = if let Some(rest) = text.strip_prefix("B:") {
        text = rest.trim();
        true
    } else {
        false
    };

    // Leading label(s): `name:` — but careful not to eat `B:` (handled) or
    // mistake operand colons (there are none in this ISA).
    while let Some(pos) = text.find(':') {
        let (head, tail) = text.split_at(pos);
        let head = head.trim();
        if head.is_empty() || !head.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(line, format!("bad label `{head}`")));
        }
        builder.label(head);
        text = tail[1..].trim();
        if text.is_empty() {
            return Ok(());
        }
    }

    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let ops = split_operands(rest);
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    let push = |builder: &mut StreamBuilder, instr: Instr| {
        builder.op(instr, barrier);
    };

    match mnemonic {
        "li" => {
            want(2)?;
            push(
                builder,
                Instr::Li {
                    rd: parse_reg(&ops[0], line)?,
                    imm: parse_imm(&ops[1], line)?,
                },
            );
        }
        "mov" => {
            want(2)?;
            push(
                builder,
                Instr::Mov {
                    rd: parse_reg(&ops[0], line)?,
                    rs: parse_reg(&ops[1], line)?,
                },
            );
        }
        "add" | "sub" | "mul" => {
            want(3)?;
            let rd = parse_reg(&ops[0], line)?;
            let rs1 = parse_reg(&ops[1], line)?;
            let rs2 = parse_reg(&ops[2], line)?;
            push(
                builder,
                match mnemonic {
                    "add" => Instr::Add { rd, rs1, rs2 },
                    "sub" => Instr::Sub { rd, rs1, rs2 },
                    _ => Instr::Mul { rd, rs1, rs2 },
                },
            );
        }
        "addi" | "muli" | "divi" => {
            want(3)?;
            let rd = parse_reg(&ops[0], line)?;
            let rs = parse_reg(&ops[1], line)?;
            let imm = parse_imm(&ops[2], line)?;
            push(
                builder,
                match mnemonic {
                    "addi" => Instr::Addi { rd, rs, imm },
                    "muli" => Instr::Muli { rd, rs, imm },
                    _ => Instr::Divi { rd, rs, imm },
                },
            );
        }
        "ld" => {
            want(2)?;
            let rd = parse_reg(&ops[0], line)?;
            let (rs, offset) = parse_mem(&ops[1], line)?;
            push(builder, Instr::Load { rd, rs, offset });
        }
        "st" => {
            want(2)?;
            let rs = parse_reg(&ops[0], line)?;
            let (rb, offset) = parse_mem(&ops[1], line)?;
            push(builder, Instr::Store { rs, rb, offset });
        }
        "faa" => {
            want(3)?;
            let rd = parse_reg(&ops[0], line)?;
            let (rb, offset) = parse_mem(&ops[1], line)?;
            let imm = parse_imm(&ops[2], line)?;
            push(
                builder,
                Instr::FetchAdd {
                    rd,
                    rb,
                    offset,
                    imm,
                },
            );
        }
        "j" => {
            want(1)?;
            builder.jump(ops[0].clone(), barrier);
        }
        "call" => {
            want(1)?;
            builder.call(ops[0].clone(), barrier);
        }
        "ret" => {
            want(0)?;
            push(builder, Instr::Ret);
        }
        "trap" => {
            want(1)?;
            let cause = parse_imm(&ops[0], line)?;
            let cause = u16::try_from(cause).map_err(|_| err(line, "trap cause out of range"))?;
            push(builder, Instr::Trap { cause });
        }
        "setmask" => {
            want(1)?;
            let mask = parse_imm(&ops[0], line)?;
            push(builder, Instr::SetMask { mask: mask as u64 });
        }
        "settag" => {
            want(1)?;
            let tag = parse_imm(&ops[0], line)?;
            let tag = u16::try_from(tag).map_err(|_| err(line, "tag out of range"))?;
            push(builder, Instr::SetTag { tag });
        }
        "nop" => {
            want(0)?;
            push(builder, Instr::Nop);
        }
        "halt" => {
            want(0)?;
            push(builder, Instr::Halt);
        }
        other => {
            if let Some(cond) = cond_of(other) {
                want(3)?;
                let rs1 = parse_reg(&ops[0], line)?;
                let rs2 = parse_reg(&ops[1], line)?;
                if barrier {
                    builder.fuzzy_branch(cond, rs1, rs2, ops[2].clone());
                } else {
                    builder.plain_branch(cond, rs1, rs2, ops[2].clone());
                }
            } else {
                return Err(err(line, format!("unknown mnemonic `{other}`")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Op};

    #[test]
    fn assembles_arithmetic_and_memory() {
        let s = assemble_stream(
            "li r1, 0x10\nadd r2, r1, r1\nld r3, [r1+4]\nst r3, [r1-2]\nfaa r4, [r1], 1\nhalt\n",
        )
        .unwrap();
        assert_eq!(s.ops()[0], Op::plain(Instr::Li { rd: 1, imm: 16 }));
        assert_eq!(
            s.ops()[2],
            Op::plain(Instr::Load {
                rd: 3,
                rs: 1,
                offset: 4
            })
        );
        assert_eq!(
            s.ops()[3],
            Op::plain(Instr::Store {
                rs: 3,
                rb: 1,
                offset: -2
            })
        );
        assert_eq!(
            s.ops()[4],
            Op::plain(Instr::FetchAdd {
                rd: 4,
                rb: 1,
                offset: 0,
                imm: 1
            })
        );
    }

    #[test]
    fn barrier_marker_sets_the_bit() {
        let s = assemble_stream("nop\nB: nop\nB: addi r1, r1, 1\nhalt\n").unwrap();
        assert!(!s.ops()[0].barrier);
        assert!(s.ops()[1].barrier);
        assert!(s.ops()[2].barrier);
        assert!(!s.ops()[3].barrier);
    }

    #[test]
    fn labels_and_branches_resolve() {
        let src = "li r1, 0\nli r2, 3\nloop:\naddi r1, r1, 1\nblt r1, r2, loop\nhalt\n";
        let s = assemble_stream(src).unwrap();
        assert_eq!(s.ops()[3].instr.branch_target(), Some(2));
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let s = assemble_stream("start: nop\nj start\n").unwrap();
        assert_eq!(s.ops()[1].instr.branch_target(), Some(0));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = assemble_stream("; header\n\n# another\nnop ; trailing\nhalt\n").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble_stream("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn undefined_label_reports_error() {
        assert!(assemble_stream("j nowhere\n").is_err());
    }

    #[test]
    fn multi_stream_program() {
        let src = ".stream\nli r1, 1\nhalt\n.stream\nli r1, 2\nhalt\n";
        let p = assemble_program(src).unwrap();
        assert_eq!(p.num_procs(), 2);
        assert_eq!(
            p.streams()[1].ops()[0],
            Op::plain(Instr::Li { rd: 1, imm: 2 })
        );
    }

    #[test]
    fn settag_and_setmask() {
        let s = assemble_stream("setmask 0b110\nsettag 3\nhalt\n").unwrap();
        assert_eq!(s.ops()[0], Op::plain(Instr::SetMask { mask: 0b110 }));
        assert_eq!(s.ops()[1], Op::plain(Instr::SetTag { tag: 3 }));
    }

    #[test]
    fn word_directives_preload_memory() {
        let src = ".word 5 42\n.word 0x10 -3\nld r1, [r0+5]\nhalt\n";
        let a = assemble(src).unwrap();
        assert_eq!(a.data, vec![(5, 42), (16, -3)]);
        assert_eq!(a.program.num_procs(), 1);

        use crate::builder::MachineBuilder;
        let mut m = MachineBuilder::new(a.program)
            .preload(a.data)
            .build()
            .unwrap();
        assert!(m.run(100).unwrap().is_halted());
        assert_eq!(m.procs()[0].reg(1), 42);
        assert_eq!(m.memory().peek(16), -3);
    }

    #[test]
    fn bad_word_directive_reports_line() {
        let e = assemble("nop\n.word 5\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn assembled_program_runs() {
        use crate::machine::{Machine, MachineConfig};
        let src = "\
.stream
    li r1, 0
    li r2, 5
loop:
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
.stream
    li r1, 0
    li r2, 5
loop:
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
";
        let p = assemble_program(src).unwrap();
        let mut m = Machine::new(p, MachineConfig::default()).unwrap();
        assert!(m.run(100_000).unwrap().is_halted());
        assert_eq!(m.stats().sync_events, 5);
    }
}
