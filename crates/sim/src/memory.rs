//! The shared-memory system: banks, caches, latency and hot-spot modelling.
//!
//! The paper's Sec. 1 argument against shared-variable barriers is that
//! they "cause hot-spot accesses": every processor read-modify-writes the
//! same location, serializing at the memory module. This model captures
//! that with banked memory (requests to a busy bank queue up) plus an
//! optional per-processor cache (write-through, invalidate-on-remote-write)
//! and an optional probabilistic miss model used to inject the *drift*
//! between processors that Sec. 1 attributes to cache misses.

use fuzzy_util::SplitMix64;

/// Kind of memory access, for statistics and bank occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (fetch-and-add).
    Rmw,
}

/// Configuration of the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Memory size in words.
    pub size_words: usize,
    /// Number of interleaved banks (`addr % banks`); at least 1.
    pub banks: usize,
    /// Latency of a cache hit (or of every access when no cache and no
    /// probabilistic misses are configured).
    pub hit_latency: u64,
    /// Extra cycles added on a miss (cache miss or probabilistic miss).
    pub miss_penalty: u64,
    /// How many cycles a request occupies its bank; concurrent requests to
    /// the same bank queue behind each other — the hot-spot mechanism.
    pub bank_occupancy: u64,
    /// Optional per-processor direct-mapped cache.
    pub cache: Option<CacheConfig>,
    /// Optional probability (0.0–1.0) that an uncached access misses;
    /// models drift from cache misses without simulating a cache.
    pub miss_rate: f64,
    /// Seed for the per-processor miss RNGs.
    pub seed: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            size_words: 1 << 16,
            banks: 8,
            hit_latency: 1,
            miss_penalty: 10,
            bank_occupancy: 2,
            cache: None,
            miss_rate: 0.0,
            seed: 0x5eed,
        }
    }
}

/// Direct-mapped cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cache lines (power of two recommended).
    pub lines: usize,
    /// Words per line (power of two recommended).
    pub words_per_line: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            lines: 64,
            words_per_line: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct DirectCache {
    cfg: CacheConfig,
    /// `tags[line]`: Some(line address) if valid.
    tags: Vec<Option<usize>>,
}

impl DirectCache {
    fn new(cfg: CacheConfig) -> Self {
        DirectCache {
            cfg,
            tags: vec![None; cfg.lines],
        }
    }

    fn line_addr(&self, addr: usize) -> usize {
        addr / self.cfg.words_per_line
    }

    fn slot(&self, addr: usize) -> usize {
        self.line_addr(addr) % self.cfg.lines
    }

    fn lookup(&self, addr: usize) -> bool {
        self.tags[self.slot(addr)] == Some(self.line_addr(addr))
    }

    fn fill(&mut self, addr: usize) {
        let slot = self.slot(addr);
        self.tags[slot] = Some(self.line_addr(addr));
    }

    fn invalidate(&mut self, addr: usize) {
        let slot = self.slot(addr);
        if self.tags[slot] == Some(self.line_addr(addr)) {
            self.tags[slot] = None;
        }
    }
}

/// Per-processor memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total accesses.
    pub accesses: u64,
    /// Cache or probabilistic misses.
    pub misses: u64,
    /// Cycles spent queued behind a busy bank (hot-spot contention).
    pub bank_wait_cycles: u64,
}

/// Out-of-bounds memory access error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBounds {
    /// The offending word address.
    pub addr: i64,
    /// The memory size in words.
    pub size: usize,
}

impl std::fmt::Display for OutOfBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory access at {} outside 0..{}", self.addr, self.size)
    }
}

impl std::error::Error for OutOfBounds {}

/// The shared memory of the simulated machine.
#[derive(Debug)]
pub struct Memory {
    cfg: MemoryConfig,
    data: Vec<i64>,
    /// Cycle at which each bank next becomes free.
    bank_free: Vec<u64>,
    caches: Vec<DirectCache>,
    rngs: Vec<SplitMix64>,
    stats: Vec<MemStats>,
}

impl Memory {
    /// Creates the memory system for `num_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.banks == 0` or `cfg.size_words == 0`, or if
    /// `cfg.miss_rate` is outside `[0, 1]`.
    #[must_use]
    pub fn new(cfg: MemoryConfig, num_procs: usize) -> Self {
        assert!(cfg.banks > 0, "memory needs at least one bank");
        assert!(cfg.size_words > 0, "memory needs at least one word");
        assert!(
            (0.0..=1.0).contains(&cfg.miss_rate),
            "miss rate must be a probability"
        );
        let caches = match cfg.cache {
            Some(c) => (0..num_procs).map(|_| DirectCache::new(c)).collect(),
            None => Vec::new(),
        };
        Memory {
            bank_free: vec![0; cfg.banks],
            caches,
            rngs: (0..num_procs)
                .map(|p| SplitMix64::seed_from_u64(cfg.seed.wrapping_add(p as u64 * 0x9E37_79B9)))
                .collect(),
            stats: vec![MemStats::default(); num_procs],
            data: vec![0; cfg.size_words],
            cfg,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Direct (zero-time) read, for loading initial data and inspecting
    /// results from the host.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn peek(&self, addr: usize) -> i64 {
        self.data[addr]
    }

    /// Direct (zero-time) write from the host.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn poke(&mut self, addr: usize, value: i64) {
        self.data[addr] = value;
    }

    /// Per-processor statistics.
    #[must_use]
    pub fn stats(&self, proc: usize) -> MemStats {
        self.stats[proc]
    }

    fn check(&self, addr: i64) -> Result<usize, OutOfBounds> {
        if addr < 0 || addr as usize >= self.cfg.size_words {
            Err(OutOfBounds {
                addr,
                size: self.cfg.size_words,
            })
        } else {
            Ok(addr as usize)
        }
    }

    /// Computes access latency (bank queueing + hit/miss) and updates bank
    /// and cache state. Returns total cycles from issue to completion.
    fn access_latency(&mut self, proc: usize, addr: usize, kind: AccessKind, cycle: u64) -> u64 {
        self.stats[proc].accesses += 1;

        // Cache lookup: only reads can hit; writes and RMWs always go to
        // memory (write-through) but refresh the writer's cache line.
        let cached = !self.caches.is_empty();
        if cached && kind == AccessKind::Read && self.caches[proc].lookup(addr) {
            return self.cfg.hit_latency;
        }

        // Probabilistic miss model (used when no cache is configured).
        let prob_miss = !cached
            && kind == AccessKind::Read
            && self.cfg.miss_rate > 0.0
            && self.rngs[proc].next_f64() < self.cfg.miss_rate;

        // A read reaching this point with a cache configured has missed;
        // writes and RMWs always travel to memory (write-through) but are
        // not counted as misses.
        let is_miss = if cached {
            kind == AccessKind::Read
        } else {
            prob_miss
        };
        let mut service = self.cfg.hit_latency;
        if is_miss {
            self.stats[proc].misses += 1;
            service += self.cfg.miss_penalty;
        }

        // Bank queueing: the request starts when the bank frees up; the
        // bank stays occupied for `bank_occupancy` cycles after the start.
        let bank = addr % self.cfg.banks;
        let start = self.bank_free[bank].max(cycle);
        self.stats[proc].bank_wait_cycles += start - cycle;
        self.bank_free[bank] = start + self.cfg.bank_occupancy;

        // Fill the reader's cache line.
        if cached {
            self.caches[proc].fill(addr);
        }

        (start - cycle) + service
    }

    fn invalidate_others(&mut self, proc: usize, addr: usize) {
        for (p, cache) in self.caches.iter_mut().enumerate() {
            if p != proc {
                cache.invalidate(addr);
            }
        }
    }

    /// A load by `proc` at `cycle`. Returns `(value, latency_cycles)`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBounds`] if the address is outside memory.
    pub fn read(&mut self, proc: usize, addr: i64, cycle: u64) -> Result<(i64, u64), OutOfBounds> {
        let addr = self.check(addr)?;
        let latency = self.access_latency(proc, addr, AccessKind::Read, cycle);
        Ok((self.data[addr], latency))
    }

    /// A store by `proc` at `cycle`. Returns the latency in cycles.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBounds`] if the address is outside memory.
    pub fn write(
        &mut self,
        proc: usize,
        addr: i64,
        value: i64,
        cycle: u64,
    ) -> Result<u64, OutOfBounds> {
        let addr = self.check(addr)?;
        let latency = self.access_latency(proc, addr, AccessKind::Write, cycle);
        self.data[addr] = value;
        self.invalidate_others(proc, addr);
        Ok(latency)
    }

    /// An atomic fetch-and-add by `proc` at `cycle`. Returns
    /// `(old_value, latency_cycles)`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBounds`] if the address is outside memory.
    pub fn fetch_add(
        &mut self,
        proc: usize,
        addr: i64,
        delta: i64,
        cycle: u64,
    ) -> Result<(i64, u64), OutOfBounds> {
        let addr = self.check(addr)?;
        let latency = self.access_latency(proc, addr, AccessKind::Rmw, cycle);
        let old = self.data[addr];
        self.data[addr] = old.wrapping_add(delta);
        self.invalidate_others(proc, addr);
        Ok((old, latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_config() -> MemoryConfig {
        MemoryConfig {
            banks: 1,
            bank_occupancy: 1,
            miss_rate: 0.0,
            cache: None,
            ..MemoryConfig::default()
        }
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new(flat_config(), 1);
        m.write(0, 10, 42, 0).unwrap();
        let (v, _) = m.read(0, 10, 5).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mut m = Memory::new(flat_config(), 2);
        let (old, _) = m.fetch_add(0, 0, 5, 0).unwrap();
        assert_eq!(old, 0);
        let (old, _) = m.fetch_add(1, 0, 3, 1).unwrap();
        assert_eq!(old, 5);
        assert_eq!(m.peek(0), 8);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Memory::new(flat_config(), 1);
        assert!(m.read(0, -1, 0).is_err());
        assert!(m.write(0, 1 << 20, 0, 0).is_err());
    }

    #[test]
    fn bank_contention_serializes_same_bank() {
        // Two simultaneous requests to the same bank: the second waits.
        let mut cfg = flat_config();
        cfg.bank_occupancy = 4;
        let mut m = Memory::new(cfg, 2);
        let (_, l0) = m.read(0, 0, 100).unwrap();
        let (_, l1) = m.read(1, 0, 100).unwrap();
        assert!(
            l1 > l0,
            "second access ({l1}) must queue behind first ({l0})"
        );
        assert_eq!(m.stats(1).bank_wait_cycles, 4);
        assert_eq!(m.stats(0).bank_wait_cycles, 0);
    }

    #[test]
    fn different_banks_do_not_contend() {
        let mut cfg = flat_config();
        cfg.banks = 2;
        cfg.bank_occupancy = 4;
        let mut m = Memory::new(cfg, 2);
        let (_, l0) = m.read(0, 0, 100).unwrap();
        let (_, l1) = m.read(1, 1, 100).unwrap();
        assert_eq!(l0, l1);
    }

    #[test]
    fn cache_hit_is_fast_and_skips_bank() {
        let mut cfg = flat_config();
        cfg.cache = Some(CacheConfig::default());
        cfg.miss_penalty = 20;
        let mut m = Memory::new(cfg, 1);
        let (_, miss) = m.read(0, 8, 0).unwrap();
        let (_, hit) = m.read(0, 8, 50).unwrap();
        assert!(miss > hit, "miss {miss} should exceed hit {hit}");
        assert_eq!(hit, 1);
        assert_eq!(m.stats(0).misses, 1);
    }

    #[test]
    fn remote_write_invalidates_cached_line() {
        let mut cfg = flat_config();
        cfg.cache = Some(CacheConfig::default());
        let mut m = Memory::new(cfg, 2);
        let _ = m.read(0, 8, 0).unwrap(); // proc 0 caches line
        m.write(1, 8, 7, 10).unwrap(); // proc 1 writes through
        let (v, lat) = m.read(0, 8, 20).unwrap();
        assert_eq!(v, 7, "coherence: proc 0 must see proc 1's store");
        assert!(lat > 1, "the invalidated line must miss");
    }

    #[test]
    fn probabilistic_misses_are_deterministic_per_seed() {
        let mut cfg = flat_config();
        cfg.miss_rate = 0.5;
        let lat_a: Vec<u64> = {
            let mut m = Memory::new(cfg.clone(), 1);
            (0..32).map(|i| m.read(0, i, 0).unwrap().1).collect()
        };
        let lat_b: Vec<u64> = {
            let mut m = Memory::new(cfg, 1);
            (0..32).map(|i| m.read(0, i, 0).unwrap().1).collect()
        };
        assert_eq!(lat_a, lat_b, "same seed must give same latencies");
        assert!(
            lat_a.iter().any(|&l| l > 1),
            "with 50% miss rate some access should miss"
        );
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        // Direct-mapped: two addresses `lines * words_per_line` apart map
        // to the same slot and keep evicting each other.
        let mut cfg = flat_config();
        cfg.cache = Some(CacheConfig {
            lines: 4,
            words_per_line: 4,
        });
        let mut m = Memory::new(cfg, 1);
        let a = 0i64;
        let b = (4 * 4) as i64; // same slot as a
        let (_, l1) = m.read(0, a, 0).unwrap();
        let (_, l2) = m.read(0, b, 10).unwrap(); // evicts a
        let (_, l3) = m.read(0, a, 20).unwrap(); // misses again
        assert!(l1 > 1 && l2 > 1 && l3 > 1, "{l1} {l2} {l3}");
        assert_eq!(m.stats(0).misses, 3);
    }

    #[test]
    fn same_line_neighbours_hit() {
        let mut cfg = flat_config();
        cfg.cache = Some(CacheConfig {
            lines: 4,
            words_per_line: 4,
        });
        let mut m = Memory::new(cfg, 1);
        let (_, miss) = m.read(0, 8, 0).unwrap();
        let (_, hit) = m.read(0, 9, 10).unwrap(); // same 4-word line
        assert!(miss > hit);
        assert_eq!(m.stats(0).misses, 1);
    }

    #[test]
    fn fetch_add_visible_to_other_procs_with_caches() {
        let mut cfg = flat_config();
        cfg.cache = Some(CacheConfig::default());
        let mut m = Memory::new(cfg, 2);
        let _ = m.read(1, 0, 0).unwrap(); // proc 1 caches the line
        let (old, _) = m.fetch_add(0, 0, 5, 10).unwrap();
        assert_eq!(old, 0);
        let (v, _) = m.read(1, 0, 20).unwrap();
        assert_eq!(v, 5, "RMW must invalidate the remote cached line");
    }

    #[test]
    fn peek_poke_do_not_touch_stats() {
        let mut m = Memory::new(flat_config(), 1);
        m.poke(3, 9);
        assert_eq!(m.peek(3), 9);
        assert_eq!(m.stats(0).accesses, 0);
    }
}
