//! The mini RISC instruction set executed by the simulator.
//!
//! The paper implements the fuzzy barrier "in a multiprocessor system that
//! uses RISC processors" and distinguishes barrier-region instructions from
//! non-barrier instructions with "a single bit in each instruction"
//! (Sec. 6). [`Op`] is exactly that pairing: an [`Instr`] plus the
//! barrier-region bit.

use std::fmt;

/// A register index (`r0`–`r31`).
pub type Reg = u8;

/// Number of general-purpose registers per processor.
pub const NUM_REGS: usize = 32;

/// Branch/comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
}

impl Cond {
    /// Evaluates the condition on two operands.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }

    /// The condition's assembler mnemonic suffix (`eq`, `ne`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
        }
    }
}

/// One machine instruction.
///
/// Branch targets are absolute instruction indices within the stream
/// (labels are resolved by the assembler or stream builder before
/// execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd ← imm`
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd ← rs`
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd ← rs1 + rs2`
    Add {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd ← rs1 − rs2`
    Sub {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd ← rs1 × rs2`
    Mul {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd ← rs + imm`
    Addi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd ← rs × imm`
    Muli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd ← rs ÷ imm` (truncating; `imm` must be non-zero).
    Divi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate divisor.
        imm: i64,
    },
    /// `rd ← mem[rs + offset]`
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs: Reg,
        /// Word offset.
        offset: i64,
    },
    /// `mem[rb + offset] ← rs`
    Store {
        /// Value register.
        rs: Reg,
        /// Base address register.
        rb: Reg,
        /// Word offset.
        offset: i64,
    },
    /// Atomic fetch-and-add: `rd ← mem[rb + offset]; mem[rb + offset] += imm`.
    /// The primitive shared-variable software barriers are built from.
    FetchAdd {
        /// Destination register (receives the old value).
        rd: Reg,
        /// Base address register.
        rb: Reg,
        /// Word offset.
        offset: i64,
        /// Added value.
        imm: i64,
    },
    /// Unconditional jump to instruction index `target`.
    Jump {
        /// Absolute instruction index.
        target: usize,
    },
    /// Conditional branch: if `cond(rs1, rs2)` jump to `target`.
    Branch {
        /// The comparison.
        cond: Cond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Absolute instruction index.
        target: usize,
    },
    /// Sets the processor's barrier participation mask (bit *i* ⇔
    /// synchronize with processor *i*). Sec. 6.
    SetMask {
        /// Raw mask bits.
        mask: u64,
    },
    /// Sets the processor's barrier tag (0 = not participating). Sec. 6.
    SetTag {
        /// Raw tag value.
        tag: u16,
    },
    /// No operation. Inserted to represent an otherwise-empty barrier
    /// region (Sec. 6: "a null operation is introduced to create a barrier
    /// region").
    Nop,
    /// Procedure call: push the return address and jump to `target`.
    /// Sec. 9 lists "allowing procedure calls from barrier regions" as
    /// under investigation; this implementation resolves it by letting the
    /// callee's own barrier-region bits govern (see the `machine` module
    /// docs).
    Call {
        /// Absolute instruction index of the procedure entry.
        target: usize,
    },
    /// Return from a procedure (or from an interrupt/trap handler).
    Ret,
    /// Synchronous trap to the processor's registered trap handler —
    /// "traps … are often used in RISC based systems to implement floating
    /// point operations" (Sec. 9). The barrier unit's state is frozen for
    /// the duration of the handler.
    Trap {
        /// Cause code, written to the trap-cause register (r31 by
        /// convention) for the handler to inspect.
        cause: u16,
    },
    /// Stops the processor.
    Halt,
}

impl Instr {
    /// Whether the instruction accesses shared memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::FetchAdd { .. }
        )
    }

    /// Whether the instruction may transfer control.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. }
                | Instr::Branch { .. }
                | Instr::Call { .. }
                | Instr::Ret
                | Instr::Trap { .. }
        )
    }

    /// The branch destination, if any. `Call` targets are reported by
    /// [`Instr::call_target`] instead, since the region rules treat calls
    /// differently (the callee's own bits govern).
    #[must_use]
    pub fn branch_target(&self) -> Option<usize> {
        match self {
            Instr::Jump { target } | Instr::Branch { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// The call destination, if any.
    #[must_use]
    pub fn call_target(&self) -> Option<usize> {
        match self {
            Instr::Call { target } => Some(*target),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Li { rd, imm } => write!(f, "li r{rd}, {imm}"),
            Instr::Mov { rd, rs } => write!(f, "mov r{rd}, r{rs}"),
            Instr::Add { rd, rs1, rs2 } => write!(f, "add r{rd}, r{rs1}, r{rs2}"),
            Instr::Sub { rd, rs1, rs2 } => write!(f, "sub r{rd}, r{rs1}, r{rs2}"),
            Instr::Mul { rd, rs1, rs2 } => write!(f, "mul r{rd}, r{rs1}, r{rs2}"),
            Instr::Addi { rd, rs, imm } => write!(f, "addi r{rd}, r{rs}, {imm}"),
            Instr::Muli { rd, rs, imm } => write!(f, "muli r{rd}, r{rs}, {imm}"),
            Instr::Divi { rd, rs, imm } => write!(f, "divi r{rd}, r{rs}, {imm}"),
            Instr::Load { rd, rs, offset } => write!(f, "ld r{rd}, [r{rs}+{offset}]"),
            Instr::Store { rs, rb, offset } => write!(f, "st r{rs}, [r{rb}+{offset}]"),
            Instr::FetchAdd {
                rd,
                rb,
                offset,
                imm,
            } => write!(f, "faa r{rd}, [r{rb}+{offset}], {imm}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "b{} r{rs1}, r{rs2}, @{target}", cond.mnemonic()),
            Instr::SetMask { mask } => write!(f, "setmask {mask:#b}"),
            Instr::SetTag { tag } => write!(f, "settag {tag}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Call { target } => write!(f, "call @{target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Trap { cause } => write!(f, "trap {cause}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// An instruction together with its barrier-region bit.
///
/// "The bit is one if the instruction is from a barrier region and zero
/// otherwise" (Sec. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    /// The instruction.
    pub instr: Instr,
    /// The barrier-region bit.
    pub barrier: bool,
}

impl Op {
    /// A non-barrier-region instruction.
    #[must_use]
    pub fn plain(instr: Instr) -> Self {
        Op {
            instr,
            barrier: false,
        }
    }

    /// A barrier-region instruction.
    #[must_use]
    pub fn fuzzy(instr: Instr) -> Self {
        Op {
            instr,
            barrier: true,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.barrier {
            write!(f, "B| {}", self.instr)
        } else {
            write!(f, " | {}", self.instr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_covers_all_cases() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(3, 3));
        assert!(Cond::Le.eval(2, 3));
        assert!(Cond::Gt.eval(3, 2));
        assert!(!Cond::Gt.eval(2, 2));
    }

    #[test]
    fn classification() {
        assert!(Instr::Load {
            rd: 0,
            rs: 1,
            offset: 0
        }
        .is_memory());
        assert!(Instr::FetchAdd {
            rd: 0,
            rb: 1,
            offset: 0,
            imm: 1
        }
        .is_memory());
        assert!(!Instr::Nop.is_memory());
        assert!(Instr::Jump { target: 3 }.is_control());
        assert_eq!(Instr::Jump { target: 3 }.branch_target(), Some(3));
        assert_eq!(Instr::Nop.branch_target(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(
            Op::fuzzy(Instr::Addi {
                rd: 1,
                rs: 2,
                imm: 4
            })
            .to_string(),
            "B| addi r1, r2, 4"
        );
        assert_eq!(Op::plain(Instr::Nop).to_string(), " | nop");
    }
}
