//! Shared-variable software barrier, compiled to the simulator ISA.
//!
//! This is the baseline the paper argues against in Sec. 1: a barrier
//! "easily implemented in software using one or more shared variables" that
//! (a) costs several instructions per synchronization and (b) hot-spots the
//! memory module holding the counter. Emitting it as ISA code lets the
//! experiment suite compare, on the *same* simulated machine, a software
//! spin barrier against the zero-instruction hardware fuzzy barrier.

use crate::isa::{Cond, Instr};
use crate::memory::Memory;
use crate::program::StreamBuilder;

/// Host-side snapshot of a software barrier's shared words — the
/// software-baseline analogue of the machine's sync telemetry. The
/// generation word counts completed episodes; the counter word holds the
/// arrivals pending in the episode currently forming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftBarrierProbe {
    /// Arrivals recorded for the episode currently forming (resets to 0
    /// when the last arriver releases the barrier).
    pub pending_arrivals: i64,
    /// Completed episodes (the generation word).
    pub episodes: i64,
}

/// Reads the shared words of the software barrier at `base` from host-side
/// memory. Word 0 is the arrival counter, word 1 the generation.
#[must_use]
pub fn probe_soft_barrier(memory: &Memory, base: usize) -> SoftBarrierProbe {
    SoftBarrierProbe {
        pending_arrivals: memory.peek(base),
        episodes: memory.peek(base + 1),
    }
}

/// Register conventions used by the emitted code. All four scratch
/// registers are clobbered.
#[derive(Debug, Clone, Copy)]
pub struct SoftBarrierRegs {
    /// Base register holding the barrier's memory address. Word 0 is the
    /// arrival counter, word 1 the generation number.
    pub base: u8,
    /// Scratch registers (distinct).
    pub scratch: [u8; 4],
}

impl Default for SoftBarrierRegs {
    fn default() -> Self {
        SoftBarrierRegs {
            base: 24,
            scratch: [25, 26, 27, 28],
        }
    }
}

/// Number of memory words a software barrier occupies (counter +
/// generation).
pub const SOFT_BARRIER_WORDS: usize = 2;

/// Emits only the **arrive** half of the software barrier: snapshot the
/// generation and increment the arrival counter. The snapshot register
/// (`regs.scratch[0]`) and the last-arriver flag (`regs.scratch[1]`) must
/// be preserved by the barrier-region code executed between this and
/// [`emit_soft_wait`].
///
/// This is the software fuzzy barrier of the paper's Sec. 8: splitting the
/// shared-variable barrier into an announcement and a delayed spin lets a
/// barrier region run in between.
pub fn emit_soft_arrive(builder: &mut StreamBuilder, n: i64, regs: SoftBarrierRegs) {
    let [s0, s1, s2, _s3] = regs.scratch;
    let base = regs.base;
    // s0 ← generation snapshot
    builder.plain(Instr::Load {
        rd: s0,
        rs: base,
        offset: 1,
    });
    // s1 ← old counter + 1 (my arrival rank)
    builder.plain(Instr::FetchAdd {
        rd: s1,
        rb: base,
        offset: 0,
        imm: 1,
    });
    builder.plain(Instr::Addi {
        rd: s1,
        rs: s1,
        imm: 1,
    });
    // If I am the last arriver, release everyone NOW (reset counter, bump
    // generation); my own wait will then fall straight through. Doing the
    // release at arrive time (not wait time) is what makes the split-phase
    // version correct: the last arriver may have a long barrier region.
    builder.plain(Instr::Li { rd: s2, imm: n });
    let not_last = format!("__sfa_done_{}", builder_len(builder));
    builder.plain_branch(Cond::Ne, s1, s2, not_last.clone());
    builder.plain(Instr::Li { rd: s2, imm: 0 });
    builder.plain(Instr::Store {
        rs: s2,
        rb: base,
        offset: 0,
    });
    builder.plain(Instr::Addi {
        rd: s2,
        rs: s0,
        imm: 1,
    });
    builder.plain(Instr::Store {
        rs: s2,
        rb: base,
        offset: 1,
    });
    builder.label(not_last);
    builder.plain(Instr::Nop);
}

/// Emits the **wait** half: spin until the generation moves past the
/// snapshot taken by [`emit_soft_arrive`].
pub fn emit_soft_wait(builder: &mut StreamBuilder, regs: SoftBarrierRegs) {
    let [s0, _s1, s2, _s3] = regs.scratch;
    let base = regs.base;
    let spin = format!("__sfw_spin_{}", builder_len(builder));
    builder.label(spin.clone());
    builder.plain(Instr::Load {
        rd: s2,
        rs: base,
        offset: 1,
    });
    builder.plain_branch(Cond::Eq, s2, s0, spin);
}

/// Current instruction count of a builder, used to mint unique labels.
fn builder_len(builder: &StreamBuilder) -> usize {
    builder.len()
}

/// Emits a centralized sense-counting software barrier into `builder`.
///
/// Protocol: snapshot the generation, atomically increment the arrival
/// counter; the last arriver resets the counter and bumps the generation,
/// everyone else spins on the generation word — the classic hot-spot
/// pattern.
///
/// `n` is the number of participants and `seq` a unique integer used to
/// generate fresh labels (call sites in the same stream must pass different
/// values).
pub fn emit_soft_barrier(builder: &mut StreamBuilder, n: i64, seq: usize, regs: SoftBarrierRegs) {
    let [s0, s1, s2, _s3] = regs.scratch;
    let base = regs.base;
    let spin = format!("__softb_spin_{seq}");
    let last = format!("__softb_last_{seq}");
    let done = format!("__softb_done_{seq}");

    // s0 ← generation snapshot
    builder.plain(Instr::Load {
        rd: s0,
        rs: base,
        offset: 1,
    });
    // s1 ← old counter; counter += 1
    builder.plain(Instr::FetchAdd {
        rd: s1,
        rb: base,
        offset: 0,
        imm: 1,
    });
    builder.plain(Instr::Addi {
        rd: s1,
        rs: s1,
        imm: 1,
    });
    builder.plain(Instr::Li { rd: s2, imm: n });
    builder.plain_branch(Cond::Eq, s1, s2, last.clone());
    // Spin: reload the generation until it changes — the hot-spot loop.
    builder.label(spin.clone());
    builder.plain(Instr::Load {
        rd: s2,
        rs: base,
        offset: 1,
    });
    builder.plain_branch(Cond::Eq, s2, s0, spin);
    builder.jump(done.clone(), false);
    // Last arriver: reset counter, bump generation.
    builder.label(last);
    builder.plain(Instr::Li { rd: s2, imm: 0 });
    builder.plain(Instr::Store {
        rs: s2,
        rb: base,
        offset: 0,
    });
    builder.plain(Instr::Addi {
        rd: s2,
        rs: s0,
        imm: 1,
    });
    builder.plain(Instr::Store {
        rs: s2,
        rb: base,
        offset: 1,
    });
    builder.label(done);
    builder.plain(Instr::Nop);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use crate::memory::MemoryConfig;
    use crate::program::Program;

    fn soft_barrier_program(n: usize, works: &[i64], barrier_addr: i64) -> Program {
        let streams = (0..n)
            .map(|p| {
                let mut b = StreamBuilder::new();
                b.plain(Instr::Li {
                    rd: 24,
                    imm: barrier_addr,
                });
                // Pre-barrier work.
                b.plain(Instr::Li { rd: 1, imm: 0 });
                b.plain(Instr::Li {
                    rd: 2,
                    imm: works[p],
                });
                b.label("w");
                b.plain(Instr::Addi {
                    rd: 1,
                    rs: 1,
                    imm: 1,
                });
                b.plain_branch(Cond::Lt, 1, 2, "w");
                // Publish the phase flag.
                b.plain(Instr::Li { rd: 3, imm: 1 });
                b.plain(Instr::Store {
                    rs: 3,
                    rb: 0,
                    offset: 100 + p as i64,
                });
                emit_soft_barrier(&mut b, n as i64, 0, SoftBarrierRegs::default());
                // Read the next processor's flag — must be 1.
                b.plain(Instr::Load {
                    rd: 4,
                    rs: 0,
                    offset: 100 + ((p + 1) % n) as i64,
                });
                b.plain(Instr::Halt);
                b.finish().unwrap()
            })
            .collect();
        Program::new(streams)
    }

    #[test]
    fn software_barrier_synchronizes_four_procs() {
        let p = soft_barrier_program(4, &[10, 200, 50, 120], 0);
        let cfg = MachineConfig {
            memory: MemoryConfig {
                miss_penalty: 5,
                ..MemoryConfig::default()
            },
            ..MachineConfig::default()
        };
        let mut m = Machine::new(p, cfg).unwrap();
        let out = m.run(1_000_000).unwrap();
        assert!(out.is_halted(), "outcome {out:?}");
        for proc in m.procs() {
            assert_eq!(proc.reg(4), 1, "proc {} saw a stale flag", proc.id);
        }
    }

    #[test]
    fn software_barrier_reusable_across_iterations() {
        // Each proc runs 5 barrier episodes in a loop; the generation word
        // must make the barrier reusable.
        let n = 3;
        let streams = (0..n)
            .map(|_| {
                let mut b = StreamBuilder::new();
                b.plain(Instr::Li { rd: 24, imm: 0 });
                b.plain(Instr::Li { rd: 10, imm: 0 });
                b.plain(Instr::Li { rd: 11, imm: 5 });
                b.label("iter");
                b.plain(Instr::Addi {
                    rd: 10,
                    rs: 10,
                    imm: 1,
                });
                emit_soft_barrier(&mut b, n as i64, 7, SoftBarrierRegs::default());
                b.plain_branch(Cond::Lt, 10, 11, "iter");
                b.plain(Instr::Halt);
                b.finish().unwrap()
            })
            .collect();
        let mut m = Machine::new(Program::new(streams), MachineConfig::default()).unwrap();
        let out = m.run(1_000_000).unwrap();
        assert!(out.is_halted(), "outcome {out:?}");
        // Generation must equal the number of episodes.
        assert_eq!(m.memory().peek(1), 5);
        assert_eq!(m.memory().peek(0), 0, "counter resets after each episode");
        let probe = probe_soft_barrier(m.memory(), 0);
        assert_eq!(
            probe,
            SoftBarrierProbe {
                pending_arrivals: 0,
                episodes: 5
            }
        );
    }

    #[test]
    fn hot_spot_shows_up_in_bank_waits() {
        // With everything on one bank, the spin loops of the waiting
        // processors hammer the generation word.
        let p = soft_barrier_program(4, &[1, 1, 1, 400], 0);
        let cfg = MachineConfig {
            memory: MemoryConfig {
                banks: 1,
                bank_occupancy: 3,
                ..MemoryConfig::default()
            },
            ..MachineConfig::default()
        };
        let mut m = Machine::new(p, cfg).unwrap();
        assert!(m.run(1_000_000).unwrap().is_halted());
        let total_bank_wait: u64 = (0..4).map(|p| m.memory().stats(p).bank_wait_cycles).sum();
        assert!(
            total_bank_wait > 100,
            "spinning should queue at the bank (got {total_bank_wait})"
        );
    }
}
