//! Execution statistics collected by the machine.

/// Per-processor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Instructions issued (and, in this model, executed).
    pub instructions: u64,
    /// Cycles spent stalled at a barrier exit (state iv). This is the
    /// quantity the fuzzy barrier exists to minimize.
    pub stall_cycles: u64,
    /// Cycles the processor was busy waiting on a multi-cycle instruction
    /// (dominated by memory latency).
    pub busy_cycles: u64,
    /// Number of dynamic barrier-region entries.
    pub barrier_entries: u64,
    /// Number of synchronizations this processor took part in.
    pub syncs: u64,
}

impl ProcStats {
    /// Total cycles attributable to this processor's activity so far
    /// (issue + busy + stall). Useful as a sanity cross-check against the
    /// machine clock.
    #[must_use]
    pub fn active_cycles(&self) -> u64 {
        self.instructions + self.busy_cycles + self.stall_cycles
    }
}

/// Machine-level aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Synchronization events (one per tag-group per firing cycle).
    pub sync_events: u64,
    /// Per-processor counters.
    pub procs: Vec<ProcStats>,
}

impl MachineStats {
    /// Sum of stall cycles across processors — the headline cost metric in
    /// the experiments.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.procs.iter().map(|p| p.stall_cycles).sum()
    }

    /// Sum of instructions across processors.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.procs.iter().map(|p| p.instructions).sum()
    }

    /// Fraction of processor-cycles lost to barrier stalls, in `[0, 1]`.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let total = self.cycles * self.procs.len() as u64;
        if total == 0 {
            0.0
        } else {
            self.total_stall_cycles() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_procs() {
        let stats = MachineStats {
            cycles: 100,
            sync_events: 3,
            procs: vec![
                ProcStats {
                    instructions: 50,
                    stall_cycles: 10,
                    ..ProcStats::default()
                },
                ProcStats {
                    instructions: 60,
                    stall_cycles: 30,
                    ..ProcStats::default()
                },
            ],
        };
        assert_eq!(stats.total_stall_cycles(), 40);
        assert_eq!(stats.total_instructions(), 110);
        assert!((stats.stall_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_stall_fraction() {
        assert_eq!(MachineStats::default().stall_fraction(), 0.0);
    }

    #[test]
    fn active_cycles_adds_components() {
        let p = ProcStats {
            instructions: 5,
            stall_cycles: 2,
            busy_cycles: 3,
            ..ProcStats::default()
        };
        assert_eq!(p.active_cycles(), 10);
    }
}
