//! Execution statistics collected by the machine.
//!
//! Mirrors the telemetry schema of the thread library
//! (`fuzzy-barrier`'s `stats` module) with **cycles** in place of
//! nanoseconds: a power-of-two-cycle stall histogram, per-sync-event
//! arrival spread (first vs last barrier-region entry of the group), and
//! per-processor counters.

use fuzzy_util::Json;

/// Number of histogram buckets: one per power of two of a `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket histogram over power-of-two cycle ranges — the
/// single-threaded (simulator) twin of the thread library's
/// `StallHistogram`. Bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (bucket 0 also absorbs 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleHistogram {
    /// Count per power-of-two bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl CycleHistogram {
    /// The bucket index a value lands in: `floor(log2(v))`, with 0 for 0.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive lower and upper bound of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS);
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i == 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        };
        (lo, hi)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }

    /// JSON form: only non-empty buckets, each with its inclusive value
    /// range, in the shared telemetry schema (`unit` is `"cycles"` here;
    /// the thread library uses `"ns"`).
    #[must_use]
    pub fn to_json(&self, unit: &str) -> Json {
        let entries: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| {
                let (lo, hi) = Self::bucket_bounds(i);
                Json::obj()
                    .field("bucket", i)
                    .field("lo", lo)
                    .field("hi", hi)
                    .field("count", count)
            })
            .collect();
        Json::obj()
            .field("unit", unit)
            .field("total", self.total())
            .field("buckets", Json::Arr(entries))
    }
}

/// Machine-level synchronization telemetry, in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncTelemetry {
    /// Histogram of individual stall durations (cycles a processor spent
    /// in state iv before its group synchronized).
    pub stall_hist: CycleHistogram,
    /// Sync events with a measured arrival spread.
    pub spread_events: u64,
    /// Sum of per-event spreads (first-to-last barrier-region entry).
    pub spread_total_cycles: u64,
    /// Largest single-event spread.
    pub spread_max_cycles: u64,
    /// Spread of the most recent sync event.
    pub spread_last_cycles: u64,
}

impl SyncTelemetry {
    /// Records the arrival spread of one sync event.
    pub fn record_spread(&mut self, spread: u64) {
        self.spread_events += 1;
        self.spread_total_cycles += spread;
        self.spread_max_cycles = self.spread_max_cycles.max(spread);
        self.spread_last_cycles = spread;
    }

    /// Mean arrival spread per sync event, in cycles.
    #[must_use]
    pub fn mean_spread_cycles(&self) -> f64 {
        if self.spread_events == 0 {
            0.0
        } else {
            self.spread_total_cycles as f64 / self.spread_events as f64
        }
    }
}

/// Per-processor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Instructions issued (and, in this model, executed).
    pub instructions: u64,
    /// Cycles spent stalled at a barrier exit (state iv). This is the
    /// quantity the fuzzy barrier exists to minimize.
    pub stall_cycles: u64,
    /// Distinct stall episodes (entries into state iv) — the cycle-domain
    /// twin of the thread library's per-participant `stalls` counter.
    pub stall_events: u64,
    /// Cycles the processor was busy waiting on a multi-cycle instruction
    /// (dominated by memory latency).
    pub busy_cycles: u64,
    /// Number of dynamic barrier-region entries.
    pub barrier_entries: u64,
    /// Number of synchronizations this processor took part in.
    pub syncs: u64,
}

impl ProcStats {
    /// Total cycles attributable to this processor's activity so far
    /// (issue + busy + stall). Useful as a sanity cross-check against the
    /// machine clock.
    #[must_use]
    pub fn active_cycles(&self) -> u64 {
        self.instructions + self.busy_cycles + self.stall_cycles
    }
}

/// Machine-level aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Synchronization events (one per tag-group per firing cycle).
    pub sync_events: u64,
    /// Stall histogram and arrival-spread telemetry, in cycles.
    pub sync: SyncTelemetry,
    /// Per-processor counters.
    pub procs: Vec<ProcStats>,
}

impl MachineStats {
    /// Sum of stall cycles across processors — the headline cost metric in
    /// the experiments.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.procs.iter().map(|p| p.stall_cycles).sum()
    }

    /// Sum of instructions across processors.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.procs.iter().map(|p| p.instructions).sum()
    }

    /// Fraction of processor-cycles lost to barrier stalls, in `[0, 1]`.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let total = self.cycles * self.procs.len() as u64;
        if total == 0 {
            0.0
        } else {
            self.total_stall_cycles() as f64 / total as f64
        }
    }

    /// JSON form of the whole snapshot in the shared telemetry schema
    /// (the `--stats-json` output of `fsim` and the `exp_*` binaries).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("cycles", self.cycles)
            .field("sync_events", self.sync_events)
            .field("stall_hist", self.sync.stall_hist.to_json("cycles"))
            .field(
                "spread",
                Json::obj()
                    .field("events", self.sync.spread_events)
                    .field("total_cycles", self.sync.spread_total_cycles)
                    .field("max_cycles", self.sync.spread_max_cycles)
                    .field("last_cycles", self.sync.spread_last_cycles)
                    .field("mean_cycles", self.sync.mean_spread_cycles()),
            )
            .field(
                "procs",
                Json::Arr(
                    self.procs
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("instructions", p.instructions)
                                .field("stall_cycles", p.stall_cycles)
                                .field("stall_events", p.stall_events)
                                .field("busy_cycles", p.busy_cycles)
                                .field("barrier_entries", p.barrier_entries)
                                .field("syncs", p.syncs)
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_procs() {
        let stats = MachineStats {
            cycles: 100,
            sync_events: 3,
            sync: SyncTelemetry::default(),
            procs: vec![
                ProcStats {
                    instructions: 50,
                    stall_cycles: 10,
                    ..ProcStats::default()
                },
                ProcStats {
                    instructions: 60,
                    stall_cycles: 30,
                    ..ProcStats::default()
                },
            ],
        };
        assert_eq!(stats.total_stall_cycles(), 40);
        assert_eq!(stats.total_instructions(), 110);
        assert!((stats.stall_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_stall_fraction() {
        assert_eq!(MachineStats::default().stall_fraction(), 0.0);
    }

    #[test]
    fn cycle_histogram_buckets_tile_the_u64_range() {
        let mut prev_hi = None;
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = CycleHistogram::bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            assert_eq!(CycleHistogram::bucket_index(lo.max(1)), i);
            assert_eq!(CycleHistogram::bucket_index(hi), i);
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
        assert_eq!(CycleHistogram::bucket_index(0), 0);
        assert_eq!(CycleHistogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn cycle_histogram_records_and_merges() {
        let mut a = CycleHistogram::default();
        a.record(0);
        a.record(1);
        a.record(7);
        a.record(u64::MAX);
        assert_eq!(a.total(), 4);
        assert_eq!(a.buckets[0], 2);
        assert_eq!(a.buckets[2], 1);
        assert_eq!(a.buckets[63], 1);
        let mut b = CycleHistogram::default();
        b.record(7);
        b.merge(&a);
        assert_eq!(b.buckets[2], 2);
        assert_eq!(b.total(), 5);
        assert!(!b.is_empty());
        assert!(CycleHistogram::default().is_empty());
    }

    #[test]
    fn sync_telemetry_tracks_spread() {
        let mut t = SyncTelemetry::default();
        assert_eq!(t.mean_spread_cycles(), 0.0);
        t.record_spread(4);
        t.record_spread(10);
        t.record_spread(1);
        assert_eq!(t.spread_events, 3);
        assert_eq!(t.spread_total_cycles, 15);
        assert_eq!(t.spread_max_cycles, 10);
        assert_eq!(t.spread_last_cycles, 1);
        assert!((t.mean_spread_cycles() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn active_cycles_adds_components() {
        let p = ProcStats {
            instructions: 5,
            stall_cycles: 2,
            busy_cycles: 3,
            ..ProcStats::default()
        };
        assert_eq!(p.active_cycles(), 10);
    }
}
