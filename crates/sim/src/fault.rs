//! Ready-line fault injection and watchdog-driven eviction.
//!
//! The paper's hardware assumes every processor's ready line eventually
//! reaches the broadcast network. This module lets experiments break that
//! assumption deterministically — a processor's outgoing ready broadcast
//! can be delayed, made to stutter, or severed permanently — and pairs it
//! with the recovery side: each [`crate::barrier_hw::BarrierUnit`] carries
//! a *watchdog register* which, after a configurable cycle budget of
//! ready-but-unsynchronized waiting, raises an **eviction interrupt**. The
//! hardware response mirrors the paper's Sec. 5 mask update for
//! dynamically terminating streams, applied to a failed one: the
//! non-responsive partner is cleared from every unit's mask (and its tag
//! zeroed), so the survivors synchronize without it from the next
//! broadcast evaluation onward.
//!
//! The machine records one [`EvictionEvent`] per eviction, timestamping
//! the watchdog expiry and the survivors' first subsequent
//! synchronization — their difference is the **recovery latency** in
//! cycles that `exp_fault_recovery` reports.

use fuzzy_util::SplitMix64;

/// How a processor's outgoing ready-line broadcast misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadyFault {
    /// The broadcast is suppressed for `cycles` cycles after onset, then
    /// heals (a transient glitch: the victim recovers on its own).
    Delay {
        /// Length of the outage in cycles.
        cycles: u64,
    },
    /// From onset onward, each cycle's broadcast is dropped with
    /// probability `p` (deterministic per seed): a flaky line that keeps
    /// resetting its partners' watchdogs if `p` is small, or starves them
    /// if large.
    Stutter {
        /// Per-cycle drop probability in `[0, 1]`.
        p: f64,
        /// Seed for the fault's own [`SplitMix64`] stream.
        seed: u64,
    },
    /// The broadcast never reaches the network again (a dead processor).
    Stall,
}

/// A fault bound to a victim processor and an onset cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The processor whose outgoing broadcast misbehaves.
    pub victim: usize,
    /// First cycle at which the fault is active.
    pub onset: u64,
    /// The misbehavior.
    pub fault: ReadyFault,
}

/// Live state of an injected fault (the plan plus its RNG stream).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Last cycle for which [`Self::suppresses`] was sampled, so the RNG
    /// stream advances exactly once per cycle regardless of how often the
    /// machine probes.
    sampled_at: Option<u64>,
    sampled: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let seed = match plan.fault {
            ReadyFault::Stutter { seed, .. } => seed,
            _ => 0,
        };
        FaultState {
            plan,
            rng: SplitMix64::seed_from_u64(seed),
            sampled_at: None,
            sampled: false,
        }
    }

    pub(crate) fn victim(&self) -> usize {
        self.plan.victim
    }

    /// Like [`Self::suppresses`] but read-only, for pending-eviction
    /// detection; stutter faults report `false` (a straggler they starve
    /// is still covered, because deadlock detection's optimistic probe
    /// never declares a stutter victim stuck).
    pub(crate) fn suppresses_deterministic(&self, cycle: u64) -> bool {
        cycle >= self.plan.onset
            && match self.plan.fault {
                ReadyFault::Delay { cycles } => cycle < self.plan.onset + cycles,
                ReadyFault::Stall => true,
                ReadyFault::Stutter { .. } => false,
            }
    }

    /// Whether the victim's broadcast is severed for good from `cycle`
    /// on. This is the only suppression deadlock detection may assume
    /// persists: a delay heals, and a stutter with `p < 1` eventually
    /// lets an evaluation through. (A `p = 1.0` stutter should be
    /// expressed as [`ReadyFault::Stall`] instead, or the run ends at its
    /// cycle limit rather than as a detected deadlock.)
    pub(crate) fn severed_from(&self, cycle: u64) -> bool {
        matches!(self.plan.fault, ReadyFault::Stall) && cycle >= self.plan.onset
    }

    /// Whether the victim's broadcast is suppressed during `cycle`.
    pub(crate) fn suppresses(&mut self, cycle: u64) -> bool {
        if cycle < self.plan.onset {
            return false;
        }
        match self.plan.fault {
            ReadyFault::Delay { cycles } => cycle < self.plan.onset + cycles,
            ReadyFault::Stall => true,
            ReadyFault::Stutter { p, .. } => {
                if self.sampled_at != Some(cycle) {
                    self.sampled_at = Some(cycle);
                    self.sampled = self.rng.chance(p);
                }
                self.sampled
            }
        }
    }
}

/// One watchdog-triggered eviction, as recorded by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEvent {
    /// The processor that was cut out of the masks.
    pub victim: usize,
    /// The processor whose watchdog raised the interrupt.
    pub watchdog: usize,
    /// Cycle at which the watchdog fired and the masks were updated.
    pub fired_at: u64,
    /// Cycle of the watchdog processor's first synchronization after the
    /// eviction; `None` while recovery is still pending.
    pub recovered_at: Option<u64>,
}

impl EvictionEvent {
    /// Cycles from the eviction to the survivors' next synchronization.
    #[must_use]
    pub fn recovery_latency(&self) -> Option<u64> {
        self.recovered_at.map(|at| at - self.fired_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_heals_after_its_window() {
        let mut f = FaultState::new(FaultPlan {
            victim: 1,
            onset: 10,
            fault: ReadyFault::Delay { cycles: 5 },
        });
        assert!(!f.suppresses(9));
        assert!(f.suppresses(10));
        assert!(f.suppresses(14));
        assert!(!f.suppresses(15));
    }

    #[test]
    fn stall_never_heals() {
        let mut f = FaultState::new(FaultPlan {
            victim: 0,
            onset: 3,
            fault: ReadyFault::Stall,
        });
        assert!(!f.suppresses(2));
        assert!(f.suppresses(3));
        assert!(f.suppresses(u64::MAX));
    }

    #[test]
    fn stutter_is_deterministic_and_stable_within_a_cycle() {
        let plan = FaultPlan {
            victim: 2,
            onset: 0,
            fault: ReadyFault::Stutter { p: 0.5, seed: 42 },
        };
        let sample = |plan| {
            let mut f = FaultState::new(plan);
            (0..64).map(|c| f.suppresses(c)).collect::<Vec<_>>()
        };
        let a = sample(plan);
        assert_eq!(a, sample(plan), "same seed, same drop pattern");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        // Probing the same cycle twice must not advance the stream.
        let mut f = FaultState::new(plan);
        assert_eq!(f.suppresses(7), f.suppresses(7));
    }

    #[test]
    fn recovery_latency_subtracts() {
        let mut e = EvictionEvent {
            victim: 1,
            watchdog: 0,
            fired_at: 100,
            recovered_at: None,
        };
        assert_eq!(e.recovery_latency(), None);
        e.recovered_at = Some(103);
        assert_eq!(e.recovery_latency(), Some(3));
    }
}
