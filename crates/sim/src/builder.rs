//! Fluent construction of configured machines.

use crate::barrier_hw::BarrierUnit;
use crate::machine::{Machine, MachineConfig, SimError};
use crate::memory::{CacheConfig, MemoryConfig};
use crate::program::Program;

/// Builder for a [`Machine`] with non-default memory, pipeline, tracing or
/// barrier-unit configuration.
///
/// # Examples
///
/// ```
/// use fuzzy_sim::builder::MachineBuilder;
/// use fuzzy_sim::assembler::assemble_program;
///
/// let program = assemble_program(".stream\nnop\nhalt\n")?;
/// let mut machine = MachineBuilder::new(program)
///     .pipelined(true)
///     .trace(true)
///     .miss_rate(0.1)
///     .build()?;
/// machine.run(1_000)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    program: Program,
    cfg: MachineConfig,
    units: Option<Vec<BarrierUnit>>,
    preload: Vec<(usize, i64)>,
}

impl MachineBuilder {
    /// Starts a builder for `program`.
    #[must_use]
    pub fn new(program: Program) -> Self {
        MachineBuilder {
            program,
            cfg: MachineConfig::default(),
            units: None,
            preload: Vec::new(),
        }
    }

    /// Replaces the whole memory configuration.
    #[must_use]
    pub fn memory(mut self, memory: MemoryConfig) -> Self {
        self.cfg.memory = memory;
        self
    }

    /// Sets the probabilistic miss rate (drift injection).
    #[must_use]
    pub fn miss_rate(mut self, rate: f64) -> Self {
        self.cfg.memory.miss_rate = rate;
        self
    }

    /// Sets the miss penalty in cycles.
    #[must_use]
    pub fn miss_penalty(mut self, cycles: u64) -> Self {
        self.cfg.memory.miss_penalty = cycles;
        self
    }

    /// Sets the number of memory banks.
    #[must_use]
    pub fn banks(mut self, banks: usize) -> Self {
        self.cfg.memory.banks = banks;
        self
    }

    /// Attaches per-processor direct-mapped caches.
    #[must_use]
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.memory.cache = Some(cache);
        self
    }

    /// Sets the RNG seed for probabilistic misses.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.memory.seed = seed;
        self
    }

    /// Enables or disables pipelined issue.
    #[must_use]
    pub fn pipelined(mut self, on: bool) -> Self {
        self.cfg.pipelined = on;
        self
    }

    /// Enables or disables the event trace.
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.cfg.trace = on;
        self
    }

    /// Enables or disables static program validation. Disable only to
    /// observe what invalid programs (Fig. 2) do at run time.
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.cfg.validate = on;
        self
    }

    /// Provides explicit initial barrier units (mask + tag per processor).
    #[must_use]
    pub fn units(mut self, units: Vec<BarrierUnit>) -> Self {
        self.units = Some(units);
        self
    }

    /// Preloads shared memory with `(address, value)` words before the
    /// machine starts (e.g. the `.word` data from
    /// [`crate::assembler::assemble`]).
    #[must_use]
    pub fn preload(mut self, data: Vec<(usize, i64)>) -> Self {
        self.preload.extend(data);
        self
    }

    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] if validation is on and fails.
    pub fn build(self) -> Result<Machine, SimError> {
        let mut machine = match self.units {
            Some(units) => Machine::with_units(self.program, self.cfg, units)?,
            None => Machine::new(self.program, self.cfg)?,
        };
        for (addr, value) in self.preload {
            machine.memory_mut().poke(addr, value);
        }
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble_program;

    #[test]
    fn builder_produces_runnable_machine() {
        let p = assemble_program("li r1, 3\nhalt\n").unwrap();
        let mut m = MachineBuilder::new(p)
            .banks(2)
            .miss_penalty(4)
            .seed(42)
            .build()
            .unwrap();
        assert!(m.run(100).unwrap().is_halted());
        assert_eq!(m.procs()[0].reg(1), 3);
    }

    #[test]
    fn builder_units_override_defaults() {
        let p = assemble_program(".stream\nhalt\n.stream\nhalt\n").unwrap();
        let units = vec![BarrierUnit::new(0, 5), BarrierUnit::new(0, 6)];
        let m = MachineBuilder::new(p).units(units).build().unwrap();
        assert_eq!(m.procs()[0].unit.tag, 5);
        assert_eq!(m.procs()[1].unit.tag, 6);
    }

    #[test]
    fn validation_can_be_disabled() {
        // An invalid (barrier→barrier branch) program loads when
        // validation is off.
        let src = "B: nop\nB: j b2\nnop\nb2:\nB: nop\nhalt\n";
        let p = assemble_program(src).unwrap();
        assert!(MachineBuilder::new(p.clone()).build().is_err());
        assert!(MachineBuilder::new(p).validate(false).build().is_ok());
    }
}
