//! Event tracing for barrier activity.

use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The processor issued its first instruction of a barrier region
    /// (state i → ii).
    EnterBarrier,
    /// Synchronization was observed (state ii/iv → iii).
    Sync,
    /// The processor reached the barrier-region exit before
    /// synchronization and stalled (state ii → iv).
    StallStart,
    /// The processor crossed into the following non-barrier region
    /// (state iii → i).
    Cross,
    /// An asynchronous interrupt was delivered (barrier state frozen for
    /// the handler's duration).
    Interrupt,
    /// A synchronous trap was taken.
    Trap,
    /// The processor halted.
    Halt,
    /// The processor was evicted from the barrier masks by a partner's
    /// watchdog.
    Evict,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::EnterBarrier => "enter-barrier",
            EventKind::Sync => "sync",
            EventKind::StallStart => "stall",
            EventKind::Cross => "cross",
            EventKind::Interrupt => "interrupt",
            EventKind::Trap => "trap",
            EventKind::Halt => "halt",
            EventKind::Evict => "evict",
        };
        f.write_str(s)
    }
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Machine cycle at which the event occurred.
    pub cycle: u64,
    /// Processor id.
    pub proc: usize,
    /// The event kind.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] p{} {}", self.cycle, self.proc, self.kind)
    }
}

/// A bounded in-memory event log.
#[derive(Debug, Clone)]
pub struct TraceLog {
    events: Vec<Event>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates a log holding at most `capacity` events; further events are
    /// counted but dropped.
    #[must_use]
    pub fn new(enabled: bool, capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            enabled,
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, cycle: u64, proc: usize, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(Event { cycle, proc, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of a given kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of events dropped after the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether tracing is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.record(1, 0, EventKind::Sync);
        assert!(log.events().is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut log = TraceLog::new(true, 2);
        for c in 0..5 {
            log.record(c, 0, EventKind::EnterBarrier);
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn of_kind_filters() {
        let mut log = TraceLog::new(true, 16);
        log.record(0, 0, EventKind::EnterBarrier);
        log.record(1, 1, EventKind::Sync);
        log.record(2, 0, EventKind::Sync);
        assert_eq!(log.of_kind(EventKind::Sync).count(), 2);
        assert_eq!(log.of_kind(EventKind::Halt).count(), 0);
    }

    #[test]
    fn display_is_readable() {
        let e = Event {
            cycle: 12,
            proc: 3,
            kind: EventKind::StallStart,
        };
        assert_eq!(e.to_string(), "[    12] p3 stall");
    }
}
