//! Property-based tests for the simulator: random structured programs
//! always synchronize and halt, memory behaves like a reference model,
//! and runs are deterministic.

use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::machine::{Machine, MachineConfig, RunOutcome};
use fuzzy_sim::memory::{Memory, MemoryConfig};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a stream of `segments` phases: a work loop of `work[s]`
/// iterations followed by a barrier region of `region[s]` nops.
fn structured_stream(works: &[u8], regions: &[u8]) -> Stream {
    let mut b = StreamBuilder::new();
    for (s, (&w, &r)) in works.iter().zip(regions).enumerate() {
        if w > 0 {
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li { rd: 2, imm: i64::from(w) });
            let label = format!("w{s}");
            b.label(label.clone());
            b.plain(Instr::Addi { rd: 1, rs: 1, imm: 1 });
            b.plain_branch(Cond::Lt, 1, 2, label);
        } else {
            b.plain(Instr::Nop);
        }
        for _ in 0..=r {
            b.fuzzy(Instr::Nop); // at least one barrier-region instr
        }
    }
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any set of streams with the SAME number of barrier phases halts
    /// (never deadlocks) and synchronizes exactly once per phase.
    #[test]
    fn equal_phase_programs_always_halt(
        procs in 1usize..5,
        phases in 1usize..6,
        seed_works in prop::collection::vec(0u8..40, 1..30),
        seed_regions in prop::collection::vec(0u8..8, 1..30),
    ) {
        let streams: Vec<Stream> = (0..procs)
            .map(|p| {
                let works: Vec<u8> = (0..phases)
                    .map(|s| seed_works[(p * 7 + s * 3) % seed_works.len()])
                    .collect();
                let regions: Vec<u8> = (0..phases)
                    .map(|s| seed_regions[(p * 5 + s) % seed_regions.len()])
                    .collect();
                structured_stream(&works, &regions)
            })
            .collect();
        let program = Program::new(streams);
        prop_assert!(program.validate().is_ok());
        let mut m = Machine::new(program, MachineConfig::default()).unwrap();
        let out = m.run(10_000_000).unwrap();
        prop_assert!(matches!(out, RunOutcome::Halted { .. }), "{out:?}");
        prop_assert_eq!(m.stats().sync_events, phases as u64);
        for p in 0..procs {
            prop_assert_eq!(m.proc_stats(p).syncs, phases as u64);
        }
    }

    /// Mismatched phase counts deadlock (detected, not hung).
    #[test]
    fn unequal_phase_programs_deadlock(extra in 1usize..4) {
        let a = structured_stream(&[2; 2], &[0; 2]);
        let works = vec![2u8; 2 + extra];
        let regions = vec![0u8; 2 + extra];
        let b = structured_stream(&works, &regions);
        let mut m = Machine::new(Program::new(vec![a, b]), MachineConfig::default()).unwrap();
        let out = m.run(10_000_000).unwrap();
        prop_assert!(out.is_deadlock(), "{out:?}");
    }

    /// The memory system agrees with a flat reference model regardless of
    /// banks, caches and miss injection.
    #[test]
    fn memory_matches_reference_model(
        ops in prop::collection::vec((0usize..2, 0i64..128, -50i64..50), 1..200),
        banks in 1usize..5,
        miss_rate in 0.0f64..0.9,
        use_cache in any::<bool>(),
    ) {
        let cfg = MemoryConfig {
            size_words: 128,
            banks,
            miss_rate: if use_cache { 0.0 } else { miss_rate },
            cache: use_cache.then(fuzzy_sim::memory::CacheConfig::default),
            ..MemoryConfig::default()
        };
        let mut mem = Memory::new(cfg, 2);
        let mut model: HashMap<i64, i64> = HashMap::new();
        let mut cycle = 0u64;
        for (kind, addr, val) in ops {
            let proc = (addr % 2) as usize;
            match kind {
                0 => {
                    let (got, _) = mem.read(proc, addr, cycle).unwrap();
                    prop_assert_eq!(got, *model.get(&addr).unwrap_or(&0));
                }
                _ => {
                    mem.write(proc, addr, val, cycle).unwrap();
                    model.insert(addr, val);
                }
            }
            cycle += 3;
        }
    }

    /// Identical programs and seeds give identical cycle counts and stats.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>()) {
        let src = "\
.stream
    li r1, 0
    li r2, 20
loop:
    ld r3, [r0+5]
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
.stream
    li r1, 0
    li r2, 20
loop:
    ld r3, [r0+5]
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
";
        let program = fuzzy_sim::assembler::assemble_program(src).unwrap();
        let run = || {
            let mut m = fuzzy_sim::builder::MachineBuilder::new(program.clone())
                .miss_rate(0.4)
                .miss_penalty(17)
                .seed(seed)
                .build()
                .unwrap();
            m.run(1_000_000).unwrap();
            (m.stats().cycles, m.stats().total_stall_cycles())
        };
        prop_assert_eq!(run(), run());
    }

    /// encode -> decode round trip over random instructions (data and
    /// control) with both barrier-bit values.
    #[test]
    fn encoding_round_trips(
        instrs in prop::collection::vec(arb_codable_instr(), 1..60),
        bits in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        use fuzzy_sim::encoding::{decode_stream, encode_stream};
        use fuzzy_sim::isa::Op;
        let ops: Vec<Op> = instrs
            .iter()
            .zip(bits.iter().cycle())
            .map(|(&instr, &barrier)| Op { instr, barrier })
            .collect();
        let words = encode_stream(&ops).unwrap();
        prop_assert_eq!(decode_stream(&words).unwrap(), ops);
    }

    /// Display -> assemble round trip for data instructions.
    #[test]
    fn assembler_round_trips_data_instructions(
        instrs in prop::collection::vec(arb_data_instr(), 1..40),
    ) {
        let mut src = String::new();
        for i in &instrs {
            src.push_str(&i.to_string());
            src.push('\n');
        }
        let stream = fuzzy_sim::assembler::assemble_stream(&src).unwrap();
        let parsed: Vec<Instr> = stream.ops().iter().map(|o| o.instr).collect();
        prop_assert_eq!(parsed, instrs);
    }
}

/// Strategy extending [`arb_data_instr`] with encodable control
/// instructions.
fn arb_codable_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        arb_data_instr(),
        (0usize..1 << 20).prop_map(|target| Instr::Jump { target }),
        (0usize..1 << 20).prop_map(|target| Instr::Call { target }),
        Just(Instr::Ret),
        (0u16..1000).prop_map(|cause| Instr::Trap { cause }),
        (0u8..32, 0u8..32, 0usize..1 << 20, 0u8..6).prop_map(|(rs1, rs2, target, c)| {
            let cond = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt][c as usize];
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            }
        }),
    ]
}

/// Strategy for data (non-control) instructions whose Display form the
/// assembler accepts.
fn arb_data_instr() -> impl Strategy<Value = Instr> {
    let reg = 0u8..32;
    let imm = -1000i64..1000;
    let off = -64i64..64;
    prop_oneof![
        (reg.clone(), imm.clone()).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (reg.clone(), reg.clone()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(rd, rs1, rs2)| Instr::Add { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(rd, rs1, rs2)| Instr::Sub { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
        (reg.clone(), reg.clone(), imm.clone())
            .prop_map(|(rd, rs, imm)| Instr::Addi { rd, rs, imm }),
        (reg.clone(), reg.clone(), imm.clone())
            .prop_map(|(rd, rs, imm)| Instr::Muli { rd, rs, imm }),
        (reg.clone(), reg.clone(), imm.clone())
            .prop_map(|(rd, rs, imm)| Instr::Divi { rd, rs, imm }),
        (reg.clone(), reg.clone(), 0i64..64)
            .prop_map(|(rd, rs, offset)| Instr::Load { rd, rs, offset }),
        (reg.clone(), reg.clone(), 0i64..64)
            .prop_map(|(rs, rb, offset)| Instr::Store { rs, rb, offset }),
        (reg.clone(), reg, off, imm).prop_map(|(rd, rb, _o, imm)| Instr::FetchAdd {
            rd,
            rb,
            offset: 0,
            imm
        }),
        Just(Instr::Nop),
        Just(Instr::Halt),
        (1u64..1000).prop_map(|m| Instr::SetMask { mask: m }),
        (0u16..100).prop_map(|t| Instr::SetTag { tag: t }),
    ]
}
