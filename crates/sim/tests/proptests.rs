//! Randomized tests for the simulator: random structured programs always
//! synchronize and halt, memory behaves like a reference model, and runs
//! are deterministic.
//!
//! Formerly written with `proptest`; the build environment is offline, so
//! the same properties are exercised with a deterministic seeded generator
//! ([`fuzzy_util::SplitMix64`]) sweeping many random cases.

use fuzzy_sim::isa::{Cond, Instr, Op};
use fuzzy_sim::machine::{Machine, MachineConfig, RunOutcome};
use fuzzy_sim::memory::{Memory, MemoryConfig};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};
use fuzzy_util::SplitMix64;
use std::collections::HashMap;

/// Builds a stream of `segments` phases: a work loop of `work[s]`
/// iterations followed by a barrier region of `region[s]` nops.
fn structured_stream(works: &[u8], regions: &[u8]) -> Stream {
    let mut b = StreamBuilder::new();
    for (s, (&w, &r)) in works.iter().zip(regions).enumerate() {
        if w > 0 {
            b.plain(Instr::Li { rd: 1, imm: 0 });
            b.plain(Instr::Li {
                rd: 2,
                imm: i64::from(w),
            });
            let label = format!("w{s}");
            b.label(label.clone());
            b.plain(Instr::Addi {
                rd: 1,
                rs: 1,
                imm: 1,
            });
            b.plain_branch(Cond::Lt, 1, 2, label);
        } else {
            b.plain(Instr::Nop);
        }
        for _ in 0..=r {
            b.fuzzy(Instr::Nop); // at least one barrier-region instr
        }
    }
    b.plain(Instr::Halt);
    b.finish().expect("labels")
}

/// Any set of streams with the SAME number of barrier phases halts
/// (never deadlocks) and synchronizes exactly once per phase.
#[test]
fn equal_phase_programs_always_halt() {
    let mut rng = SplitMix64::seed_from_u64(0x51A1);
    for _case in 0..48 {
        let procs = 1 + rng.below(4);
        let phases = 1 + rng.below(5);
        let seed_works: Vec<u8> = (0..1 + rng.below(29))
            .map(|_| rng.range_u64(0, 39) as u8)
            .collect();
        let seed_regions: Vec<u8> = (0..1 + rng.below(29))
            .map(|_| rng.range_u64(0, 7) as u8)
            .collect();
        let streams: Vec<Stream> = (0..procs)
            .map(|p| {
                let works: Vec<u8> = (0..phases)
                    .map(|s| seed_works[(p * 7 + s * 3) % seed_works.len()])
                    .collect();
                let regions: Vec<u8> = (0..phases)
                    .map(|s| seed_regions[(p * 5 + s) % seed_regions.len()])
                    .collect();
                structured_stream(&works, &regions)
            })
            .collect();
        let program = Program::new(streams);
        assert!(program.validate().is_ok());
        let mut m = Machine::new(program, MachineConfig::default()).unwrap();
        let out = m.run(10_000_000).unwrap();
        assert!(matches!(out, RunOutcome::Halted { .. }), "{out:?}");
        assert_eq!(m.stats().sync_events, phases as u64);
        for p in 0..procs {
            assert_eq!(m.proc_stats(p).syncs, phases as u64);
        }
    }
}

/// Mismatched phase counts deadlock (detected, not hung).
#[test]
fn unequal_phase_programs_deadlock() {
    for extra in 1usize..4 {
        let a = structured_stream(&[2; 2], &[0; 2]);
        let works = vec![2u8; 2 + extra];
        let regions = vec![0u8; 2 + extra];
        let b = structured_stream(&works, &regions);
        let mut m = Machine::new(Program::new(vec![a, b]), MachineConfig::default()).unwrap();
        let out = m.run(10_000_000).unwrap();
        assert!(out.is_deadlock(), "{out:?}");
    }
}

/// The memory system agrees with a flat reference model regardless of
/// banks, caches and miss injection.
#[test]
fn memory_matches_reference_model() {
    let mut rng = SplitMix64::seed_from_u64(0x3E3);
    for case in 0..32 {
        let banks = 1 + rng.below(4);
        let miss_rate = rng.next_f64() * 0.9;
        let use_cache = case % 2 == 0;
        let cfg = MemoryConfig {
            size_words: 128,
            banks,
            miss_rate: if use_cache { 0.0 } else { miss_rate },
            cache: use_cache.then(fuzzy_sim::memory::CacheConfig::default),
            ..MemoryConfig::default()
        };
        let mut mem = Memory::new(cfg, 2);
        let mut model: HashMap<i64, i64> = HashMap::new();
        let mut cycle = 0u64;
        for _ in 0..1 + rng.below(199) {
            let kind = rng.below(2);
            let addr = rng.range_u64(0, 127) as i64;
            let val = rng.range_u64(0, 99) as i64 - 50;
            let proc = (addr % 2) as usize;
            match kind {
                0 => {
                    let (got, _) = mem.read(proc, addr, cycle).unwrap();
                    assert_eq!(got, *model.get(&addr).unwrap_or(&0));
                }
                _ => {
                    mem.write(proc, addr, val, cycle).unwrap();
                    model.insert(addr, val);
                }
            }
            cycle += 3;
        }
    }
}

/// Identical programs and seeds give identical cycle counts and stats.
#[test]
fn runs_are_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0xDE7);
    for _case in 0..8 {
        let seed = rng.next_u64();
        let src = "\
.stream
    li r1, 0
    li r2, 20
loop:
    ld r3, [r0+5]
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
.stream
    li r1, 0
    li r2, 20
loop:
    ld r3, [r0+5]
    addi r1, r1, 1
B:  nop
B:  blt r1, r2, loop
    halt
";
        let program = fuzzy_sim::assembler::assemble_program(src).unwrap();
        let run = || {
            let mut m = fuzzy_sim::builder::MachineBuilder::new(program.clone())
                .miss_rate(0.4)
                .miss_penalty(17)
                .seed(seed)
                .build()
                .unwrap();
            m.run(1_000_000).unwrap();
            (m.stats().cycles, m.stats().total_stall_cycles())
        };
        assert_eq!(run(), run());
    }
}

/// encode -> decode round trip over random instructions (data and
/// control) with both barrier-bit values.
#[test]
fn encoding_round_trips() {
    use fuzzy_sim::encoding::{decode_stream, encode_stream};
    let mut rng = SplitMix64::seed_from_u64(0xE2C);
    for _case in 0..48 {
        let len = 1 + rng.below(59);
        let ops: Vec<Op> = (0..len)
            .map(|_| Op {
                instr: random_codable_instr(&mut rng),
                barrier: rng.chance(0.5),
            })
            .collect();
        let words = encode_stream(&ops).unwrap();
        assert_eq!(decode_stream(&words).unwrap(), ops);
    }
}

/// Display -> assemble round trip for data instructions.
#[test]
fn assembler_round_trips_data_instructions() {
    let mut rng = SplitMix64::seed_from_u64(0xA55);
    for _case in 0..48 {
        let len = 1 + rng.below(39);
        let instrs: Vec<Instr> = (0..len).map(|_| random_data_instr(&mut rng)).collect();
        let mut src = String::new();
        for i in &instrs {
            src.push_str(&i.to_string());
            src.push('\n');
        }
        let stream = fuzzy_sim::assembler::assemble_stream(&src).unwrap();
        let parsed: Vec<Instr> = stream.ops().iter().map(|o| o.instr).collect();
        assert_eq!(parsed, instrs);
    }
}

/// Random codable instruction: data instructions plus encodable control.
fn random_codable_instr(rng: &mut SplitMix64) -> Instr {
    match rng.below(6) {
        0 => random_data_instr(rng),
        1 => Instr::Jump {
            target: rng.below(1 << 20),
        },
        2 => Instr::Call {
            target: rng.below(1 << 20),
        },
        3 => Instr::Ret,
        4 => Instr::Trap {
            cause: rng.range_u64(0, 999) as u16,
        },
        _ => {
            let cond = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt][rng.below(6)];
            Instr::Branch {
                cond,
                rs1: rng.below(32) as u8,
                rs2: rng.below(32) as u8,
                target: rng.below(1 << 20),
            }
        }
    }
}

/// Random data (non-control) instruction whose Display form the assembler
/// accepts.
fn random_data_instr(rng: &mut SplitMix64) -> Instr {
    let reg = |rng: &mut SplitMix64| rng.below(32) as u8;
    let imm = |rng: &mut SplitMix64| rng.range_u64(0, 1999) as i64 - 1000;
    match rng.below(15) {
        0 => Instr::Li {
            rd: reg(rng),
            imm: imm(rng),
        },
        1 => Instr::Mov {
            rd: reg(rng),
            rs: reg(rng),
        },
        2 => Instr::Add {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        3 => Instr::Sub {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        4 => Instr::Mul {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        5 => Instr::Addi {
            rd: reg(rng),
            rs: reg(rng),
            imm: imm(rng),
        },
        6 => Instr::Muli {
            rd: reg(rng),
            rs: reg(rng),
            imm: imm(rng),
        },
        7 => Instr::Divi {
            rd: reg(rng),
            rs: reg(rng),
            imm: imm(rng),
        },
        8 => Instr::Load {
            rd: reg(rng),
            rs: reg(rng),
            offset: rng.below(64) as i64,
        },
        9 => Instr::Store {
            rs: reg(rng),
            rb: reg(rng),
            offset: rng.below(64) as i64,
        },
        10 => Instr::FetchAdd {
            rd: reg(rng),
            rb: reg(rng),
            offset: 0,
            imm: imm(rng),
        },
        11 => Instr::Nop,
        12 => Instr::Halt,
        13 => Instr::SetMask {
            mask: rng.range_u64(1, 999),
        },
        _ => Instr::SetTag {
            tag: rng.range_u64(0, 99) as u16,
        },
    }
}
